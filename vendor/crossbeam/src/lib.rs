//! Offline stand-in for `crossbeam`: only `crossbeam::thread::scope`, which
//! the workspace uses for parallel snapshot recreation. Backed by
//! `std::thread::scope`; the crossbeam-style `Result` wrapper is preserved
//! so call sites (`.expect("scope")`) compile unchanged.

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`, wrapping the std scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (crossbeam
        /// passes it so threads can spawn siblings).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns. Panics in spawned
    /// threads surface through each handle's `join`, as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let n = super::thread::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .expect("scope");
        assert_eq!(n, 7);
    }
}
