//! Offline stand-in for the `rand` crate, providing the small API subset
//! this workspace uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, and `Rng::gen_bool`.
//!
//! The generator is a splitmix64 — statistically fine for test-data and
//! benchmark-workload synthesis, which is all the workspace asks of it.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits -> uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types that can be drawn uniformly from a half-open or closed range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range that knows how to draw a uniform sample from itself. A single
/// generic impl (as in real rand) so unsuffixed float literals unify with
/// the surrounding expression's type.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * u as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (API stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(0usize..=4);
            assert!(m <= 4);
            let k: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&k));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
