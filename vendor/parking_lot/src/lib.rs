//! Offline stand-in for `parking_lot`: the `RwLock`/`Mutex` subset the
//! workspace uses, backed by `std::sync` with poison errors swallowed
//! (parking_lot locks are not poisoning, so this matches its semantics).

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
