//! `any::<T>()` support for the vendored proptest subset.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                // Bias towards boundary values now and then, like real
                // proptest's edge-case generation.
                match rng.next_u64() % 8 {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Printable ASCII most of the time, arbitrary scalar sometimes.
        if rng.next_u64() % 4 == 0 {
            char::from_u32((rng.next_u64() % 0x11_0000) as u32).unwrap_or('\u{FFFD}')
        } else {
            (0x20u8 + (rng.next_u64() % 0x5f) as u8) as char
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}
