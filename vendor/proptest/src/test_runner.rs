//! Deterministic test runner and RNG for the vendored proptest subset.

use crate::strategy::Strategy;

/// Deterministic splitmix64 RNG driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi)`. Panics on an empty range.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range in strategy: {lo}..{hi}");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run configuration. Mirrors `proptest::test_runner::Config` for the
/// fields this workspace touches.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed or discarded test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "{m}"),
            Self::Reject(r) => write!(f, "assumption not met: {r}"),
        }
    }
}

/// Drives `config.cases` generated inputs through one test closure,
/// panicking (like `#[test]` expects) on the first failure.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: &'static str,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // Stable per-test seed: same inputs every run, different streams
        // for differently-named tests.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            config,
            rng: TestRng::seeded(seed),
            name,
        }
    }

    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut executed = 0u32;
        let mut discarded = 0u32;
        while executed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            match test(value) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(_)) => {
                    discarded += 1;
                    assert!(
                        discarded < self.config.cases.saturating_mul(16).max(256),
                        "proptest {}: too many rejected cases",
                        self.name
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {}: {}",
                        self.name, executed, msg
                    )
                }
            }
        }
    }
}
