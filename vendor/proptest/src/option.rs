//! `proptest::option` subset: the [`of`] combinator, yielding `None`
//! roughly a quarter of the time and `Some` of the inner strategy
//! otherwise (real proptest defaults to a 75% `Some` probability too).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<T>` built from a strategy for `T`.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Option` of the given strategy, weighted toward `Some`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
