//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.size.lo, self.size.hi + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
