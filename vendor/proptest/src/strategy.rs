//! The `Strategy` trait and combinators for the vendored proptest subset.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree / shrinking: `generate` draws a fresh value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Depth-bounded recursive strategy: picks a nesting depth up to
    /// `depth` and applies `branch` that many times over the base
    /// strategy. `desired_size` / `expected_branch_size` are accepted for
    /// API compatibility but unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        Recursive {
            base: self.boxed(),
            branch: Rc::new(move |inner| branch(inner).boxed()),
            depth,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Result of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    #[allow(clippy::type_complexity)]
    branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.usize_in(0, self.depth as usize + 1);
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.branch)(strat);
        }
        strat.generate(rng)
    }
}

// ---- ranges ----------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- tuples ----------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 => 0);
tuple_strategy!(S0 => 0, S1 => 1);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7);
