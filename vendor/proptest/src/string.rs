//! String strategies from a regex subset, mirroring proptest's use of
//! `&str` patterns as strategies. Supported syntax: literal characters,
//! `.` (printable ASCII), character classes `[a-z0-9_%-]` (ranges and
//! literals, leading/trailing `-` literal), and the quantifiers `{m}`,
//! `{m,n}`, `{m,}`, `*`, `+`, `?`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Dot,
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in pattern {pattern:?}"
                );
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
                Some((lo, "")) => {
                    let lo: usize = lo.trim().parse().expect("quantifier lower bound");
                    (lo, lo + 8)
                }
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
            }
        } else if i < chars.len() && matches!(chars[i], '*' | '+' | '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Dot => (0x20u8 + (rng.next_u64() % 0x5f) as u8) as char,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            assert!(total > 0, "empty character class");
            let mut pick = rng.next_u64() % total;
            for &(lo, hi) in ranges {
                let span = hi as u64 - lo as u64 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= span;
            }
            unreachable!()
        }
    }
}

fn generate_from(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse_pattern(pattern) {
        let n = if piece.min == piece.max {
            piece.min
        } else {
            rng.usize_in(piece.min, piece.max + 1)
        };
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_quantifiers() {
        let mut rng = TestRng::seeded(9);
        for _ in 0..200 {
            let s = "[a-c]{0,3}".generate(&mut rng);
            assert!(
                s.len() <= 3 && s.chars().all(|c| ('a'..='c').contains(&c)),
                "{s:?}"
            );

            let s = "[a-b%_]{0,6}".generate(&mut rng);
            assert!(
                s.chars().all(|c| matches!(c, 'a' | 'b' | '%' | '_')),
                "{s:?}"
            );

            let s = "[a-z][a-z0-9-]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());

            let s = ".{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literal_and_star() {
        let mut rng = TestRng::seeded(3);
        assert_eq!("abc".generate(&mut rng), "abc");
        for _ in 0..50 {
            let s = "x[0-9]+y?".generate(&mut rng);
            assert!(s.starts_with('x'), "{s:?}");
        }
    }
}
