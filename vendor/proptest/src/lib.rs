//! Offline stand-in for `proptest`, implementing the subset of its API this
//! workspace's property tests use: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`, tuple and
//! range strategies, `any::<T>()`, regex-subset string strategies,
//! [`collection::vec`], `Just`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: generation is deterministic per test
//! name (no persisted failure seeds) and failing cases are not shrunk —
//! the failing input's Debug rendering is reported as-is.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The `proptest!` macro: expands each `fn name(pat in strategy, ...) {}`
/// item into a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config = $cfg;
                let mut __pt_runner =
                    $crate::test_runner::TestRunner::new(__pt_config, stringify!($name));
                let __pt_strategy = ( $( $strat, )+ );
                __pt_runner.run(&__pt_strategy, |__pt_values| {
                    let ( $( $pat, )+ ) = __pt_values;
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Build a [`strategy::Union`] choosing uniformly among the given
/// strategies (all must share one `Value` type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure aborts the current case with
/// the formatted message rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __pt_l, __pt_r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), __pt_l, __pt_r),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if *__pt_l == *__pt_r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __pt_l,
            )));
        }
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
