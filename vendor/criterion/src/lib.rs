//! Offline stand-in for `criterion`: enough of the API for the workspace's
//! `harness = false` benches to compile and produce simple wall-clock
//! medians. No statistics, plots, or baselines — just run, time, print.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.to_string(), sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std_black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    if b.iters == 0 {
        println!("{label:<48} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  {:>10.1} elem/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!("{label:<48} {:>12.3} ms/iter{rate}", per_iter * 1e3);
}

/// Expands to a function running each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        let mut count = 0u32;
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            count += 1;
        });
        g.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
        assert_eq!(count, 3);
    }
}
