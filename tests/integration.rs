//! Cross-crate integration tests: the whole pipeline from training through
//! versioning, DQL, archival and progressive retrieval.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use modelhub::dlv::{ArchiveConfig, CommitRequest};
use modelhub::dnn::{forward, synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use modelhub::dql::QueryResult;
use modelhub::ModelHub;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn data() -> modelhub::dnn::Dataset {
    synth_dataset(&SynthConfig {
        num_classes: 3,
        train_per_class: 8,
        test_per_class: 4,
        noise: 0.05,
        seed: 33,
        ..Default::default()
    })
}

#[test]
fn full_pipeline_train_version_archive_progressive() {
    let root = temp_dir("pipeline");
    let hub = ModelHub::init(&root).unwrap();
    let net = zoo::lenet_s(3);
    let d = data();
    let trainer = Trainer {
        hp: Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        },
        snapshot_every: 5,
    };
    let r = trainer
        .train(&net, Weights::init(&net, 3).unwrap(), &d, 15)
        .unwrap();
    let mut req = CommitRequest::new("m", net.clone());
    req.snapshots = r.snapshots.clone();
    req.accuracy = Some(r.final_accuracy);
    hub.repo().commit(&req).unwrap();

    // Archive and verify every snapshot recreates bit-exactly.
    let report = hub.archive(&ArchiveConfig::default()).unwrap();
    assert!(report.satisfied);
    for (i, (_, w)) in r.snapshots.iter().enumerate() {
        assert_eq!(&hub.repo().get_weights("m", Some(i)).unwrap(), w);
    }

    // Progressive eval agrees with exact forward on every test point and
    // reads no more than the full footprint.
    for (x, _) in d.test.iter().take(8) {
        let p = hub.progressive_eval("m", x, 1).unwrap();
        let exact = forward(&net, &r.weights, x).unwrap().argmax();
        assert_eq!(p.prediction[0], exact);
        assert!(p.bytes_read <= p.full_bytes);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn dql_drives_the_lifecycle_end_to_end() {
    let root = temp_dir("dql-lifecycle");
    let mut hub = ModelHub::init(&root).unwrap();
    let d = data();
    let trainer = Trainer::new(Hyperparams {
        base_lr: 0.08,
        ..Default::default()
    });
    let net = zoo::lenet_s(3);
    let r = trainer
        .train(&net, Weights::init(&net, 5).unwrap(), &d, 6)
        .unwrap();
    let mut req = CommitRequest::new("seed-model", net);
    req.snapshots = vec![(6, r.weights)];
    req.accuracy = Some(r.final_accuracy);
    hub.repo().commit(&req).unwrap();
    hub.register_dataset("d", d);

    // Enumerate variants via construct + evaluate; the winner is committed.
    let result = hub
        .query(
            r#"evaluate m from (construct m2 from m1 where m1.name like "seed%"
                                mutate m1["pool2"].insert = TANH("extra"))
               vary config.base_lr in [0.1, 0.01]
               keep top(1, m["loss"], 4)"#,
        )
        .unwrap();
    let QueryResult::Evaluated(rows) = result else {
        panic!()
    };
    assert_eq!(rows.len(), 2);
    let kept = rows.iter().find(|r| r.kept).unwrap();
    let committed = kept.committed.as_ref().unwrap();

    // The committed variant is a first-class version: desc, eval, lineage.
    let desc = hub.repo().desc(&committed.to_string()).unwrap();
    assert!(desc.layers.iter().any(|(n, _)| n == "extra"));
    assert!(hub
        .repo()
        .lineage()
        .iter()
        .any(|(base, derived)| base == "seed-model:1" && derived == &committed.to_string()));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sd_workload_generates_connected_lineage() {
    let root = temp_dir("sd");
    let repo = modelhub::dlv::Repository::init(&root).unwrap();
    let sd = modelhub::core::generate_sd(
        &repo,
        &modelhub::core::SdConfig {
            num_versions: 3,
            snapshots_per_version: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(sd.versions.len(), 3);
    assert_eq!(repo.list().len(), 4);
    let lineage = repo.lineage();
    assert_eq!(lineage.len(), 3);
    assert!(lineage.iter().all(|(base, _)| base == &sd.base.to_string()));
    // Every version has the requested snapshot count.
    for v in &sd.versions {
        assert_eq!(repo.snapshots(&v.to_string()).unwrap().len(), 2);
    }
    // Fine-tuned weights share feature-layer shapes with the base.
    let base_w = repo.get_weights(&sd.base.to_string(), None).unwrap();
    let ft_w = repo.get_weights(&sd.versions[0].to_string(), None).unwrap();
    assert_eq!(
        base_w.get("conv1").map(|m| m.shape()),
        ft_w.get("conv1").map(|m| m.shape())
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn share_then_continue_working_on_the_clone() {
    let base = temp_dir("share");
    let hub_dir = base.join("hub");
    let a = ModelHub::init(&base.join("a")).unwrap();
    let d = data();
    let net = zoo::lenet_s(3);
    let trainer = Trainer::new(Hyperparams::default());
    let r = trainer
        .train(&net, Weights::init(&net, 6).unwrap(), &d, 5)
        .unwrap();
    let mut req = CommitRequest::new("shared", net);
    req.snapshots = vec![(5, r.weights)];
    a.repo().commit(&req).unwrap();
    a.publish(&hub_dir, "team/shared").unwrap();

    let b = ModelHub::pull(&hub_dir, "team/shared", &base.join("b")).unwrap();
    // Clone can archive independently of the original.
    let report = b.archive(&ArchiveConfig::default()).unwrap();
    assert!(report.satisfied);
    assert!(b.repo().list()[0].archived);
    assert!(!a.repo().list()[0].archived, "original untouched");
    std::fs::remove_dir_all(&base).ok();
}

/// A traced `dlv pull` against a traced `hubd` over a real socket leaves
/// two JSONL files that share one 128-bit trace id, and `trace view`
/// stitches them into a single cross-process tree rooted at the client's
/// `dlv.pull` span, with the network gap attributed on the server child.
#[test]
fn distributed_trace_stitches_across_client_and_server() {
    let base = temp_dir("stitch");

    // A small published model to pull.
    let repo = modelhub::dlv::Repository::init(&base.join("origin")).unwrap();
    let d = data();
    let net = zoo::lenet_s(3);
    let trainer = Trainer::new(Hyperparams::default());
    let r = trainer
        .train(&net, Weights::init(&net, 7).unwrap(), &d, 5)
        .unwrap();
    let mut req = CommitRequest::new("stitch-model", net);
    req.snapshots = vec![(5, r.weights)];
    repo.commit(&req).unwrap();

    // Real hubd child with server-side tracing; port picked by the OS and
    // read back from its startup line.
    let server_trace = base.join("server.jsonl");
    let mut hubd = std::process::Command::new(env!("CARGO_BIN_EXE_modelhub"))
        .arg("hubd")
        .arg(base.join("hubroot"))
        .args(["--addr", "127.0.0.1:0", "--jobs", "2"])
        .env("MH_TRACE", &server_trace)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let url = {
        use std::io::{BufRead, BufReader};
        let mut line = String::new();
        BufReader::new(hubd.stdout.take().unwrap())
            .read_line(&mut line)
            .unwrap();
        line.split(" at ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap_or_else(|| panic!("no url in hubd banner {line:?}"))
            .to_string()
    };

    // Publish untraced in-process; pull traced through the dlv binary.
    modelhub::hub::RemoteHub::open(&url)
        .unwrap()
        .publish_repo(&repo, "team/stitch")
        .unwrap();
    let client_trace = base.join("client.jsonl");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_dlv"))
        .args(["pull", &url, "team/stitch"])
        .arg(base.join("clone"))
        .env("MH_TRACE", &client_trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "pull failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = hubd.kill();
    let _ = hubd.wait();

    // Both sides carry exactly one (shared) nonzero trace id.
    let ct = std::fs::read_to_string(&client_trace).unwrap();
    let st = std::fs::read_to_string(&server_trace).unwrap();
    let mut spans = mh_obs::traceview::parse_jsonl(&ct, 0);
    let client_span_count = spans.len();
    spans.extend(mh_obs::traceview::parse_jsonl(&st, 1));
    let traced: std::collections::BTreeSet<u128> = spans
        .iter()
        .filter(|s| s.trace != 0)
        .map(|s| s.trace)
        .collect();
    assert_eq!(traced.len(), 1, "client and server must share one trace id");
    let client_traced = spans[..client_span_count]
        .iter()
        .filter(|s| s.trace != 0)
        .count();
    let server_traced = spans[client_span_count..]
        .iter()
        .filter(|s| s.trace != 0)
        .count();
    assert!(client_traced > 0, "client recorded traced spans");
    assert!(server_traced > 0, "server recorded traced spans");

    // Stitched: one tree, rooted at the client's dlv.pull, containing
    // server-side hub.request spans as remote children with a gap.
    let trees = mh_obs::traceview::stitch(&spans);
    assert_eq!(trees.len(), 1, "one trace id means one tree");
    assert_eq!(trees[0].roots.len(), 1, "single root: the client command");
    let root = &trees[0].roots[0];
    assert_eq!(root.span.name, "dlv.pull");
    assert_eq!(root.span.source, 0, "root comes from the client file");
    fn count_remote_requests(n: &mh_obs::traceview::TraceNode) -> usize {
        let own = usize::from(
            n.span.name == "hub.request" && n.span.source == 1 && n.remote_gap_us.is_some(),
        );
        own + n.children.iter().map(count_remote_requests).sum::<usize>()
    }
    assert!(
        count_remote_requests(root) >= 2,
        "manifest + objects requests must nest under the client tree"
    );

    // The CLI renders the same merge as one tree with the gap named.
    let view = std::process::Command::new(env!("CARGO_BIN_EXE_modelhub"))
        .args(["trace", "view"])
        .arg(&client_trace)
        .arg(&server_trace)
        .output()
        .unwrap();
    assert!(
        view.status.success(),
        "trace view failed: {}",
        String::from_utf8_lossy(&view.stderr)
    );
    let rendered = String::from_utf8_lossy(&view.stdout);
    assert_eq!(
        rendered.matches("trace ").count(),
        1,
        "one stitched trace: {rendered}"
    );
    for needle in ["dlv.pull", "hub.rpc", "hub.request", "network+queue="] {
        assert!(
            rendered.contains(needle),
            "missing {needle} in:\n{rendered}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn float_schemes_compose_with_compression() {
    // Cross-crate invariant: for trained weights, every lossy scheme's
    // payload compresses at least as well as raw f32, and bytewise
    // segmentation improves compression of the f32 payload.
    use modelhub::compress::{compressed_len, Level};
    use modelhub::tensor::{encode, split_byte_planes, Scheme};

    let net = zoo::lenet_s(4);
    let d = synth_dataset(&SynthConfig {
        num_classes: 4,
        seed: 9,
        ..Default::default()
    });
    let trainer = Trainer::new(Hyperparams::default());
    let r = trainer
        .train(&net, Weights::init(&net, 8).unwrap(), &d, 10)
        .unwrap();
    let m = r.weights.get("ip1").unwrap();

    let f32_enc = encode(m, Scheme::F32, false);
    let whole = compressed_len(&f32_enc.payload, Level::Default);
    let planes: usize = split_byte_planes(&f32_enc.payload, 4)
        .iter()
        .map(|p| compressed_len(p, Level::Default))
        .sum();
    assert!(
        planes < whole,
        "bytewise segmentation should compress better: {planes} vs {whole}"
    );

    for scheme in [
        Scheme::F16,
        Scheme::Fixed { bits: 8 },
        Scheme::QuantUniform { bits: 8 },
    ] {
        let enc = encode(m, scheme, false);
        let c = compressed_len(&enc.payload, Level::Default);
        assert!(c < whole, "{scheme:?} should beat raw f32: {c} vs {whole}");
    }
}
