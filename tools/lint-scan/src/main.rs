//! `mh-lint` — the sync-facade source lint.
//!
//! The workspace routes every shared-state primitive through the
//! `mh_par::sync` facade so the `model` feature can swap in mh-model's
//! instrumented versions. This lint keeps that invariant honest: it walks
//! `crates/`, `src/`, and `tools/` and rejects source lines that name raw
//! primitives directly.
//!
//! Rules:
//!
//! * **L001** — `parking_lot::*`: the vendored stub only re-exports std;
//!   use `mh_par::sync::{Mutex, RwLock}`.
//! * **L002** — `std::sync::Mutex` / `std::sync::RwLock` /
//!   `std::sync::Condvar` (direct paths or brace imports): use the
//!   facade's equivalents, which add lock-order checking in debug builds
//!   and model instrumentation under the `model` feature.
//! * **L003** — `std::thread::spawn` / `std::thread::scope`: use
//!   `mh_par::sync::thread::{spawn, scope}` so spawned threads join model
//!   executions. (`sleep`, `current`, `yield_now`, and
//!   `available_parallelism` are not shared-state primitives and stay
//!   allowed.)
//! * **L004** — `Instant::now` (called or passed as a function): use
//!   `mh_par::sync::now()`, the facade's single time source.
//!
//! Allowlisted paths (the layers that *implement* the facade):
//! `crates/model/` (the instrumented primitives themselves),
//! `crates/par/src/sync.rs` (the std backend), `crates/obs/` (sits below
//! mh-par in the dependency graph and carries its own feature-gated
//! shim), and `tools/lint-scan/` (this tool's pattern table).
//!
//! A deliberate exception elsewhere takes an inline waiver: put
//! `lint-scan: allow` (ideally with the rule and a reason) in a comment
//! on the offending line or the line directly above it.
//!
//! Comment text is ignored (everything from the first `//` on a line), so
//! prose may mention the raw primitives freely.
//!
//! Usage: `cargo run -p mh-lint [--] [workspace-root]`; exits non-zero
//! and lists `path:line: [Lxxx] ...` findings when violations exist.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The marker that waives the current (or next) line. Split so this
/// source never waives itself by accident when scanned.
const WAIVER: &str = concat!("lint-scan:", " allow");

/// One finding: file-relative location plus rule code and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub line: usize,
    pub code: &'static str,
    pub message: String,
}

/// True for paths that implement the facade and may name raw primitives.
fn allowlisted(rel: &str) -> bool {
    let rel = rel.replace('\\', "/");
    rel.starts_with("crates/model/")
        || rel == "crates/par/src/sync.rs"
        || rel.starts_with("crates/obs/")
        || rel.starts_with("tools/lint-scan/")
}

/// Everything before the first line comment (`//`, `///`, `//!`).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Does `list` (the inside of a brace import) name `item` as a word?
fn brace_list_names(list: &str, item: &str) -> bool {
    list.split([',', '{', '}'])
        .any(|tok| tok.split_whitespace().next() == Some(item))
}

/// The inside of a `prefix{...}` import on this line, if present.
fn brace_list<'a>(code: &'a str, prefix: &str) -> Option<&'a str> {
    let start = code.find(prefix)? + prefix.len();
    let rest = &code[start..];
    let end = rest.find('}')?;
    Some(&rest[..end])
}

/// Rule violations on a single (comment-stripped) line of code.
fn line_violations(code: &str) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    if code.contains("parking_lot") {
        out.push((
            "L001",
            "parking_lot primitive; use mh_par::sync::{Mutex, RwLock}".to_string(),
        ));
    }
    for prim in ["Mutex", "RwLock", "Condvar"] {
        let direct = code.contains(&format!("std::sync::{prim}"));
        let braced =
            brace_list(code, "std::sync::{").is_some_and(|list| brace_list_names(list, prim));
        if direct || braced {
            out.push((
                "L002",
                format!("raw std::sync::{prim}; use mh_par::sync::{prim}"),
            ));
        }
    }
    for f in ["spawn", "scope"] {
        let direct = code.contains(&format!("std::thread::{f}"));
        let braced =
            brace_list(code, "std::thread::{").is_some_and(|list| brace_list_names(list, f));
        if direct || braced {
            out.push((
                "L003",
                format!("raw std::thread::{f}; use mh_par::sync::thread::{f}"),
            ));
        }
    }
    if code.contains("Instant::now") {
        out.push((
            "L004",
            "direct Instant::now; use mh_par::sync::now()".to_string(),
        ));
    }
    out
}

/// Scan one file's source text, honoring same-line and previous-line
/// waivers.
pub fn scan_source(text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut prev_waives = false;
    for (i, line) in text.lines().enumerate() {
        let waived = prev_waives || line.contains(WAIVER);
        // A waiver only reaches the *next* line when it stands alone as a
        // comment; a violation's own trailing waiver shouldn't leak down.
        prev_waives = line.contains(WAIVER) && code_part(line).trim().is_empty();
        if waived {
            continue;
        }
        for (code, message) in line_violations(code_part(line)) {
            out.push(Finding {
                line: i + 1,
                code,
                message,
            });
        }
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn run(root: &Path) -> Result<String, String> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tools"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)
                .map_err(|e| format!("walking {}: {e}", dir.display()))?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no .rs files under {} — wrong root?",
            root.display()
        ));
    }
    files.sort();

    let mut report = String::new();
    let mut violations = 0usize;
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if allowlisted(&rel) {
            continue;
        }
        scanned += 1;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {rel}: {e}"))?;
        for f in scan_source(&text) {
            violations += 1;
            let _ = writeln!(report, "{rel}:{}: [{}] {}", f.line, f.code, f.message);
        }
    }
    if violations > 0 {
        let _ = writeln!(
            report,
            "lint-scan: {violations} violation(s) in {scanned} scanned file(s); \
             route through mh_par::sync or add a `{WAIVER}` waiver comment"
        );
        Err(report)
    } else {
        Ok(format!("lint-scan: {scanned} file(s) clean"))
    }
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    match run(&root) {
        Ok(msg) => println!("{msg}"),
        Err(report) => {
            eprint!("{report}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<&'static str> {
        scan_source(text).into_iter().map(|f| f.code).collect()
    }

    #[test]
    fn direct_paths_are_flagged() {
        assert_eq!(codes("let m = parking_lot::Mutex::new(0);"), vec!["L001"]);
        assert_eq!(codes("let m = std::sync::Mutex::new(0);"), vec!["L002"]);
        assert_eq!(codes("let l = std::sync::RwLock::new(0);"), vec!["L002"]);
        assert_eq!(codes("let c = std::sync::Condvar::new();"), vec!["L002"]);
        assert_eq!(codes("std::thread::spawn(|| {});"), vec!["L003"]);
        assert_eq!(codes("std::thread::scope(|s| {});"), vec!["L003"]);
        assert_eq!(codes("let t = Instant::now();"), vec!["L004"]);
        assert_eq!(codes("x.then(std::time::Instant::now)"), vec!["L004"]);
    }

    #[test]
    fn brace_imports_are_flagged() {
        assert_eq!(codes("use std::sync::{Arc, Mutex};"), vec!["L002"]);
        assert_eq!(
            codes("use std::sync::{Condvar, Mutex, OnceLock};"),
            vec!["L002", "L002"]
        );
        assert_eq!(codes("use std::thread::{sleep, spawn};"), vec!["L003"]);
        // Non-primitive imports from the same modules stay allowed.
        assert!(codes("use std::sync::{Arc, OnceLock};").is_empty());
        assert!(codes("use std::thread::{sleep, yield_now};").is_empty());
    }

    #[test]
    fn harmless_thread_and_time_usage_is_allowed() {
        assert!(codes("std::thread::sleep(d);").is_empty());
        assert!(codes("let id = std::thread::current().id();").is_empty());
        assert!(codes("std::thread::available_parallelism()").is_empty());
        assert!(codes("let t: Instant = mh_par::sync::now();").is_empty());
        assert!(codes("use std::sync::atomic::AtomicU64;").is_empty());
    }

    #[test]
    fn comments_are_ignored() {
        assert!(codes("// previously a parking_lot mutex was used").is_empty());
        assert!(codes("//! pairs with std::sync::Condvar semantics").is_empty());
        assert!(codes("let x = 1; // not Instant::now()").is_empty());
    }

    #[test]
    fn waivers_suppress_same_and_next_line() {
        let same = format!("std::thread::spawn(f); // {WAIVER} L003 — io helper");
        assert!(scan_source(&same).is_empty());
        let above =
            format!("// {WAIVER} L004 — measuring the facade itself\nlet t = Instant::now();");
        assert!(scan_source(&above).is_empty());
        // A standalone waiver does not bleed past the next line.
        let two = format!("// {WAIVER}\nlet t = Instant::now();\nlet u = Instant::now();");
        let found = scan_source(&two);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn allowlist_covers_facade_layers_only() {
        assert!(allowlisted("crates/model/src/sync.rs"));
        assert!(allowlisted("crates/par/src/sync.rs"));
        assert!(allowlisted("crates/obs/src/shim.rs"));
        assert!(allowlisted("tools/lint-scan/src/main.rs"));
        assert!(!allowlisted("crates/par/src/lib.rs"));
        assert!(!allowlisted("crates/hub/src/server.rs"));
        assert!(!allowlisted("src/bin/modelhub.rs"));
    }

    #[test]
    fn findings_carry_line_numbers() {
        let text = "fn ok() {}\nlet m = std::sync::Mutex::new(0);\n";
        let found = scan_source(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        assert!(found[0].message.contains("mh_par::sync::Mutex"));
    }
}
