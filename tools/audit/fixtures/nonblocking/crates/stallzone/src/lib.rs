//! Seeded nonblocking-zone violation: the declared reactor loop parks
//! on a mutex directly (R001) and reaches blocking file I/O through a
//! helper (R002). The auditor must report both — CI fails if it ever
//! stops doing so.

// mh-audit: nonblocking_zone
pub fn reactor_tick(state: &Shared, path: &Path) {
    let guard = state.lock();
    drop(guard);
    spill(path);
}

fn spill(path: &Path) {
    std::fs::write(path, b"spill");
}
