//! Seeded ABBA deadlock: `transfer` takes `ledger` then `index`, while
//! `rebalance` takes `index` then `ledger`. The auditor must report
//! R003 for this crate — CI fails if it ever stops doing so.

pub struct Registry {
    ledger: Lock,
    index: Lock,
}

impl Registry {
    pub fn transfer(&self) {
        let g1 = self.ledger.lock();
        let g2 = self.index.lock();
        drop(g2);
        drop(g1);
    }

    pub fn rebalance(&self) {
        let g1 = self.index.lock();
        let g2 = self.ledger.lock();
        drop(g2);
        drop(g1);
    }
}
