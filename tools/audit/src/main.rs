//! `mh-audit` — CI driver for the workspace static auditor.
//!
//! Walks `crates/`, `src/` and `tools/`, runs the panic-reachability
//! pass (A001–A006), the untrusted-length taint pass (A007–A009), the
//! waiver checker (A010) and the absorbed sync-facade token rules
//! (A101–A104), and exits non-zero when any unwaived finding remains.
//!
//! Usage:
//!
//! ```text
//! cargo run -p mh-audit [--] [workspace-root] [--report FILE] [--max-waivers N]
//! ```
//!
//! `--report FILE` additionally writes the deterministic findings
//! report (byte-identical across runs on identical sources) so CI can
//! upload it as an artifact and diff runs. `--max-waivers N` fails the
//! run when the in-tree reasoned-waiver count exceeds N — the ratchet
//! that keeps waivers from accumulating silently.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut max_waivers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mh-audit: --report requires a file path");
                    return ExitCode::from(2);
                }
            },
            "--max-waivers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_waivers = Some(n),
                None => {
                    eprintln!("mh-audit: --max-waivers requires a number");
                    return ExitCode::from(2);
                }
            },
            "--version" => {
                println!("mh-audit {}", env!("CARGO_PKG_VERSION"));
                println!("rule inventory:");
                for (code, what) in mh_audit::report::rules_inventory() {
                    println!("  {code}  {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--" => {}
            other => root = PathBuf::from(other),
        }
    }

    let report = match mh_audit::audit_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mh-audit: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let rendered = report.render();
    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("mh-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !report.is_clean() {
        eprint!("{rendered}");
        eprintln!("mh-audit: FAIL — fix the finding or add `mh-audit: allow(CODE, reason)`");
        return ExitCode::FAILURE;
    }
    if let Some(cap) = max_waivers {
        if report.waived > cap {
            eprint!("{rendered}");
            eprintln!(
                "mh-audit: FAIL — waiver count {} exceeds --max-waivers {cap}; \
                 remove a waiver or consciously raise the cap",
                report.waived
            );
            return ExitCode::FAILURE;
        }
    }
    print!("{rendered}");
    ExitCode::SUCCESS
}
