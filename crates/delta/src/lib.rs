//! # mh-delta
//!
//! Delta encoding between versioned float matrices (§IV-B "Delta Encoding
//! across Snapshots").
//!
//! Two operators, both *exactly* invertible on IEEE-754 bit patterns:
//!
//! * **Sub** — wrapping 32-bit integer subtraction of the bit patterns.
//!   For nearby values this produces deltas with long runs of `0x00`/`0xFF`
//!   bytes, which entropy-code extremely well. (Plain float subtraction is
//!   not exactly invertible due to rounding, so an archival store cannot
//!   use it; integer subtraction of the patterns is the standard
//!   compression-literature equivalent.)
//! * **Xor** — bitwise XOR of the patterns.
//!
//! Mismatched shapes (the paper's extended-version note) are handled by
//! virtually zero-extending or cropping the base to the target's shape, so
//! any matrix can be delta-encoded against any other.

use mh_tensor::{split_byte_planes, Matrix};

pub mod simd;

/// The delta operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// Wrapping integer subtraction of bit patterns.
    Sub,
    /// Bitwise XOR of bit patterns.
    Xor,
}

impl DeltaOp {
    pub fn name(self) -> &'static str {
        match self {
            DeltaOp::Sub => "delta-sub",
            DeltaOp::Xor => "delta-xor",
        }
    }
}

/// A delta that recreates a target matrix from a base matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub op: DeltaOp,
    rows: usize,
    cols: usize,
    /// One 32-bit word per target element.
    words: Vec<u32>,
}

/// Bit pattern of the base element at the target's (r, c), or 0 if the
/// base does not cover that position.
#[inline]
fn base_bits(base: &Matrix, r: usize, c: usize) -> u32 {
    if r < base.rows() && c < base.cols() {
        base.get(r, c).to_bits()
    } else {
        0
    }
}

impl Delta {
    /// Compute the delta that recreates `target` from `base`.
    ///
    /// Same-shape pairs (the overwhelmingly common archival case — every
    /// snapshot of one layer has one shape) take a SIMD fast path over
    /// the flat word arrays; the positional fallback handles crop/extend.
    /// Both produce identical words: the flat loop visits elements in
    /// the same row-major order with the same wrapping integer ops.
    pub fn compute(base: &Matrix, target: &Matrix, op: DeltaOp) -> Self {
        let (rows, cols) = target.shape();
        if base.shape() == target.shape() {
            let mut words: Vec<u32> = target.as_slice().iter().map(|x| x.to_bits()).collect();
            let base_bits = simd::bits_of(base.as_slice());
            match op {
                DeltaOp::Sub => simd::sub_assign(&mut words, base_bits),
                DeltaOp::Xor => simd::xor_assign(&mut words, base_bits),
            }
            return Self {
                op,
                rows,
                cols,
                words,
            };
        }
        let mut words = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let t = target.get(r, c).to_bits();
                let b = base_bits(base, r, c);
                words.push(match op {
                    DeltaOp::Sub => t.wrapping_sub(b),
                    DeltaOp::Xor => t ^ b,
                });
            }
        }
        Self {
            op,
            rows,
            cols,
            words,
        }
    }

    /// Recreate the target from the base this delta was computed against.
    /// (Any base works shape-wise; correctness requires the original base.)
    pub fn apply(&self, base: &Matrix) -> Matrix {
        if base.shape() == (self.rows, self.cols) {
            let mut bits: Vec<u32> = simd::bits_of(base.as_slice()).to_vec();
            match self.op {
                DeltaOp::Sub => simd::add_assign(&mut bits, &self.words),
                DeltaOp::Xor => simd::xor_assign(&mut bits, &self.words),
            }
            let data: Vec<f32> = bits.into_iter().map(f32::from_bits).collect();
            return Matrix::from_vec(self.rows, self.cols, data);
        }
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let d = self.words[r * self.cols + c];
                let b = base_bits(base, r, c);
                let bits = match self.op {
                    DeltaOp::Sub => b.wrapping_add(d),
                    DeltaOp::Xor => b ^ d,
                };
                data.push(f32::from_bits(bits));
            }
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn num_elements(&self) -> usize {
        self.words.len()
    }

    /// Serialized payload with a small header.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4 + 12);
        out.push(match self.op {
            DeltaOp::Sub => 1u8,
            DeltaOp::Xor => 2u8,
        });
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        out.extend_from_slice(&(self.cols as u32).to_le_bytes());
        for &w in &self.words {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }

    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 9 {
            return None;
        }
        let op = match data[0] {
            1 => DeltaOp::Sub,
            2 => DeltaOp::Xor,
            _ => return None,
        };
        let rows = u32::from_le_bytes(data[1..5].try_into().expect("fixed-size chunk")) as usize;
        let cols = u32::from_le_bytes(data[5..9].try_into().expect("fixed-size chunk")) as usize;
        let body = &data[9..];
        if body.len() != rows.checked_mul(cols)?.checked_mul(4)? {
            return None;
        }
        let words = body
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("fixed-size chunk")))
            .collect();
        Some(Self {
            op,
            rows,
            cols,
            words,
        })
    }

    /// The raw word bytes (no header), big-endian (so byte-plane splitting
    /// puts the most significant delta byte in plane 0) — what PAS
    /// compresses.
    pub fn word_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_be_bytes()).collect()
    }

    /// Byte planes of the delta words (plane 0 = most significant byte),
    /// for segmented storage of deltas.
    pub fn byte_planes(&self) -> Vec<Vec<u8>> {
        split_byte_planes(&self.word_bytes(), 4)
    }

    /// Fraction of delta words that are exactly zero — a cheap closeness
    /// statistic used by PAS cost estimation.
    pub fn zero_fraction(&self) -> f64 {
        if self.words.is_empty() {
            return 1.0;
        }
        self.words.iter().filter(|&&w| w == 0).count() as f64 / self.words.len() as f64
    }
}

/// Bitwise equality of two matrices (distinguishes -0.0 from 0.0 and treats
/// identical NaN patterns as equal — exactly what archival recovery needs).
pub fn bit_equal(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_target(close: bool) -> (Matrix, Matrix) {
        let base = Matrix::from_fn(6, 7, |r, c| ((r * 7 + c) as f32 * 0.37).sin() * 0.5);
        let target = if close {
            base.map(|x| x + 1e-4)
        } else {
            Matrix::from_fn(6, 7, |r, c| ((r * 7 + c) as f32 * 1.7).cos() * 2.0)
        };
        (base, target)
    }

    #[test]
    fn sub_roundtrip_exact() {
        for close in [true, false] {
            let (b, t) = base_target(close);
            let d = Delta::compute(&b, &t, DeltaOp::Sub);
            assert!(bit_equal(&d.apply(&b), &t));
        }
    }

    #[test]
    fn xor_roundtrip_exact() {
        for close in [true, false] {
            let (b, t) = base_target(close);
            let d = Delta::compute(&b, &t, DeltaOp::Xor);
            assert!(bit_equal(&d.apply(&b), &t));
        }
    }

    #[test]
    fn self_delta_is_zero() {
        let (b, _) = base_target(true);
        for op in [DeltaOp::Sub, DeltaOp::Xor] {
            let d = Delta::compute(&b, &b, op);
            assert_eq!(d.zero_fraction(), 1.0);
            assert!(bit_equal(&d.apply(&b), &b));
        }
    }

    #[test]
    fn mismatched_shapes_grow_and_shrink() {
        let base = Matrix::from_fn(4, 4, |r, c| (r + c) as f32);
        let bigger = Matrix::from_fn(6, 5, |r, c| (r * c) as f32 + 0.5);
        let smaller = Matrix::from_fn(2, 3, |r, c| (r + 2 * c) as f32 - 0.25);
        for op in [DeltaOp::Sub, DeltaOp::Xor] {
            let d1 = Delta::compute(&base, &bigger, op);
            assert!(bit_equal(&d1.apply(&base), &bigger));
            let d2 = Delta::compute(&base, &smaller, op);
            assert!(bit_equal(&d2.apply(&base), &smaller));
        }
    }

    #[test]
    fn delta_from_empty_base_is_materialization() {
        let empty = Matrix::zeros(0, 0);
        let t = Matrix::from_fn(3, 3, |r, c| (r as f32) - (c as f32) * 0.5);
        let d = Delta::compute(&empty, &t, DeltaOp::Sub);
        assert!(bit_equal(&d.apply(&empty), &t));
        // XOR against zero bits is the identity on patterns.
        let dx = Delta::compute(&empty, &t, DeltaOp::Xor);
        assert!(bit_equal(&dx.apply(&empty), &t));
    }

    #[test]
    fn serialization_roundtrip() {
        let (b, t) = base_target(true);
        let d = Delta::compute(&b, &t, DeltaOp::Xor);
        let bytes = d.to_bytes();
        let back = Delta::from_bytes(&bytes).unwrap();
        assert_eq!(back, d);
        assert!(Delta::from_bytes(&bytes[..5]).is_none());
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(Delta::from_bytes(&bad).is_none());
    }

    #[test]
    fn close_matrices_give_compressible_deltas() {
        // The core premise of Fig 6(b): deltas between nearby snapshots
        // have low-entropy high bytes.
        let (b, t) = base_target(true);
        let d = Delta::compute(&b, &t, DeltaOp::Sub);
        let planes = d.byte_planes();
        // Top delta byte should be overwhelmingly 0x00 or 0xff.
        let top = &planes[0];
        let trivial = top.iter().filter(|&&x| x == 0 || x == 0xff).count();
        assert!(
            trivial as f64 > 0.9 * top.len() as f64,
            "top delta plane not sparse: {trivial}/{}",
            top.len()
        );
    }

    #[test]
    fn same_shape_fast_path_matches_positional_path() {
        // Force the positional path by cropping a (rows+1) base down to
        // the target shape element-for-element, then compare against the
        // same-shape SIMD path on the identical element values.
        for (rows, cols) in [(1, 1), (3, 5), (7, 9), (16, 16), (5, 33)] {
            let target = Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32).sin());
            let base_same = Matrix::from_fn(rows, cols, |r, c| ((r + c) as f32).cos() * 0.7);
            let base_bigger = Matrix::from_fn(rows + 1, cols, |r, c| {
                if r < rows {
                    base_same.get(r, c)
                } else {
                    9.9
                }
            });
            for op in [DeltaOp::Sub, DeltaOp::Xor] {
                let fast = Delta::compute(&base_same, &target, op);
                let positional = Delta::compute(&base_bigger, &target, op);
                assert_eq!(fast.words, positional.words, "{rows}x{cols} {op:?}");
                assert!(bit_equal(&fast.apply(&base_same), &target));
                assert!(bit_equal(&positional.apply(&base_bigger), &target));
            }
        }
    }

    #[test]
    fn negative_zero_and_nan_patterns_survive() {
        let base = Matrix::from_vec(1, 3, vec![1.0, -0.0, f32::NAN]);
        let target = Matrix::from_vec(1, 3, vec![-0.0, f32::NAN, 2.0]);
        for op in [DeltaOp::Sub, DeltaOp::Xor] {
            let d = Delta::compute(&base, &target, op);
            assert!(bit_equal(&d.apply(&base), &target), "{op:?}");
        }
    }
}
