//! Runtime-dispatched SIMD kernels for the delta/XOR word loops.
//!
//! Every kernel here is **bit-exact** against its scalar fallback — the
//! operations are wrapping 32-bit integer arithmetic and XOR on IEEE-754
//! bit patterns, so there is no floating-point reassociation to worry
//! about. The widest available instruction set is picked once per
//! process on x86_64 (AVX2, else the SSE2 baseline that the target
//! guarantees); every other architecture runs the scalar path. The
//! proptest suite at the bottom pins scalar/SSE2/AVX2 equivalence on
//! adversarial lengths and misaligned slices.
//!
//! Safety story, uniform across kernels: all pointer arithmetic is
//! bounded by `n = dst.len().min(src.len())` computed in safe code, the
//! vector loop advances in whole lanes with `i + LANES <= n`, and the
//! tail is handled by the scalar loop. Loads/stores are unaligned
//! (`loadu`/`storeu`), so slice alignment is irrelevant.

use std::sync::atomic::{AtomicU8, Ordering};

const LEVEL_UNKNOWN: u8 = 0;
// On x86_64 this level is unreachable (SSE2 is baseline), so the const is
// referenced only on other targets.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
const LEVEL_SCALAR: u8 = 1;
#[cfg(target_arch = "x86_64")]
const LEVEL_SSE2: u8 = 2;
#[cfg(target_arch = "x86_64")]
const LEVEL_AVX2: u8 = 3;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNKNOWN);

fn detect() -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            LEVEL_AVX2
        } else {
            // SSE2 is part of the x86_64 baseline: always available.
            LEVEL_SSE2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        LEVEL_SCALAR
    }
}

fn level() -> u8 {
    let l = LEVEL.load(Ordering::Relaxed);
    if l != LEVEL_UNKNOWN {
        return l;
    }
    let detected = detect();
    LEVEL.store(detected, Ordering::Relaxed);
    detected
}

/// The dispatch level in effect: `"avx2"`, `"sse2"`, or `"scalar"`.
/// Surfaced in bench reports so perf numbers carry their ISA context.
pub fn level_name() -> &'static str {
    match level() {
        #[cfg(target_arch = "x86_64")]
        LEVEL_AVX2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        LEVEL_SSE2 => "sse2",
        _ => "scalar",
    }
}

/// Reinterpret a float slice as its IEEE-754 bit patterns without
/// copying. `f32` and `u32` have identical size and alignment, and every
/// bit pattern is a valid `u32`, so the view is total.
// mh-audit: trusted(total: same-size same-align reinterpret, no arithmetic)
pub fn bits_of(s: &[f32]) -> &[u32] {
    // SAFETY: size_of::<f32>() == size_of::<u32>(), align_of matches,
    // and u32 has no invalid bit patterns; lifetime is inherited from s.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u32>(), s.len()) }
}

macro_rules! op_kernel {
    (
        $(#[$doc:meta])*
        $name:ident, $scalar:ident, $sse2:ident, $avx2:ident,
        $scalar_op:expr, $sse2_insn:ident, $avx2_insn:ident
    ) => {
        $(#[$doc])*
        // mh-audit: trusted(total: prefix-length-bounded loops, equivalence proptests in delta::simd::tests)
        pub fn $name(dst: &mut [u32], src: &[u32]) {
            match level() {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: level() returned AVX2 only after runtime
                // feature detection succeeded on this CPU.
                LEVEL_AVX2 => unsafe { $avx2(dst, src) },
                #[cfg(target_arch = "x86_64")]
                // SAFETY: SSE2 is unconditionally present on x86_64.
                LEVEL_SSE2 => unsafe { $sse2(dst, src) },
                _ => $scalar(dst, src),
            }
        }

        fn $scalar(dst: &mut [u32], src: &[u32]) {
            let op = $scalar_op;
            for (d, s) in dst.iter_mut().zip(src) {
                *d = op(*d, *s);
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "sse2")]
        unsafe fn $sse2(dst: &mut [u32], src: &[u32]) {
            use std::arch::x86_64::*;
            let n = dst.len().min(src.len());
            let mut i = 0usize;
            while i + 4 <= n {
                // SAFETY: i + 4 <= n <= len of both slices; unaligned ok.
                let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), $sse2_insn(d, s));
                i += 4;
            }
            $scalar(&mut dst[i..], &src[i..]);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2(dst: &mut [u32], src: &[u32]) {
            use std::arch::x86_64::*;
            let n = dst.len().min(src.len());
            let mut i = 0usize;
            while i + 8 <= n {
                // SAFETY: i + 8 <= n <= len of both slices; unaligned ok.
                let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
                let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), $avx2_insn(d, s));
                i += 8;
            }
            $scalar(&mut dst[i..], &src[i..]);
        }
    };
}

op_kernel!(
    /// `dst[i] ^= src[i]` over the common prefix of the two slices —
    /// the XOR delta loop (self-inverse: compute and apply are the
    /// same operation).
    xor_assign,
    xor_assign_scalar,
    xor_assign_sse2,
    xor_assign_avx2,
    |d: u32, s: u32| d ^ s,
    _mm_xor_si128,
    _mm256_xor_si256
);

op_kernel!(
    /// `dst[i] = dst[i].wrapping_sub(src[i])` over the common prefix —
    /// the Sub-delta *compute* loop (target bits minus base bits).
    sub_assign,
    sub_assign_scalar,
    sub_assign_sse2,
    sub_assign_avx2,
    |d: u32, s: u32| d.wrapping_sub(s),
    _mm_sub_epi32,
    _mm256_sub_epi32
);

op_kernel!(
    /// `dst[i] = dst[i].wrapping_add(src[i])` over the common prefix —
    /// the Sub-delta *apply* loop (base bits plus delta words).
    add_assign,
    add_assign_scalar,
    add_assign_sse2,
    add_assign_avx2,
    |d: u32, s: u32| d.wrapping_add(s),
    _mm_add_epi32,
    _mm256_add_epi32
);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    #[test]
    fn level_is_stable_and_named() {
        let l = level_name();
        assert!(["avx2", "sse2", "scalar"].contains(&l), "{l}");
        assert_eq!(level_name(), l, "detection is cached");
    }

    #[test]
    fn bits_of_roundtrips_patterns() {
        let floats = [0.0f32, -0.0, 1.5, f32::NAN, f32::INFINITY, -2.25];
        let bits = bits_of(&floats);
        for (f, b) in floats.iter().zip(bits) {
            assert_eq!(f.to_bits(), *b);
        }
        assert!(bits_of(&[]).is_empty());
    }

    /// Run one op through every implementation compiled for this target
    /// and demand bit-identical results, including on misaligned
    /// sub-slices (offset 1 breaks 16/32-byte alignment for u32).
    fn assert_all_impls_agree(
        dst: &[u32],
        src: &[u32],
        scalar: fn(&mut [u32], &[u32]),
        dispatched: fn(&mut [u32], &[u32]),
        #[cfg(target_arch = "x86_64")] sse2: unsafe fn(&mut [u32], &[u32]),
        #[cfg(target_arch = "x86_64")] avx2: unsafe fn(&mut [u32], &[u32]),
    ) {
        for offset in [0usize, 1, 3] {
            if offset > dst.len() || offset > src.len() {
                continue;
            }
            let (d0, s0) = (&dst[offset..], &src[offset..]);
            let mut want = d0.to_vec();
            scalar(&mut want, s0);

            let mut got = d0.to_vec();
            dispatched(&mut got, s0);
            assert_eq!(got, want, "dispatched != scalar at offset {offset}");

            #[cfg(target_arch = "x86_64")]
            {
                let mut got = d0.to_vec();
                // SAFETY: SSE2 is baseline on x86_64.
                unsafe { sse2(&mut got, s0) };
                assert_eq!(got, want, "sse2 != scalar at offset {offset}");
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut got = d0.to_vec();
                    // SAFETY: AVX2 presence just checked.
                    unsafe { avx2(&mut got, s0) };
                    assert_eq!(got, want, "avx2 != scalar at offset {offset}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn xor_matches_scalar_on_adversarial_inputs(
            dst in vec(any::<u32>(), 0..200),
            src in vec(any::<u32>(), 0..200),
        ) {
            assert_all_impls_agree(
                &dst, &src,
                xor_assign_scalar, xor_assign,
                #[cfg(target_arch = "x86_64")] xor_assign_sse2,
                #[cfg(target_arch = "x86_64")] xor_assign_avx2,
            );
        }

        #[test]
        fn sub_matches_scalar_on_adversarial_inputs(
            dst in vec(any::<u32>(), 0..200),
            src in vec(any::<u32>(), 0..200),
        ) {
            assert_all_impls_agree(
                &dst, &src,
                sub_assign_scalar, sub_assign,
                #[cfg(target_arch = "x86_64")] sub_assign_sse2,
                #[cfg(target_arch = "x86_64")] sub_assign_avx2,
            );
        }

        #[test]
        fn add_matches_scalar_on_adversarial_inputs(
            dst in vec(any::<u32>(), 0..200),
            src in vec(any::<u32>(), 0..200),
        ) {
            assert_all_impls_agree(
                &dst, &src,
                add_assign_scalar, add_assign,
                #[cfg(target_arch = "x86_64")] add_assign_sse2,
                #[cfg(target_arch = "x86_64")] add_assign_avx2,
            );
        }

        #[test]
        fn sub_then_add_is_identity(
            base in vec(any::<u32>(), 0..200),
        ) {
            let target: Vec<u32> = base.iter().map(|b| b.rotate_left(7) ^ 0xA5A5_5A5A).collect();
            let mut delta = target.clone();
            sub_assign(&mut delta, &base);
            let mut back = base.clone();
            add_assign(&mut back, &delta);
            prop_assert_eq!(back, target);
        }
    }

    #[test]
    fn exact_lane_boundaries() {
        // Lengths straddling the 4-lane SSE2 and 8-lane AVX2 widths,
        // plus the empty and single-element cases.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
            let dst: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B1)).collect();
            let src: Vec<u32> = (0..n as u32).map(|i| !i).collect();
            assert_all_impls_agree(
                &dst,
                &src,
                xor_assign_scalar,
                xor_assign,
                #[cfg(target_arch = "x86_64")]
                xor_assign_sse2,
                #[cfg(target_arch = "x86_64")]
                xor_assign_avx2,
            );
        }
    }
}
