//! Property tests: delta application is exactly inverse to delta
//! computation for arbitrary bit patterns and arbitrary shape pairs.

use mh_delta::{bit_equal, Delta, DeltaOp};
use mh_tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(any::<u32>(), r * c).prop_map(move |bits| {
            Matrix::from_vec(r, c, bits.into_iter().map(f32::from_bits).collect())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_same_shape(bits in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..64)) {
        let n = bits.len();
        let base = Matrix::from_vec(1, n, bits.iter().map(|(b, _)| f32::from_bits(*b)).collect());
        let target = Matrix::from_vec(1, n, bits.iter().map(|(_, t)| f32::from_bits(*t)).collect());
        for op in [DeltaOp::Sub, DeltaOp::Xor] {
            let d = Delta::compute(&base, &target, op);
            prop_assert!(bit_equal(&d.apply(&base), &target));
        }
    }

    #[test]
    fn roundtrip_any_shapes(base in arb_matrix(), target in arb_matrix()) {
        for op in [DeltaOp::Sub, DeltaOp::Xor] {
            let d = Delta::compute(&base, &target, op);
            prop_assert!(bit_equal(&d.apply(&base), &target));
        }
    }

    #[test]
    fn serialization_total(base in arb_matrix(), target in arb_matrix()) {
        let d = Delta::compute(&base, &target, DeltaOp::Sub);
        let back = Delta::from_bytes(&d.to_bytes()).unwrap();
        prop_assert!(bit_equal(&back.apply(&base), &target));
    }

    #[test]
    fn from_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Delta::from_bytes(&data);
    }
}
