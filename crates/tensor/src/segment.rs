//! Bytewise segmentation of float matrices (§IV-B of the paper).
//!
//! A 32-bit float matrix is stored as four byte *planes*: plane 0 holds the
//! 8 high-order bits of every element (sign + 7 exponent bits), plane 1 the
//! next byte, and so on. High-order planes have low entropy and compress
//! well; low-order planes can be offloaded or skipped entirely.
//!
//! Given only the first `k` planes, every element is known to lie in a
//! closed interval — [`SegmentedMatrix::bounds`] computes those intervals,
//! which drive the progressive (perturbation-aware) query evaluation of
//! §IV-D.

use crate::matrix::Matrix;

/// Number of byte planes for an f32 matrix.
pub const NUM_PLANES: usize = 4;

/// A float matrix decomposed into big-endian byte planes.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedMatrix {
    rows: usize,
    cols: usize,
    /// `planes[p][i]` is byte `p` (0 = most significant) of element `i`'s
    /// IEEE-754 bit pattern.
    planes: [Vec<u8>; NUM_PLANES],
}

impl SegmentedMatrix {
    /// Decompose a matrix into byte planes.
    pub fn from_matrix(m: &Matrix) -> Self {
        let n = m.len();
        let mut planes: [Vec<u8>; NUM_PLANES] = std::array::from_fn(|_| Vec::with_capacity(n));
        for &x in m.as_slice() {
            let b = x.to_bits().to_be_bytes();
            for (p, plane) in planes.iter_mut().enumerate() {
                plane.push(b[p]);
            }
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            planes,
        }
    }

    /// Reassemble from complete planes (plane lengths must agree with the
    /// shape).
    pub fn from_planes(rows: usize, cols: usize, planes: [Vec<u8>; NUM_PLANES]) -> Option<Self> {
        if planes.iter().any(|p| p.len() != rows * cols) {
            return None;
        }
        Some(Self { rows, cols, planes })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn num_elements(&self) -> usize {
        self.rows * self.cols
    }

    /// Access one byte plane (0 = most significant).
    pub fn plane(&self, p: usize) -> &[u8] {
        &self.planes[p]
    }

    /// Take ownership of the planes.
    pub fn into_planes(self) -> [Vec<u8>; NUM_PLANES] {
        self.planes
    }

    /// Exact reconstruction from all four planes.
    pub fn to_matrix(&self) -> Matrix {
        let n = self.num_elements();
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            let bits = u32::from_be_bytes([
                self.planes[0][i],
                self.planes[1][i],
                self.planes[2][i],
                self.planes[3][i],
            ]);
            data.push(f32::from_bits(bits));
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Truncated reconstruction using only the first `k` planes (remaining
    /// bytes read as zero). `k` in 1..=4.
    pub fn truncated(&self, k: usize) -> Matrix {
        assert!((1..=NUM_PLANES).contains(&k));
        let n = self.num_elements();
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            let mut b = [0u8; 4];
            for (p, byte) in b.iter_mut().enumerate().take(k) {
                *byte = self.planes[p][i];
            }
            data.push(sanitize(f32::from_bits(u32::from_be_bytes(b))));
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Per-element closed intervals `[lo, hi]` implied by knowing only the
    /// first `k` planes.
    ///
    /// IEEE-754 bit patterns are monotonic in value for a fixed sign
    /// (sign-magnitude ordering), so the interval endpoints are the patterns
    /// with the unknown low bits all-zero and all-one.
    pub fn bounds(&self, k: usize) -> (Matrix, Matrix) {
        assert!((1..=NUM_PLANES).contains(&k));
        let n = self.num_elements();
        let unknown_bits = 8 * (NUM_PLANES - k) as u32;
        let mask: u32 = if unknown_bits == 0 {
            0
        } else {
            (1u32 << unknown_bits) - 1
        };
        let mut lo = Vec::with_capacity(n);
        let mut hi = Vec::with_capacity(n);
        for i in 0..n {
            let mut b = [0u8; 4];
            for (p, byte) in b.iter_mut().enumerate().take(k) {
                *byte = self.planes[p][i];
            }
            let base = u32::from_be_bytes(b);
            let v0 = sanitize(f32::from_bits(base));
            let v1 = sanitize(f32::from_bits(base | mask));
            // Negative sign: larger magnitude pattern is more negative.
            if base & 0x8000_0000 != 0 {
                lo.push(v1);
                hi.push(v0);
            } else {
                lo.push(v0);
                hi.push(v1);
            }
        }
        (
            Matrix::from_vec(self.rows, self.cols, lo),
            Matrix::from_vec(self.rows, self.cols, hi),
        )
    }

    /// Total bytes across the first `k` planes.
    pub fn prefix_bytes(&self, k: usize) -> usize {
        self.num_elements() * k
    }
}

/// Split a flat byte buffer of fixed-width words into per-byte planes
/// (plane 0 = first byte of each word). Works for any word width, so lossy
/// encodings (16-bit halves, 32-bit fixed point) can also be stored
/// bytewise — the "bytewise" rows of Table IV.
pub fn split_byte_planes(words: &[u8], width: usize) -> Vec<Vec<u8>> {
    assert!(
        width > 0 && words.len().is_multiple_of(width),
        "buffer not word-aligned"
    );
    let n = words.len() / width;
    let mut planes = vec![Vec::with_capacity(n); width];
    for w in words.chunks_exact(width) {
        for (p, &b) in w.iter().enumerate() {
            planes[p].push(b);
        }
    }
    planes
}

/// Inverse of [`split_byte_planes`].
pub fn join_byte_planes(planes: &[Vec<u8>]) -> Option<Vec<u8>> {
    let width = planes.len();
    if width == 0 {
        return Some(Vec::new());
    }
    let n = planes[0].len();
    if planes.iter().any(|p| p.len() != n) {
        return None;
    }
    let mut out = Vec::with_capacity(n * width);
    for i in 0..n {
        for plane in planes {
            out.push(plane[i]);
        }
    }
    Some(out)
}

/// Replace NaN/Inf produced by extreme bit patterns with large finite
/// values, keeping interval arithmetic well-defined. Learned weights never
/// live near the f32 range limit, so this only triggers on adversarial
/// inputs.
#[inline]
fn sanitize(x: f32) -> f32 {
    if x.is_nan() {
        f32::MAX
    } else if x.is_infinite() {
        f32::MAX.copysign(x)
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights() -> Matrix {
        Matrix::from_fn(8, 9, |r, c| {
            let i = (r * 9 + c) as f32;
            (i * 0.013 - 0.45) * if r % 2 == 0 { 1.0 } else { -1.0 }
        })
    }

    #[test]
    fn exact_roundtrip() {
        let m = weights();
        let seg = SegmentedMatrix::from_matrix(&m);
        assert_eq!(seg.to_matrix(), m);
    }

    #[test]
    fn plane_lengths() {
        let m = weights();
        let seg = SegmentedMatrix::from_matrix(&m);
        for p in 0..NUM_PLANES {
            assert_eq!(seg.plane(p).len(), m.len());
        }
        assert_eq!(seg.prefix_bytes(2), m.len() * 2);
    }

    #[test]
    fn truncation_error_shrinks_with_more_planes() {
        let m = weights();
        let seg = SegmentedMatrix::from_matrix(&m);
        let e1 = m.mean_abs_diff(&seg.truncated(1));
        let e2 = m.mean_abs_diff(&seg.truncated(2));
        let e3 = m.mean_abs_diff(&seg.truncated(3));
        let e4 = m.mean_abs_diff(&seg.truncated(4));
        assert!(e1 >= e2 && e2 >= e3 && e3 >= e4);
        assert_eq!(e4, 0.0);
    }

    #[test]
    fn bounds_contain_true_values() {
        let m = weights();
        let seg = SegmentedMatrix::from_matrix(&m);
        for k in 1..=4 {
            let (lo, hi) = seg.bounds(k);
            for i in 0..m.len() {
                let (l, h, x) = (lo.as_slice()[i], hi.as_slice()[i], m.as_slice()[i]);
                assert!(l <= x && x <= h, "k={k} l={l} x={x} h={h}");
            }
        }
    }

    #[test]
    fn bounds_tighten_with_more_planes() {
        let m = weights();
        let seg = SegmentedMatrix::from_matrix(&m);
        let (lo1, hi1) = seg.bounds(1);
        let (lo3, hi3) = seg.bounds(3);
        for i in 0..m.len() {
            let w1 = hi1.as_slice()[i] - lo1.as_slice()[i];
            let w3 = hi3.as_slice()[i] - lo3.as_slice()[i];
            assert!(w3 <= w1, "interval must tighten: {w3} vs {w1}");
        }
    }

    #[test]
    fn full_planes_bounds_are_exact() {
        let m = weights();
        let seg = SegmentedMatrix::from_matrix(&m);
        let (lo, hi) = seg.bounds(4);
        assert_eq!(lo, m);
        assert_eq!(hi, m);
    }

    #[test]
    fn negative_values_bounds_oriented_correctly() {
        let m = Matrix::from_vec(1, 2, vec![-1.5, 1.5]);
        let seg = SegmentedMatrix::from_matrix(&m);
        let (lo, hi) = seg.bounds(1);
        assert!(lo.get(0, 0) <= -1.5 && hi.get(0, 0) >= -1.5);
        assert!(lo.get(0, 1) <= 1.5 && hi.get(0, 1) >= 1.5);
        assert!(lo.get(0, 0) < hi.get(0, 0));
    }

    #[test]
    fn from_planes_validates_shape() {
        let m = weights();
        let seg = SegmentedMatrix::from_matrix(&m);
        let planes = seg.clone().into_planes();
        assert!(SegmentedMatrix::from_planes(8, 9, planes.clone()).is_some());
        assert!(SegmentedMatrix::from_planes(9, 9, planes).is_none());
    }

    #[test]
    fn high_plane_has_lower_entropy_than_low_plane() {
        // The design premise: plane 0 compresses better than plane 3.
        let m = Matrix::from_fn(64, 64, |r, c| ((r * 64 + c) as f32).sin() * 0.1);
        let seg = SegmentedMatrix::from_matrix(&m);
        let distinct = |bytes: &[u8]| {
            let mut seen = [false; 256];
            for &b in bytes {
                seen[b as usize] = true;
            }
            seen.iter().filter(|&&s| s).count()
        };
        assert!(distinct(seg.plane(0)) < distinct(seg.plane(3)));
    }
}
