//! Float representation schemes (§IV-B "Float Data Type Schemes").
//!
//! PAS lets the user trade storage for lossyness per snapshot instead of
//! deleting snapshots outright. Schemes: IEEE f32 (lossless), IEEE half,
//! truncated bfloat16, fixed point with a per-matrix scale, and k-bit
//! quantization (uniform or random codebooks).
//!
//! An optional *normalization* preprocessing step (Table IV) adds a
//! power-of-two offset to every value so signs align and exponents nearly
//! align, dropping the entropy of high-order bytes.

use crate::half::{bf16_bits_to_f32, f16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits};
use crate::matrix::Matrix;
use crate::quant::Codebook;

/// A float representation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// IEEE-754 binary32, lossless.
    F32,
    /// IEEE-754 binary16 (the "IEEE half-precision proposal").
    F16,
    /// Truncated 16-bit ("tensorflow truncated 16 bits").
    Bf16,
    /// Fixed point: a global per-matrix scale, `bits`-bit signed mantissas
    /// (2..=32).
    Fixed { bits: u8 },
    /// Uniform quantization with `bits` <= 8 and a stored coding table.
    QuantUniform { bits: u8 },
    /// Random (sampled-codebook) quantization with `bits` <= 8.
    QuantRandom { bits: u8, seed: u64 },
}

impl Scheme {
    /// Raw payload bytes per element, before entropy coding (fractional for
    /// sub-byte quantization).
    pub fn bytes_per_element(&self) -> f64 {
        match self {
            Scheme::F32 => 4.0,
            Scheme::F16 | Scheme::Bf16 => 2.0,
            Scheme::Fixed { bits } => f64::from(*bits) / 8.0,
            Scheme::QuantUniform { bits } | Scheme::QuantRandom { bits, .. } => {
                f64::from(*bits) / 8.0
            }
        }
    }

    /// Whether decoding recovers the exact input.
    pub fn is_lossless(&self) -> bool {
        matches!(self, Scheme::F32)
    }

    /// Stable name for reports.
    pub fn name(&self) -> String {
        match self {
            Scheme::F32 => "float32".into(),
            Scheme::F16 => "float16".into(),
            Scheme::Bf16 => "bfloat16".into(),
            Scheme::Fixed { bits } => format!("fixed{bits}"),
            Scheme::QuantUniform { bits } => format!("quant-uniform{bits}"),
            Scheme::QuantRandom { bits, .. } => format!("quant-random{bits}"),
        }
    }
}

/// A matrix encoded under a [`Scheme`], optionally normalized first.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedMatrix {
    pub scheme: Scheme,
    pub rows: usize,
    pub cols: usize,
    /// Power-of-two offset added to every value before encoding (Table IV
    /// "After Normalization"), or 0.0.
    pub offset: f32,
    /// Fixed-point reconstruction scale (value = q * scale), if applicable.
    pub scale: f32,
    /// Quantization codebook, if applicable.
    pub codebook: Option<Codebook>,
    /// The encoded words / packed codes.
    pub payload: Vec<u8>,
}

/// Power-of-two offset that makes every value of `m` strictly positive with
/// a tight exponent spread.
pub fn normalization_offset(m: &Matrix) -> f32 {
    let a = m.max_abs();
    if a == 0.0 || !a.is_finite() {
        return 1.0;
    }
    // 4 * next_pow2(max_abs): values land in [3/4 C, 5/4 C], so sign bits
    // and the top exponent bits coincide for the entire matrix.
    let p = a.log2().ceil() as i32;
    2f32.powi(p + 2)
}

/// Encode a matrix under the given scheme.
pub fn encode(m: &Matrix, scheme: Scheme, normalize: bool) -> EncodedMatrix {
    let offset = if normalize {
        normalization_offset(m)
    } else {
        0.0
    };
    let work = if offset != 0.0 {
        m.map(|x| x + offset)
    } else {
        m.clone()
    };
    let (payload, scale, codebook) = match scheme {
        Scheme::F32 => {
            let mut out = Vec::with_capacity(work.len() * 4);
            for &x in work.as_slice() {
                out.extend_from_slice(&x.to_bits().to_be_bytes());
            }
            (out, 0.0, None)
        }
        Scheme::F16 => {
            let mut out = Vec::with_capacity(work.len() * 2);
            for &x in work.as_slice() {
                out.extend_from_slice(&f32_to_f16_bits(x).to_be_bytes());
            }
            (out, 0.0, None)
        }
        Scheme::Bf16 => {
            let mut out = Vec::with_capacity(work.len() * 2);
            for &x in work.as_slice() {
                out.extend_from_slice(&f32_to_bf16_bits(x).to_be_bytes());
            }
            (out, 0.0, None)
        }
        Scheme::Fixed { bits } => {
            assert!((2..=32).contains(&bits), "fixed point supports 2..=32 bits");
            let max_q = (1i64 << (bits - 1)) - 1;
            let a = work.max_abs();
            let scale = if a == 0.0 { 1.0 } else { a / max_q as f32 };
            let mut out = Vec::with_capacity(work.len() * 4);
            // Quantize in f64 and clamp in the integer domain: clamping
            // against `max_q as f32` is wrong because f32 cannot represent
            // 2^k - 1 exactly for k > 24 (the rounded-up bound lets the sign
            // bit flip).
            let quantize = move |x: f32| -> i64 {
                let q = (f64::from(x) / f64::from(scale)).round() as i64;
                q.clamp(-max_q, max_q)
            };
            if bits == 32 {
                for &x in work.as_slice() {
                    let q = quantize(x) as i32;
                    out.extend_from_slice(&q.to_be_bytes());
                }
            } else {
                // Pack k-bit two's-complement values LSB-first.
                let mut acc = 0u64;
                let mut nbits = 0u32;
                let mask = (1u64 << bits) - 1;
                for &x in work.as_slice() {
                    let q = quantize(x);
                    acc |= ((q as u64) & mask) << nbits;
                    nbits += u32::from(bits);
                    while nbits >= 8 {
                        out.push((acc & 0xff) as u8);
                        acc >>= 8;
                        nbits -= 8;
                    }
                }
                if nbits > 0 {
                    out.push((acc & 0xff) as u8);
                }
            }
            (out, scale, None)
        }
        Scheme::QuantUniform { bits } => {
            let cb = Codebook::uniform(&work, bits);
            let payload = cb.encode(&work);
            (payload, 0.0, Some(cb))
        }
        Scheme::QuantRandom { bits, seed } => {
            let cb = Codebook::random(&work, bits, seed);
            let payload = cb.encode(&work);
            (payload, 0.0, Some(cb))
        }
    };
    EncodedMatrix {
        scheme,
        rows: m.rows(),
        cols: m.cols(),
        offset,
        scale,
        codebook,
        payload,
    }
}

/// Decode back to a matrix (lossy except for F32).
pub fn decode(e: &EncodedMatrix) -> Matrix {
    let n = e.rows * e.cols;
    let data: Vec<f32> = match e.scheme {
        Scheme::F32 => e
            .payload
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_be_bytes(c.try_into().expect("fixed-size chunk"))))
            .collect(),
        Scheme::F16 => e
            .payload
            .chunks_exact(2)
            .map(|c| f16_bits_to_f32(u16::from_be_bytes(c.try_into().expect("fixed-size chunk"))))
            .collect(),
        Scheme::Bf16 => e
            .payload
            .chunks_exact(2)
            .map(|c| bf16_bits_to_f32(u16::from_be_bytes(c.try_into().expect("fixed-size chunk"))))
            .collect(),
        Scheme::Fixed { bits } => {
            if bits == 32 {
                e.payload
                    .chunks_exact(4)
                    .map(|c| {
                        i32::from_be_bytes(c.try_into().expect("fixed-size chunk")) as f32 * e.scale
                    })
                    .collect()
            } else {
                let mut out = Vec::with_capacity(n);
                let mut acc = 0u64;
                let mut nbits = 0u32;
                let mut pos = 0usize;
                let mask = (1u64 << bits) - 1;
                let sign_bit = 1u64 << (bits - 1);
                for _ in 0..n {
                    while nbits < u32::from(bits) && pos < e.payload.len() {
                        acc |= u64::from(e.payload[pos]) << nbits;
                        pos += 1;
                        nbits += 8;
                    }
                    let raw = acc & mask;
                    acc >>= bits;
                    nbits = nbits.saturating_sub(u32::from(bits));
                    // Sign-extend.
                    let q = if raw & sign_bit != 0 {
                        (raw | !mask) as i64
                    } else {
                        raw as i64
                    };
                    out.push(q as f32 * e.scale);
                }
                out
            }
        }
        Scheme::QuantUniform { .. } | Scheme::QuantRandom { .. } => {
            let cb = e
                .codebook
                .as_ref()
                .expect("quantized matrix carries codebook");
            return undo_offset(cb.decode(e.rows, e.cols, &e.payload), e.offset);
        }
    };
    undo_offset(Matrix::from_vec(e.rows, e.cols, data), e.offset)
}

fn undo_offset(m: Matrix, offset: f32) -> Matrix {
    if offset == 0.0 {
        m
    } else {
        m.map(|x| x - offset)
    }
}

/// Payload word width in bytes (for bytewise splitting), or None for packed
/// sub-byte payloads.
pub fn word_width(scheme: Scheme) -> Option<usize> {
    match scheme {
        Scheme::F32 | Scheme::Fixed { bits: 32 } => Some(4),
        Scheme::F16 | Scheme::Bf16 | Scheme::Fixed { bits: 16 } => Some(2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights() -> Matrix {
        Matrix::from_fn(10, 12, |r, c| {
            ((r * 12 + c) as f32 * 0.771).sin() * 0.2 - 0.01
        })
    }

    #[test]
    fn f32_is_lossless_roundtrip() {
        let m = weights();
        let e = encode(&m, Scheme::F32, false);
        assert_eq!(decode(&e), m);
        assert_eq!(e.payload.len(), m.len() * 4);
    }

    #[test]
    fn f16_bf16_error_bounds() {
        let m = weights();
        for (scheme, rel) in [(Scheme::F16, 2f32.powi(-10)), (Scheme::Bf16, 2f32.powi(-7))] {
            let back = decode(&encode(&m, scheme, false));
            for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
                let tol = a.abs() * rel + 1e-6;
                assert!((a - b).abs() <= tol, "{scheme:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fixed_point_various_bits() {
        let m = weights();
        for bits in [8u8, 12, 16, 24, 32] {
            let e = encode(&m, Scheme::Fixed { bits }, false);
            let back = decode(&e);
            let tol = m.max_abs() / ((1u64 << (bits - 1)) - 1) as f32 + 1e-7;
            for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
                assert!((a - b).abs() <= tol, "bits={bits}: {a} vs {b} tol {tol}");
            }
        }
    }

    #[test]
    fn fixed_point_payload_size() {
        let m = weights();
        let e8 = encode(&m, Scheme::Fixed { bits: 8 }, false);
        assert_eq!(e8.payload.len(), m.len());
        let e32 = encode(&m, Scheme::Fixed { bits: 32 }, false);
        assert_eq!(e32.payload.len(), m.len() * 4);
    }

    #[test]
    fn quantization_schemes_roundtrip_with_bounded_error() {
        let m = weights();
        let range = m.max() - m.min();
        for scheme in [
            Scheme::QuantUniform { bits: 4 },
            Scheme::QuantUniform { bits: 8 },
            Scheme::QuantRandom { bits: 8, seed: 7 },
        ] {
            let back = decode(&encode(&m, scheme, false));
            let err = m.mean_abs_diff(&back);
            assert!(err < range * 0.3, "{scheme:?} err {err} range {range}");
        }
    }

    #[test]
    fn normalization_roundtrips_and_aligns_signs() {
        let m = weights();
        let e = encode(&m, Scheme::F32, true);
        assert!(e.offset > 0.0);
        // Every stored word has the sign bit clear and shares top exponent
        // bits (low entropy of plane 0).
        let mut top_bytes = std::collections::HashSet::new();
        for w in e.payload.chunks_exact(4) {
            assert_eq!(w[0] & 0x80, 0, "sign aligned");
            top_bytes.insert(w[0]);
        }
        assert!(
            top_bytes.len() <= 2,
            "top byte nearly constant: {top_bytes:?}"
        );
        // Lossless after un-normalization up to float cancellation.
        let back = decode(&e);
        let err = m.mean_abs_diff(&back);
        assert!(
            err <= e.offset * 2e-7,
            "normalization reconstruction error {err}"
        );
    }

    #[test]
    fn normalized_fixed_point_decodes_near_original() {
        let m = weights();
        let e = encode(&m, Scheme::Fixed { bits: 32 }, true);
        let back = decode(&e);
        // Scale grows with the offset, so absolute error grows too; still
        // tiny for 32-bit mantissas.
        assert!(m.mean_abs_diff(&back) < 1e-4);
    }

    #[test]
    fn word_widths() {
        assert_eq!(word_width(Scheme::F32), Some(4));
        assert_eq!(word_width(Scheme::Fixed { bits: 32 }), Some(4));
        assert_eq!(word_width(Scheme::F16), Some(2));
        assert_eq!(word_width(Scheme::QuantUniform { bits: 8 }), None);
    }

    #[test]
    fn scheme_metadata() {
        assert!(Scheme::F32.is_lossless());
        assert!(!Scheme::F16.is_lossless());
        assert_eq!(Scheme::Fixed { bits: 8 }.bytes_per_element(), 1.0);
        assert_eq!(Scheme::QuantUniform { bits: 4 }.bytes_per_element(), 0.5);
        assert_eq!(Scheme::F32.name(), "float32");
    }

    #[test]
    fn zero_matrix_all_schemes() {
        let m = Matrix::zeros(3, 3);
        for scheme in [
            Scheme::F32,
            Scheme::F16,
            Scheme::Bf16,
            Scheme::Fixed { bits: 8 },
            Scheme::QuantUniform { bits: 2 },
            Scheme::QuantRandom { bits: 2, seed: 1 },
        ] {
            let back = decode(&encode(&m, scheme, false));
            assert_eq!(back.shape(), (3, 3));
            for v in back.as_slice() {
                assert!(v.abs() < 1.0, "{scheme:?} zero matrix decoded to {v}");
            }
        }
    }
}
