//! 3-D tensors (channels × height × width) used for DNN activations.

use crate::matrix::Matrix;

/// A dense C×H×W tensor of `f32`, stored channel-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor3 {
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Self {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), c * h * w, "tensor shape mismatch");
        Self { c, h, w, data }
    }

    pub fn filled(c: usize, h: usize, w: usize, v: f32) -> Self {
        Self {
            c,
            h,
            w,
            data: vec![v; c * h * w],
        }
    }

    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    pub fn channels(&self) -> usize {
        self.c
    }

    pub fn height(&self) -> usize {
        self.h
    }

    pub fn width(&self) -> usize {
        self.w
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        self.data[(c * self.h + y) * self.w + x]
    }

    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        self.data[(c * self.h + y) * self.w + x] = v;
    }

    /// Padded read: out-of-range coordinates return 0 (zero padding for
    /// convolutions).
    #[inline]
    pub fn get_padded(&self, c: usize, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y as usize >= self.h || x as usize >= self.w {
            0.0
        } else {
            self.get(c, y as usize, x as usize)
        }
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flatten to a 1×N matrix (for transitioning into full layers).
    pub fn flatten(&self) -> Matrix {
        Matrix::from_vec(1, self.data.len(), self.data.clone())
    }

    /// View a flat vector as a C×H×W tensor.
    pub fn from_flat(c: usize, h: usize, w: usize, flat: &[f32]) -> Self {
        Self::from_vec(c, h, w, flat.to_vec())
    }

    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            c: self.c,
            h: self.h,
            w: self.w,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Index of the maximum element in flattened order (argmax for
    /// classification outputs).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_shape() {
        let mut t = Tensor3::zeros(2, 3, 4);
        t.set(1, 2, 3, 5.0);
        assert_eq!(t.get(1, 2, 3), 5.0);
        assert_eq!(t.shape(), (2, 3, 4));
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn padded_access() {
        let t = Tensor3::filled(1, 2, 2, 1.0);
        assert_eq!(t.get_padded(0, -1, 0), 0.0);
        assert_eq!(t.get_padded(0, 0, 2), 0.0);
        assert_eq!(t.get_padded(0, 1, 1), 1.0);
    }

    #[test]
    fn flatten_order_is_channel_major() {
        let t = Tensor3::from_vec(2, 1, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.flatten().as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(0, 0, 1), 2.0);
        assert_eq!(t.get(1, 0, 0), 3.0);
    }

    #[test]
    fn argmax() {
        let t = Tensor3::from_vec(3, 1, 1, vec![0.1, 0.9, 0.3]);
        assert_eq!(t.argmax(), 1);
    }
}
