//! # mh-tensor
//!
//! Dense float matrices and tensors plus the PAS float representation
//! toolkit: lossy float schemes (f16 / bf16 / fixed-point / quantization),
//! normalization, and bytewise segmentation with interval reconstruction
//! bounds — the storage-side substrate of the ModelHub paper's §IV-B.
//!
//! ```
//! use mh_tensor::{Matrix, SegmentedMatrix};
//! let m = Matrix::from_fn(4, 4, |r, c| (r as f32 - c as f32) * 0.1);
//! let seg = SegmentedMatrix::from_matrix(&m);
//! // Exact from all 4 byte planes:
//! assert_eq!(seg.to_matrix(), m);
//! // Intervals from just the high-order byte contain the true values:
//! let (lo, hi) = seg.bounds(1);
//! for i in 0..m.len() {
//!     assert!(lo.as_slice()[i] <= m.as_slice()[i] && m.as_slice()[i] <= hi.as_slice()[i]);
//! }
//! ```

pub mod half;
pub mod matrix;
pub mod quant;
pub mod scheme;
pub mod segment;
pub mod tensor3;

pub use matrix::Matrix;
pub use quant::Codebook;
pub use scheme::{decode, encode, normalization_offset, word_width, EncodedMatrix, Scheme};
pub use segment::{join_byte_planes, split_byte_planes, SegmentedMatrix, NUM_PLANES};
pub use tensor3::Tensor3;
