//! Dense row-major `f32` matrix — the first-class data type of PAS.
//!
//! The paper treats learned parameters `W` as a collection of float
//! matrices; everything in the archival store operates on this type.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Construct from raw data; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Self { rows, cols, data }
    }

    /// Fallible [`Matrix::from_vec`] for shapes decoded from untrusted
    /// input: `None` on shape overflow or length mismatch instead of a
    /// panic.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Option<Self> {
        if rows.checked_mul(cols) != Some(data.len()) {
            return None;
        }
        Some(Self { rows, cols, data })
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build element-by-element from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Apply `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combine two same-shape matrices elementwise.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop sequential over both
        // operands for cache friendliness.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product (`vec.len() == cols`).
    pub fn matvec(&self, vec: &[f32]) -> Vec<f32> {
        assert_eq!(vec.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0f32; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *o = row.iter().zip(vec).map(|(&w, &x)| w * x).sum();
        }
        out
    }

    pub fn transpose(&self) -> Self {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Minimum element (0.0 for empty).
    pub fn min(&self) -> f32 {
        self.data
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
            .min(f32::INFINITY)
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Largest absolute value (0.0 for empty).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Mean absolute difference to another matrix of the same shape.
    pub fn mean_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape(), other.shape());
        if self.data.is_empty() {
            return 0.0;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f32>()
            / self.data.len() as f32
    }

    /// Serialize to little-endian bytes (shape is not included).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for &x in &self.data {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Deserialize from little-endian bytes produced by [`Self::to_le_bytes`].
    pub fn from_le_bytes(rows: usize, cols: usize, bytes: &[u8]) -> Option<Self> {
        if bytes.len() != rows * cols * 4 {
            return None;
        }
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("fixed-size chunk")))
            .collect();
        Some(Self { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(4, 5, |r, c| (r as f32 - c as f32) * 0.5);
        let x: Vec<f32> = (0..5).map(|i| i as f32 * 0.25 - 0.5).collect();
        let xm = Matrix::from_vec(5, 1, x.clone());
        let via_mm = a.matmul(&xm);
        let via_mv = a.matvec(&x);
        for (a, b) in via_mm.as_slice().iter().zip(&via_mv) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 7, |r, c| (r * 7 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn stats() {
        let m = Matrix::from_vec(1, 4, vec![-3.0, 1.0, 2.0, 0.0]);
        assert_eq!(m.min(), -3.0);
        assert_eq!(m.max(), 2.0);
        assert_eq!(m.max_abs(), 3.0);
        assert_eq!(m.mean(), 0.0);
    }

    #[test]
    fn byte_roundtrip() {
        let m = Matrix::from_fn(5, 5, |r, c| (r as f32).powi(2) - 0.37 * c as f32);
        let b = m.to_le_bytes();
        let back = Matrix::from_le_bytes(5, 5, &b).unwrap();
        assert_eq!(m, back);
        assert!(Matrix::from_le_bytes(5, 4, &b).is_none());
    }
}
