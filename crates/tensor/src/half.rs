//! IEEE-754 half precision (binary16) and bfloat16 conversions.
//!
//! Implemented from scratch (no `half` crate): PAS offers both as lossy
//! float representation schemes — IEEE half per the 2008 proposal the paper
//! cites, and bfloat16 as the "tensorflow truncated 16 bits" scheme.

/// Convert an `f32` to IEEE binary16 bits, rounding to nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a quiet NaN payload bit if any mantissa bit set.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        // Overflow -> infinity.
        return sign | 0x7c00;
    }
    if e >= -14 {
        // Normal range. 10-bit mantissa, round-to-nearest-even on bit 13.
        let m = mant >> 13;
        let rest = mant & 0x1fff;
        let half = 0x1000;
        let mut h = sign | (((e + 15) as u16) << 10) | m as u16;
        if rest > half || (rest == half && (m & 1) == 1) {
            h = h.wrapping_add(1); // may carry into exponent: correct behaviour
        }
        return h;
    }
    if e >= -24 {
        // Subnormal half.
        let shift = (-14 - e) as u32; // 1..=10
        let m = (mant | 0x80_0000) >> (13 + shift);
        let rest_bits = 13 + shift;
        let rest = (mant | 0x80_0000) & ((1 << rest_bits) - 1);
        let half = 1u32 << (rest_bits - 1);
        let mut h = sign | m as u16;
        if rest > half || (rest == half && (m & 1) == 1) {
            h = h.wrapping_add(1);
        }
        return h;
    }
    // Underflow to signed zero.
    sign
}

/// Convert IEEE binary16 bits to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = u32::from(h & 0x3ff);
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalize.
                let mut m = mant;
                let mut e = -14i32;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x3ff;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        }
        0x1f => sign | 0x7f80_0000 | (mant << 13),
        _ => sign | (((i32::from(exp) - 15 + 127) as u32) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

/// Truncate an `f32` to bfloat16 bits (round-to-nearest-even on bit 16).
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040; // keep NaN quiet
    }
    let round_bit = 0x8000u32;
    let rest = bits & 0xffff;
    let hi = (bits >> 16) as u16;
    if rest > round_bit || (rest == round_bit && (hi & 1) == 1) {
        hi.wrapping_add(1)
    } else {
        hi
    }
}

/// Expand bfloat16 bits back to `f32`.
pub fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits(u32::from(h) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_exact_values() {
        for &(x, bits) in &[
            (0.0f32, 0x0000u16),
            (-0.0, 0x8000),
            (1.0, 0x3c00),
            (-2.0, 0xc000),
            (0.5, 0x3800),
            (65504.0, 0x7bff), // max finite half
        ] {
            assert_eq!(f32_to_f16_bits(x), bits, "encoding {x}");
            assert_eq!(f16_bits_to_f32(bits), x, "decoding {bits:#x}");
        }
    }

    #[test]
    fn f16_overflow_to_inf() {
        assert_eq!(f32_to_f16_bits(1e6), 0x7c00);
        assert_eq!(f32_to_f16_bits(-1e6), 0xfc00);
        assert!(f16_bits_to_f32(0x7c00).is_infinite());
    }

    #[test]
    fn f16_subnormals() {
        let tiny = 2f32.powi(-24); // smallest positive subnormal half
        let h = f32_to_f16_bits(tiny);
        assert_eq!(h, 0x0001);
        assert_eq!(f16_bits_to_f32(h), tiny);
        // Below half the smallest subnormal -> zero.
        assert_eq!(f32_to_f16_bits(2f32.powi(-26)), 0x0000);
    }

    #[test]
    fn f16_roundtrip_error_bounded() {
        // Relative error for normal-range values is at most 2^-11.
        for i in 0..2000 {
            let x = (i as f32 - 1000.0) * 0.013 + 0.0007;
            let y = f16_bits_to_f32(f32_to_f16_bits(x));
            if x.abs() > 1e-4 {
                assert!(((x - y) / x).abs() <= 2f32.powi(-11) + 1e-7, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn f16_roundtrip_all_bit_patterns() {
        // Every finite half value must survive f16 -> f32 -> f16.
        for h in 0..=0xffffu16 {
            let exp = (h >> 10) & 0x1f;
            if exp == 0x1f {
                continue; // inf/nan handled separately
            }
            let x = f16_bits_to_f32(h);
            assert_eq!(f32_to_f16_bits(x), h, "pattern {h:#x} (value {x})");
        }
    }

    #[test]
    fn bf16_truncation() {
        assert_eq!(bf16_bits_to_f32(f32_to_bf16_bits(1.0)), 1.0);
        assert_eq!(bf16_bits_to_f32(f32_to_bf16_bits(-3.5)), -3.5);
        let x = 1.2345678f32;
        let y = bf16_bits_to_f32(f32_to_bf16_bits(x));
        assert!(((x - y) / x).abs() < 2f32.powi(-8));
    }

    #[test]
    fn bf16_nan_stays_nan() {
        assert!(bf16_bits_to_f32(f32_to_bf16_bits(f32::NAN)).is_nan());
    }
}
