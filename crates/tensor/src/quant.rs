//! k-bit quantization (k <= 8) with an explicit coding table, as offered by
//! PAS for snapshots whose weights are primarily reused for fine-tuning.
//!
//! Two codebook constructions from the paper: *uniform* (equal-width bins
//! over the value range) and *random* (codebook sampled from the empirical
//! distribution).

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A quantization codebook: `codes[i]` is the reconstruction value of code
/// `i`. Codes are assigned by nearest value.
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    /// Sorted reconstruction values, at most 256 entries.
    pub codes: Vec<f32>,
    /// Bits per stored code.
    pub bits: u8,
}

impl Codebook {
    /// Equal-width bins over `[min, max]`; reconstruction value is the bin
    /// center.
    pub fn uniform(m: &Matrix, bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "quantization supports 1..=8 bits");
        let n = 1usize << bits;
        let (lo, hi) = (m.min(), m.max());
        let (lo, hi) = if lo.is_finite() && hi.is_finite() && lo < hi {
            (lo, hi)
        } else {
            // Degenerate (constant or empty) matrix: center a unit-wide
            // range on the constant so the reconstruction stays close.
            let v = if lo.is_finite() { lo } else { 0.0 };
            (v - 0.5, v + 0.5)
        };
        let width = (hi - lo) / n as f32;
        let codes = (0..n).map(|i| lo + (i as f32 + 0.5) * width).collect();
        Self { codes, bits }
    }

    /// Codebook sampled from the matrix's own values (deterministic for a
    /// given seed), then sorted and deduplicated.
    pub fn random(m: &Matrix, bits: u8, seed: u64) -> Self {
        assert!((1..=8).contains(&bits), "quantization supports 1..=8 bits");
        let n = 1usize << bits;
        let vals = m.as_slice();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut codes: Vec<f32> = if vals.is_empty() {
            vec![0.0]
        } else {
            (0..n).map(|_| vals[rng.gen_range(0..vals.len())]).collect()
        };
        codes.sort_by(f32::total_cmp);
        codes.dedup();
        Self { codes, bits }
    }

    /// Nearest code index for a value (binary search over sorted codes).
    pub fn encode_value(&self, x: f32) -> u8 {
        let codes = &self.codes;
        match codes.binary_search_by(|c| c.total_cmp(&x)) {
            Ok(i) => i as u8,
            Err(i) => {
                if i == 0 {
                    0
                } else if i >= codes.len() {
                    (codes.len() - 1) as u8
                } else {
                    // Pick the closer neighbour.
                    if (x - codes[i - 1]).abs() <= (codes[i] - x).abs() {
                        (i - 1) as u8
                    } else {
                        i as u8
                    }
                }
            }
        }
    }

    pub fn decode_value(&self, code: u8) -> f32 {
        self.codes[usize::from(code).min(self.codes.len() - 1)]
    }

    /// Quantize a whole matrix into bit-packed codes.
    pub fn encode(&self, m: &Matrix) -> Vec<u8> {
        pack_bits(
            m.as_slice().iter().map(|&x| self.encode_value(x)),
            self.bits,
            m.len(),
        )
    }

    /// Reconstruct a matrix from bit-packed codes.
    pub fn decode(&self, rows: usize, cols: usize, packed: &[u8]) -> Matrix {
        let codes = unpack_bits(packed, self.bits, rows * cols);
        Matrix::from_vec(
            rows,
            cols,
            codes.into_iter().map(|c| self.decode_value(c)).collect(),
        )
    }

    /// Serialize: `[bits, n_codes(le u16), codes...]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + self.codes.len() * 4);
        out.push(self.bits);
        out.extend_from_slice(&(self.codes.len() as u16).to_le_bytes());
        for &c in &self.codes {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    pub fn from_bytes(data: &[u8]) -> Option<(Self, usize)> {
        if data.len() < 3 {
            return None;
        }
        let bits = data[0];
        let n = u16::from_le_bytes([data[1], data[2]]) as usize;
        let need = 3 + n * 4;
        if data.len() < need || !(1..=8).contains(&bits) || n == 0 {
            return None;
        }
        let codes = data[3..need]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("fixed-size chunk")))
            .collect();
        Some((Self { codes, bits }, need))
    }
}

/// Pack `n` k-bit codes LSB-first into bytes.
pub fn pack_bits(codes: impl Iterator<Item = u8>, bits: u8, n: usize) -> Vec<u8> {
    let bits = u32::from(bits);
    let mut out = Vec::with_capacity((n * bits as usize).div_ceil(8));
    let mut acc = 0u32;
    let mut nbits = 0u32;
    for c in codes {
        acc |= u32::from(c) << nbits;
        nbits += bits;
        while nbits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xff) as u8);
    }
    out
}

/// Unpack `n` k-bit codes from bytes.
pub fn unpack_bits(data: &[u8], bits: u8, n: usize) -> Vec<u8> {
    let bits = u32::from(bits);
    let mask = if bits >= 8 { 0xff } else { (1u32 << bits) - 1 };
    let mut out = Vec::with_capacity(n);
    let mut acc = 0u32;
    let mut nbits = 0u32;
    let mut pos = 0usize;
    for _ in 0..n {
        while nbits < bits && pos < data.len() {
            acc |= u32::from(data[pos]) << nbits;
            pos += 1;
            nbits += 8;
        }
        out.push((acc & mask) as u8);
        acc >>= bits;
        nbits = nbits.saturating_sub(bits);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_fn(16, 16, |r, c| ((r * 16 + c) as f32 / 128.0 - 1.0) * 0.3)
    }

    #[test]
    fn pack_unpack_all_widths() {
        for bits in 1..=8u8 {
            let n = 100;
            let codes: Vec<u8> = (0..n).map(|i| (i % (1 << bits)) as u8).collect();
            let packed = pack_bits(codes.iter().copied(), bits, n);
            assert_eq!(unpack_bits(&packed, bits, n), codes);
            assert_eq!(packed.len(), (n * bits as usize).div_ceil(8));
        }
    }

    #[test]
    fn uniform_quantization_error_bounded() {
        let m = sample_matrix();
        for bits in [2u8, 4, 8] {
            let cb = Codebook::uniform(&m, bits);
            let packed = cb.encode(&m);
            let back = cb.decode(m.rows(), m.cols(), &packed);
            let range = m.max() - m.min();
            let max_err = range / (1 << bits) as f32; // half-bin width * 2 slack
            for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
                assert!(
                    (a - b).abs() <= max_err,
                    "bits={bits} a={a} b={b} err bound {max_err}"
                );
            }
        }
    }

    #[test]
    fn random_quantization_deterministic_and_lossy_bounded() {
        let m = sample_matrix();
        let cb1 = Codebook::random(&m, 4, 42);
        let cb2 = Codebook::random(&m, 4, 42);
        assert_eq!(cb1, cb2);
        let packed = cb1.encode(&m);
        let back = cb1.decode(m.rows(), m.cols(), &packed);
        // Every reconstructed value is an actual matrix value.
        for v in back.as_slice() {
            assert!(cb1.codes.contains(v));
        }
    }

    #[test]
    fn codebook_serialization_roundtrip() {
        let m = sample_matrix();
        let cb = Codebook::uniform(&m, 5);
        let bytes = cb.to_bytes();
        let (back, used) = Codebook::from_bytes(&bytes).unwrap();
        assert_eq!(back, cb);
        assert_eq!(used, bytes.len());
        assert!(Codebook::from_bytes(&bytes[..2]).is_none());
    }

    #[test]
    fn constant_matrix_quantizes() {
        let m = Matrix::filled(4, 4, 0.25);
        let cb = Codebook::uniform(&m, 3);
        let back = cb.decode(4, 4, &cb.encode(&m));
        for v in back.as_slice() {
            assert!((v - 0.25).abs() < 0.2);
        }
    }

    #[test]
    fn encode_value_picks_nearest() {
        let cb = Codebook {
            codes: vec![-1.0, 0.0, 2.0],
            bits: 2,
        };
        assert_eq!(cb.encode_value(-5.0), 0);
        assert_eq!(cb.encode_value(-0.4), 1);
        assert_eq!(cb.encode_value(0.9), 1);
        assert_eq!(cb.encode_value(1.1), 2);
        assert_eq!(cb.encode_value(100.0), 2);
    }
}
