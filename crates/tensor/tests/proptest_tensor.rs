//! Property-based tests on tensor invariants: segmentation bounds always
//! contain the true value, lossy schemes respect their error envelopes, and
//! plane splitting is a bijection.

use mh_tensor::{
    decode, encode, half, join_byte_planes, split_byte_planes, Matrix, Scheme, SegmentedMatrix,
};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Weight-like magnitudes: the range learned parameters actually occupy.
    prop_oneof![
        -10.0f32..10.0,
        -1e-3f32..1e-3,
        Just(0.0f32),
        Just(-0.0f32),
        -1e4f32..1e4,
    ]
}

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(finite_f32(), r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn segmentation_roundtrip_exact(m in small_matrix()) {
        let seg = SegmentedMatrix::from_matrix(&m);
        prop_assert_eq!(seg.to_matrix(), m);
    }

    #[test]
    fn bounds_always_contain_value(m in small_matrix(), k in 1usize..=4) {
        let seg = SegmentedMatrix::from_matrix(&m);
        let (lo, hi) = seg.bounds(k);
        for i in 0..m.len() {
            let x = m.as_slice()[i];
            prop_assert!(lo.as_slice()[i] <= x, "lo {} > x {}", lo.as_slice()[i], x);
            prop_assert!(hi.as_slice()[i] >= x, "hi {} < x {}", hi.as_slice()[i], x);
        }
    }

    #[test]
    fn truncated_value_within_bounds(m in small_matrix(), k in 1usize..=4) {
        let seg = SegmentedMatrix::from_matrix(&m);
        let (lo, hi) = seg.bounds(k);
        let t = seg.truncated(k);
        for i in 0..m.len() {
            prop_assert!(lo.as_slice()[i] <= t.as_slice()[i]);
            prop_assert!(t.as_slice()[i] <= hi.as_slice()[i]);
        }
    }

    #[test]
    fn f16_roundtrip_within_half_ulp(x in -60000.0f32..60000.0) {
        let y = half::f16_bits_to_f32(half::f32_to_f16_bits(x));
        // Relative error bounded by 2^-11 in the normal range.
        if x.abs() > 1e-3 {
            prop_assert!(((x - y) / x).abs() <= 2f32.powi(-11) + 1e-7);
        }
    }

    #[test]
    fn bf16_roundtrip_within_2pow8(x in -1e30f32..1e30) {
        let y = half::bf16_bits_to_f32(half::f32_to_bf16_bits(x));
        if x != 0.0 {
            prop_assert!(((x - y) / x).abs() <= 2f32.powi(-8) + 1e-7);
        }
    }

    #[test]
    fn fixed_point_error_bounded(m in small_matrix(), bits in 4u8..=32) {
        let e = encode(&m, Scheme::Fixed { bits }, false);
        let back = decode(&e);
        // Quantization step plus f32 representation error (the latter
        // dominates once the step drops below ~2^-23 relative).
        let tol = (m.max_abs() / ((1u64 << (bits - 1)) - 1) as f32)
            .max(m.max_abs() * 4.0 * f32::EPSILON);
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= tol * 1.01 + 1e-9, "{} vs {} (bits {})", a, b, bits);
        }
    }

    #[test]
    fn quant_decode_within_value_range(m in small_matrix(), bits in 1u8..=8) {
        let e = encode(&m, Scheme::QuantUniform { bits }, false);
        let back = decode(&e);
        let (lo, hi) = (m.min(), m.max());
        let slack = (hi - lo).max(1.0) * 0.51;
        for v in back.as_slice() {
            prop_assert!(*v >= lo - slack && *v <= hi + slack);
        }
    }

    #[test]
    fn plane_split_join_identity(words in proptest::collection::vec(any::<u8>(), 0..256), width in 1usize..=4) {
        let len = words.len() - words.len() % width;
        let words = &words[..len];
        let planes = split_byte_planes(words, width);
        prop_assert_eq!(join_byte_planes(&planes).unwrap(), words.to_vec());
    }

    #[test]
    fn normalization_reconstruction_close(m in small_matrix()) {
        let e = encode(&m, Scheme::F32, true);
        let back = decode(&e);
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            // Catastrophic cancellation bounded by offset * eps.
            prop_assert!((a - b).abs() <= e.offset * 1e-6 + 1e-9);
        }
    }
}
