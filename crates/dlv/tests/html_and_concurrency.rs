//! Tests for the HTML front end and concurrent catalog access.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use mh_dlv::{CommitRequest, Repository};
use mh_dnn::{zoo, Weights};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-dlv-hc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn quick_commit(repo: &Repository, name: &str) {
    let net = zoo::lenet_s(3);
    let mut req = CommitRequest::new(name, net);
    req.snapshots = vec![(0, Weights::init(&req.network, 7).unwrap())];
    req.hyperparams.insert("base_lr".into(), "0.05".into());
    req.log = vec![
        mh_dnn::LogEntry {
            iteration: 1,
            loss: 2.0,
            accuracy: None,
            lr: 0.05,
        },
        mh_dnn::LogEntry {
            iteration: 2,
            loss: 1.5,
            accuracy: Some(0.4),
            lr: 0.05,
        },
    ];
    req.files
        .push(("notes <&> weird.txt".into(), b"hello".to_vec()));
    repo.commit(&req).unwrap();
}

#[test]
fn html_rendering_escapes_and_includes_everything() {
    let dir = temp_dir("html");
    let repo = Repository::init(&dir).unwrap();
    quick_commit(&repo, "html-model");
    let html = repo.desc("html-model").unwrap().render_html();
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("<h1>Model html-model:1</h1>"));
    // Layer table, hyperparameters, snapshot rows, loss sparkline, files.
    assert!(html.contains("conv1"));
    assert!(html.contains("base_lr"));
    assert!(html.contains("staged:"));
    assert!(html.contains("<svg"));
    // HTML-special characters in file names are escaped.
    assert!(html.contains("notes &lt;&amp;&gt; weird.txt"));
    assert!(!html.contains("notes <&> weird.txt"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_readers_and_writers() {
    let dir = temp_dir("conc");
    let repo = Arc::new(Repository::init(&dir).unwrap());
    quick_commit(&repo, "seed");

    // 4 reader threads hammer list/desc/weights while 2 writers commit.
    let mut handles = Vec::new();
    for t in 0..4 {
        let r = Arc::clone(&repo);
        handles.push(mh_par::sync::thread::spawn(move || {
            for _ in 0..20 {
                let list = r.list();
                assert!(!list.is_empty());
                let spec = list[0].key.to_string();
                let _ = r.desc(&spec);
                let _ = r.get_weights(&spec, None);
                let _ = t;
            }
        }));
    }
    for t in 0..2 {
        let r = Arc::clone(&repo);
        handles.push(mh_par::sync::thread::spawn(move || {
            for i in 0..5 {
                quick_commit(&r, &format!("writer{t}-{i}"));
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panics");
    }
    assert_eq!(repo.list().len(), 1 + 2 * 5);
    assert!(repo.fsck().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
