//! Hub hardening tests: atomic publish, path-traversal rejection,
//! transient/symlink exclusion, concurrent publishers, nested
//! namespaces, and pulls into existing destinations.

#![allow(clippy::unwrap_used)] // test code: panics are failures
use mh_dlv::{
    committed_manifest, replace_published, validate_rel_path, validate_repo_name, DlvError, Hub,
    HubBackend, Repository,
};
use mh_dnn::{synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-hubedge-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small committed repository to publish.
fn sample_repo(dir: &std::path::Path, name: &str, seed: u64) -> Repository {
    let repo = Repository::init(dir).unwrap();
    let net = zoo::lenet_s(3);
    let data = synth_dataset(&SynthConfig {
        num_classes: 3,
        train_per_class: 6,
        test_per_class: 3,
        noise: 0.05,
        seed: 11,
        height: 16,
        width: 16,
    });
    let trainer = Trainer {
        hp: Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        },
        snapshot_every: 3,
    };
    let init = Weights::init(&net, seed).unwrap();
    let result = trainer.train(&net, init, &data, 6).unwrap();
    let mut req = mh_dlv::CommitRequest::new(name, net);
    req.snapshots = result.snapshots.clone();
    req.log = result.log.clone();
    req.accuracy = Some(result.final_accuracy);
    req.files.push(("notes.txt".into(), b"hello".to_vec()));
    req.comment = format!("edge-case model {name}");
    repo.commit(&req).unwrap();
    repo
}

#[test]
fn traversal_names_are_rejected() {
    for bad in [
        "../escape",
        "a/../b",
        "/absolute",
        "a//b",
        "",
        ".hidden",
        "a/.hidden",
        "nul\0byte",
        "sp ace",
    ] {
        assert!(validate_repo_name(bad).is_err(), "accepted '{bad}'");
    }
    for good in ["lenet", "team/vision", "a-b_c.d/e9"] {
        assert!(validate_repo_name(good).is_ok(), "rejected '{good}'");
    }
    assert!(validate_rel_path("weights/../../x").is_err());
    assert!(validate_rel_path("weights/m_1_s0.mhw").is_ok());

    let dir = temp_dir("trav-repo");
    let hub_dir = temp_dir("trav-hub");
    let repo = sample_repo(&dir, "m", 1);
    let hub = Hub::open(&hub_dir).unwrap();
    for bad in ["../escape", "/absolute", "a/../b"] {
        assert!(
            matches!(hub.publish(&repo, bad), Err(DlvError::InvalidName(_))),
            "publish accepted '{bad}'"
        );
        assert!(
            matches!(
                hub.pull(bad, &temp_dir("trav-pull").join("d")),
                Err(DlvError::InvalidName(_))
            ),
            "pull accepted '{bad}'"
        );
    }
    // Nothing escaped the hub root.
    assert!(!hub_dir.parent().unwrap().join("escape").exists());
    assert!(!PathBuf::from("/absolute").exists());
}

#[test]
fn publish_excludes_transients_and_symlinks() {
    let dir = temp_dir("excl-repo");
    let hub_dir = temp_dir("excl-hub");
    let repo = sample_repo(&dir, "m", 2);

    // Litter the working repo with state that must not be published.
    std::fs::write(dir.join("catalog.mhs.tmp"), b"partial").unwrap();
    std::fs::write(dir.join("weights").join("w.lock"), b"").unwrap();
    std::fs::write(dir.join("weights").join("x.part"), b"").unwrap();
    std::fs::write(dir.join("orphan.bin"), b"not committed").unwrap();
    std::fs::create_dir_all(dir.join(".cache")).unwrap();
    std::fs::write(dir.join(".cache").join("junk"), b"junk").unwrap();
    #[cfg(unix)]
    std::os::unix::fs::symlink("/etc/hostname", dir.join("weights").join("link")).unwrap();

    let hub = Hub::open(&hub_dir).unwrap();
    hub.publish(&repo, "clean").unwrap();
    let pub_dir = hub_dir.join("clean");
    assert!(pub_dir.join("catalog.mhs").exists());
    for absent in [
        "catalog.mhs.tmp",
        "orphan.bin",
        ".cache",
        "weights/w.lock",
        "weights/x.part",
        "weights/link",
    ] {
        assert!(!pub_dir.join(absent).exists(), "published {absent}");
    }

    // The published copy is exactly the committed content.
    let src_manifest = committed_manifest(&repo).unwrap();
    let pub_manifest = committed_manifest(&Repository::open(&pub_dir).unwrap()).unwrap();
    assert_eq!(src_manifest, pub_manifest);

    // A pull of it skips transients dropped into the hub copy too.
    std::fs::write(pub_dir.join("stray.lock"), b"").unwrap();
    let dest = temp_dir("excl-pull").join("clone");
    let pulled = hub.pull("clean", &dest).unwrap();
    assert!(!dest.join("stray.lock").exists());
    assert_eq!(committed_manifest(&pulled).unwrap(), src_manifest);
}

#[test]
fn failed_publish_leaves_previous_publication_intact() {
    let dir = temp_dir("atomic-repo");
    let hub_dir = temp_dir("atomic-hub");
    let repo = sample_repo(&dir, "m", 3);
    let hub = Hub::open(&hub_dir).unwrap();
    hub.publish(&repo, "stable").unwrap();
    let before = committed_manifest(&Repository::open(&hub_dir.join("stable")).unwrap()).unwrap();

    // A publish whose build fails halfway must not disturb the previous
    // publication and must clean up its staging directory.
    let err = replace_published(&hub_dir, "stable", |stage| {
        std::fs::write(stage.join("catalog.mhs"), b"half-written garbage").unwrap();
        Err(DlvError::Hub("simulated mid-publish crash".into()))
    })
    .unwrap_err();
    assert!(matches!(err, DlvError::Hub(_)));

    let after = committed_manifest(&Repository::open(&hub_dir.join("stable")).unwrap()).unwrap();
    assert_eq!(before, after, "previous publication was disturbed");
    let leftovers: Vec<String> = std::fs::read_dir(&hub_dir)
        .unwrap()
        .filter_map(|e| {
            let n = e.unwrap().file_name().to_string_lossy().to_string();
            n.starts_with('.').then_some(n)
        })
        .collect();
    assert!(leftovers.is_empty(), "staging leftovers: {leftovers:?}");

    // And the pull of the intact publication still verifies.
    hub.pull("stable", &temp_dir("atomic-pull").join("c"))
        .unwrap();
}

#[test]
fn concurrent_publish_same_name_is_safe() {
    let dir_a = temp_dir("conc-a");
    let dir_b = temp_dir("conc-b");
    let hub_dir = temp_dir("conc-hub");
    let repo_a = Arc::new(sample_repo(&dir_a, "ma", 4));
    let repo_b = Arc::new(sample_repo(&dir_b, "mb", 5));
    let hub_dir = Arc::new(hub_dir);

    let mut handles = Vec::new();
    for repo in [Arc::clone(&repo_a), Arc::clone(&repo_b)] {
        let hub_dir = Arc::clone(&hub_dir);
        handles.push(mh_par::sync::thread::spawn(move || {
            let hub = Hub::open(&hub_dir).unwrap();
            for _ in 0..4 {
                hub.publish(&repo, "contested").unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Whoever won, the published state is one complete, verifiable repo.
    let hub = Hub::open(&hub_dir).unwrap();
    assert_eq!(hub.repositories().unwrap(), vec!["contested"]);
    let pulled = hub
        .pull("contested", &temp_dir("conc-pull").join("c"))
        .unwrap();
    let got = committed_manifest(&pulled).unwrap();
    let a = committed_manifest(&repo_a).unwrap();
    let b = committed_manifest(&repo_b).unwrap();
    assert!(got == a || got == b, "published state is neither input");
    // No hidden staging/old dirs left behind.
    for e in std::fs::read_dir(hub_dir.as_path()).unwrap() {
        let n = e.unwrap().file_name().to_string_lossy().to_string();
        assert!(!n.starts_with('.'), "leftover hidden entry {n}");
    }
}

#[test]
fn pull_into_existing_destination_fails_cleanly() {
    let dir = temp_dir("dest-repo");
    let hub_dir = temp_dir("dest-hub");
    let repo = sample_repo(&dir, "m", 6);
    let hub = Hub::open(&hub_dir).unwrap();
    hub.publish(&repo, "m").unwrap();

    let dest_parent = temp_dir("dest-pull");
    let dest = dest_parent.join("clone");
    hub.pull("m", &dest).unwrap();
    // Second pull into the same destination: typed error, dest untouched.
    let before = committed_manifest(&Repository::open(&dest).unwrap()).unwrap();
    assert!(matches!(
        hub.pull("m", &dest),
        Err(DlvError::AlreadyExists(_))
    ));
    let after = committed_manifest(&Repository::open(&dest).unwrap()).unwrap();
    assert_eq!(before, after);
    // A plain existing file is refused the same way.
    let file_dest = dest_parent.join("a-file");
    std::fs::write(&file_dest, b"x").unwrap();
    assert!(matches!(
        hub.pull("m", &file_dest),
        Err(DlvError::AlreadyExists(_))
    ));
    // No staging leftovers next to dest.
    for e in std::fs::read_dir(&dest_parent).unwrap() {
        let n = e.unwrap().file_name().to_string_lossy().to_string();
        assert!(!n.starts_with(".pull-"), "leftover staging {n}");
    }
}

#[test]
fn nested_namespaces_publish_search_pull() {
    let dir_a = temp_dir("ns-a");
    let dir_b = temp_dir("ns-b");
    let hub_dir = temp_dir("ns-hub");
    let repo_a = sample_repo(&dir_a, "resnet-mini", 7);
    let repo_b = sample_repo(&dir_b, "lstm-mini", 8);
    let hub = Hub::open(&hub_dir).unwrap();
    hub.publish(&repo_a, "team/vision/resnet").unwrap();
    hub.publish(&repo_b, "team/nlp/lstm").unwrap();

    assert_eq!(
        hub.repositories().unwrap(),
        vec!["team/nlp/lstm", "team/vision/resnet"]
    );
    let hits = hub.search("%vision%").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].repo, "team/vision/resnet");
    let hits = hub.search("%mini%").unwrap();
    assert_eq!(hits.len(), 2);

    // Publishing inside an existing publication is refused.
    assert!(matches!(
        hub.publish(&repo_b, "team/vision/resnet/sub"),
        Err(DlvError::Hub(_))
    ));

    let pulled = hub
        .pull("team/vision/resnet", &temp_dir("ns-pull").join("c"))
        .unwrap();
    assert_eq!(
        committed_manifest(&pulled).unwrap(),
        committed_manifest(&repo_a).unwrap()
    );
}

#[test]
fn hub_backend_trait_object_works_for_local_hub() {
    let dir = temp_dir("dyn-repo");
    let hub_dir = temp_dir("dyn-hub");
    let repo = sample_repo(&dir, "m", 9);
    let backend: Box<dyn HubBackend> = Box::new(Hub::open(&hub_dir).unwrap());
    backend.publish(&repo, "via-trait").unwrap();
    assert_eq!(backend.repositories().unwrap(), vec!["via-trait"]);
    assert_eq!(backend.search("%via%").unwrap().len(), 1);
    let pulled = backend
        .pull("via-trait", &temp_dir("dyn-pull").join("c"))
        .unwrap();
    assert_eq!(pulled.list().len(), 1);
}
