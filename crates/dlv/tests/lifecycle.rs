//! End-to-end DLV lifecycle tests: init → commit (with training artifacts)
//! → list/desc/diff/eval → archive → retrieve from PAS → publish/pull.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use mh_dlv::{diff, ArchiveConfig, CommitRequest, Hub, Repository, VersionKey};
use mh_dnn::{fine_tune_setup, synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-dlv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn small_data() -> mh_dnn::Dataset {
    synth_dataset(&SynthConfig {
        num_classes: 3,
        train_per_class: 8,
        test_per_class: 4,
        noise: 0.05,
        seed: 11,
        height: 16,
        width: 16,
    })
}

/// Train a small model and build its commit request.
fn trained_commit(name: &str, seed: u64, iters: usize) -> (CommitRequest, f32) {
    let net = zoo::lenet_s(3);
    let data = small_data();
    let trainer = Trainer {
        hp: Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        },
        snapshot_every: iters / 3,
    };
    let init = Weights::init(&net, seed).unwrap();
    let result = trainer.train(&net, init, &data, iters).unwrap();
    let mut req = CommitRequest::new(name, net);
    req.snapshots = result
        .snapshots
        .iter()
        .map(|(i, w)| (*i, w.clone()))
        .collect();
    req.log = result.log.clone();
    req.accuracy = Some(result.final_accuracy);
    req.hyperparams.insert("base_lr".into(), "0.08".into());
    req.hyperparams.insert("momentum".into(), "0.9".into());
    req.files
        .push(("train.cfg".into(), b"base_lr=0.08\nmomentum=0.9\n".to_vec()));
    req.comment = format!("trained {name} for {iters} iters");
    (req, result.final_accuracy)
}

#[test]
fn init_commit_list_desc() {
    let dir = temp_dir("basic");
    let repo = Repository::init(&dir).unwrap();
    assert!(Repository::init(&dir).is_err(), "double init must fail");

    let (req, acc) = trained_commit("lenet", 1, 9);
    let key = repo.commit(&req).unwrap();
    assert_eq!(key.to_string(), "lenet:1");

    let list = repo.list();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].key, key);
    assert_eq!(list[0].num_snapshots, 3);
    assert!(!list[0].archived);
    assert!((list[0].accuracy.unwrap() - f64::from(acc)).abs() < 1e-6);

    let desc = repo.desc("lenet").unwrap();
    assert_eq!(desc.hyperparams["base_lr"], "0.08");
    assert!(!desc.loss_curve.is_empty());
    assert_eq!(desc.files.len(), 1);
    assert!(desc.layers.iter().any(|(n, _)| n == "conv1"));

    // Reopen and verify persistence.
    drop(repo);
    let repo = Repository::open(&dir).unwrap();
    assert_eq!(repo.list().len(), 1);
    let file = repo.read_file("lenet", "train.cfg").unwrap();
    assert!(file.starts_with(b"base_lr"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn versions_under_same_name_get_increasing_ids() {
    let dir = temp_dir("vids");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("m", 1, 3);
    assert_eq!(repo.commit(&req).unwrap().id, 1);
    assert_eq!(repo.commit(&req).unwrap().id, 2);
    // name:id addressing picks the exact one; bare name picks the newest.
    assert_eq!(repo.desc("m:1").unwrap().summary.key.id, 1);
    assert_eq!(repo.desc("m").unwrap().summary.key.id, 2);
    assert!(repo.desc("m:9").is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn network_and_weights_roundtrip() {
    let dir = temp_dir("roundtrip");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("m", 2, 6);
    repo.commit(&req).unwrap();

    let net = repo.get_network("m").unwrap();
    assert_eq!(net.num_nodes(), req.network.num_nodes());
    assert_eq!(
        net.param_count().unwrap(),
        req.network.param_count().unwrap()
    );

    let latest = repo.get_weights("m", None).unwrap();
    assert_eq!(&latest, &req.snapshots.last().unwrap().1);
    let first = repo.get_weights("m", Some(0)).unwrap();
    assert_eq!(&first, &req.snapshots[0].1);
    assert!(repo.get_weights("m", Some(99)).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_matches_recorded_accuracy() {
    let dir = temp_dir("eval");
    let repo = Repository::init(&dir).unwrap();
    let (req, acc) = trained_commit("m", 3, 9);
    repo.commit(&req).unwrap();
    let data = small_data();
    let measured = repo.eval("m", &data.test).unwrap();
    assert!((measured - acc).abs() < 1e-6);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lineage_and_diff_for_finetuned_model() {
    let dir = temp_dir("lineage");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("base", 4, 9);
    let base_key = repo.commit(&req).unwrap();

    // Fine-tune onto 5 classes.
    let base_w = repo.get_weights("base", None).unwrap();
    let base_net = repo.get_network("base").unwrap();
    let (ft_net, ft_w) = fine_tune_setup(&base_net, &base_w, 5, 99).unwrap();
    let mut ft_req = CommitRequest::new("base-ft5", ft_net);
    ft_req.snapshots = vec![(0, ft_w)];
    ft_req.parent = Some(base_key.to_string());
    ft_req.hyperparams.insert("base_lr".into(), "0.01".into());
    ft_req.comment = "fine-tuned to 5 classes".into();
    let ft_key = repo.commit(&ft_req).unwrap();

    let lineage = repo.lineage();
    assert_eq!(lineage, vec![("base:1".to_string(), ft_key.to_string())]);

    let report = diff(&repo, "base", "base-ft5").unwrap();
    assert!(!report.is_architecture_identical());
    // The fc head was replaced: fc (old name) only-left, fc_ft only-right.
    assert!(report.only_left.iter().any(|(n, _)| n == "ip2"));
    assert!(report.only_right.iter().any(|(n, _)| n == "ip2_ft"));
    assert!(report.hyper_diff.iter().any(|(k, _, _)| k == "base_lr"));
    assert!(report.render().contains("diff base:1 .. base-ft5:1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn copy_scaffolds_with_lineage() {
    let dir = temp_dir("copy");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("orig", 5, 6);
    repo.commit(&req).unwrap();
    let key = repo.copy("orig", "derived", "forked for tuning").unwrap();
    assert_eq!(key.name, "derived");
    assert_eq!(repo.lineage(), vec![("orig:1".into(), "derived:1".into())]);
    // Copied version carries the source's latest weights as snapshot 0.
    let w = repo.get_weights("derived", Some(0)).unwrap();
    assert_eq!(w, repo.get_weights("orig", None).unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn archive_and_retrieve_from_pas() {
    let dir = temp_dir("archive");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("m", 6, 9);
    repo.commit(&req).unwrap();

    // Remember staged weights to verify exact recreation.
    let before: Vec<Weights> = (0..3)
        .map(|i| repo.get_weights("m", Some(i)).unwrap())
        .collect();

    let report = repo.archive(&ArchiveConfig::default()).unwrap();
    assert!(report.satisfied);
    assert_eq!(report.num_snapshots, 3);
    assert!(report.bytes_on_disk > 0);

    // Staged blobs are gone; list shows archived.
    assert!(repo.list()[0].archived);
    // Second archive call has nothing to do.
    assert!(repo.archive(&ArchiveConfig::default()).is_err());

    // Retrieval is transparent and bit-exact.
    for (i, w) in before.iter().enumerate() {
        let back = repo.get_weights("m", Some(i)).unwrap();
        assert_eq!(&back, w, "snapshot {i} must recreate exactly");
    }
    // Eval still works against the archived model.
    let data = small_data();
    let acc = repo.eval("m", &data.test).unwrap();
    assert!((0.0..=1.0).contains(&acc));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn archive_exploits_deltas_across_checkpoints() {
    let dir = temp_dir("delta-gain");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("m", 7, 9);
    repo.commit(&req).unwrap();
    let report = repo
        .archive(&ArchiveConfig {
            alpha: 100.0,
            ..Default::default()
        })
        .unwrap();

    // Compare against the naive footprint: every snapshot stored
    // independently (compressed planes of each matrix).
    let naive: f64 = {
        // Re-init a fresh repo to access staged sizes easily: sum of each
        // matrix's compressed planes = sum of materialize edge costs.
        report.storage_cost // storage cost of the chosen plan
    };
    // The plan's storage cost should be noticeably below 3x a single
    // snapshot (i.e. the chain shares structure instead of materializing
    // all three).
    assert!(naive > 0.0);
    assert!(report.num_matrices == 3 * req.snapshots[0].1.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hub_publish_search_pull() {
    let dir = temp_dir("hub-repo");
    let hub_dir = temp_dir("hub-root");
    let pull_dir = temp_dir("hub-pull").join("clone");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("lenet-pub", 8, 6);
    repo.commit(&req).unwrap();

    let hub = Hub::open(&hub_dir).unwrap();
    hub.publish(&repo, "vision-models").unwrap();
    assert_eq!(hub.repositories().unwrap(), vec!["vision-models"]);

    let hits = hub.search("%lenet%").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].repo, "vision-models");
    assert!(hub.search("%nonexistent-model-name%").unwrap().is_empty());

    let cloned = hub.pull("vision-models", &pull_dir).unwrap();
    assert_eq!(cloned.list().len(), 1);
    let w1 = repo.get_weights("lenet-pub", None).unwrap();
    let w2 = cloned.get_weights("lenet-pub", None).unwrap();
    assert_eq!(w1, w2);
    assert!(hub.pull("missing", &temp_dir("x").join("y")).is_err());
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&hub_dir).ok();
    std::fs::remove_dir_all(pull_dir.parent().unwrap()).ok();
}

#[test]
fn version_key_parsing() {
    assert_eq!(VersionKey::parse("model"), ("model".into(), None));
    assert_eq!(VersionKey::parse("model:3"), ("model".into(), Some(3)));
    assert_eq!(VersionKey::parse("a:b:2"), ("a:b".into(), Some(2)));
    assert_eq!(VersionKey::parse("weird:x"), ("weird:x".into(), None));
}

#[test]
fn commit_validation() {
    let dir = temp_dir("validate");
    let repo = Repository::init(&dir).unwrap();
    let net = zoo::lenet_s(3);
    // No snapshots.
    let req = CommitRequest::new("m", net.clone());
    assert!(matches!(
        repo.commit(&req),
        Err(mh_dlv::DlvError::EmptyCommit)
    ));
    // Wrong-shape weights.
    let mut req = CommitRequest::new("m", net);
    let other = zoo::alexnet_s(3);
    req.snapshots = vec![(0, Weights::init(&other, 1).unwrap())];
    assert!(repo.commit(&req).is_err());
    // Unknown parent.
    let net = zoo::lenet_s(3);
    let mut req = CommitRequest::new("m", net.clone());
    req.snapshots = vec![(0, Weights::init(&net, 1).unwrap())];
    req.parent = Some("ghost".into());
    assert!(repo.commit(&req).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delete_version_rules() {
    let dir = temp_dir("delete");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("base", 9, 6);
    let base = repo.commit(&req).unwrap();
    let forked = repo.copy("base", "fork", "fork").unwrap();

    // Parent with descendants cannot be deleted.
    assert!(matches!(
        repo.delete_version("base"),
        Err(mh_dlv::DlvError::HasDescendants(_))
    ));
    // Leaf deletion works and removes staged blobs + catalog rows.
    repo.delete_version(&forked.to_string()).unwrap();
    assert_eq!(repo.list().len(), 1);
    assert!(repo.desc("fork").is_err());
    assert!(repo.lineage().is_empty());
    // Now the parent is a leaf and can go too.
    repo.delete_version(&base.to_string()).unwrap();
    assert!(repo.list().is_empty());
    let blobs = std::fs::read_dir(dir.join("weights")).unwrap().count();
    assert_eq!(blobs, 0, "staged blobs removed");
    // Archived versions are protected.
    let (req, _) = trained_commit("keeper", 10, 6);
    repo.commit(&req).unwrap();
    repo.archive(&ArchiveConfig::default()).unwrap();
    assert!(matches!(
        repo.delete_version("keeper"),
        Err(mh_dlv::DlvError::Archived(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lossy_checkpoint_archival_shrinks_disk_and_keeps_latest_exact() {
    let dir = temp_dir("lossy");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("m", 12, 9);
    repo.commit(&req).unwrap();
    let latest = repo.get_weights("m", None).unwrap();
    let early = repo.get_weights("m", Some(0)).unwrap();
    let report = repo
        .archive(&ArchiveConfig {
            checkpoint_scheme: Some(mh_tensor::Scheme::Fixed { bits: 8 }),
            ..Default::default()
        })
        .unwrap();
    // Latest snapshot survives bit-exactly.
    assert_eq!(repo.get_weights("m", None).unwrap(), latest);
    // Early checkpoints are lossy but close.
    let early_back = repo.get_weights("m", Some(0)).unwrap();
    assert_ne!(early_back, early);
    let d = early_back.distance(&early);
    assert!(d > 0.0 && d < 0.05, "lossy checkpoint drift {d}");
    std::fs::remove_dir_all(&dir).ok();

    // Compare footprints against a lossless archive of the same commit.
    let dir2 = temp_dir("lossless-ref");
    let repo2 = Repository::init(&dir2).unwrap();
    repo2.commit(&req).unwrap();
    let lossless = repo2.archive(&ArchiveConfig::default()).unwrap();
    assert!(
        report.bytes_on_disk < lossless.bytes_on_disk,
        "lossy {} !< lossless {}",
        report.bytes_on_disk,
        lossless.bytes_on_disk
    );
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn compare_versions_on_dataset() {
    let dir = temp_dir("compare");
    let repo = Repository::init(&dir).unwrap();
    let (req_a, _) = trained_commit("well-trained", 13, 12);
    let (req_b, _) = trained_commit("barely-trained", 14, 1);
    repo.commit(&req_a).unwrap();
    repo.commit(&req_b).unwrap();
    let data = small_data();
    let cmp = repo
        .compare("well-trained", "barely-trained", &data.test)
        .unwrap();
    assert_eq!(cmp.total, data.test.len());
    assert!(cmp.accuracy_a >= cmp.accuracy_b);
    // Self-comparison is exact agreement.
    let self_cmp = repo
        .compare("well-trained", "well-trained", &data.test)
        .unwrap();
    assert_eq!(self_cmp.agreement, 1.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_start_resumes_from_checkpoint() {
    // The paper's motivation for keeping snapshots: training can resume
    // ("warm-start") from any checkpoint instead of restarting.
    let dir = temp_dir("warm");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("m", 15, 9);
    repo.commit(&req).unwrap();
    let net = repo.get_network("m").unwrap();
    let warm = repo.get_weights("m", Some(1)).unwrap();
    let data = small_data();
    let trainer = Trainer::new(Hyperparams {
        base_lr: 0.05,
        ..Default::default()
    });
    let resumed = trainer.train(&net, warm.clone(), &data, 5).unwrap();
    // Resumed run starts from the checkpoint (first-iteration loss well
    // below a cold start's) and can be committed as a new version.
    let cold = trainer
        .train(&net, Weights::init(&net, 999).unwrap(), &data, 5)
        .unwrap();
    assert!(resumed.log[0].loss < cold.log[0].loss);
    let mut req2 = CommitRequest::new("m-resumed", net);
    req2.snapshots = vec![(5, resumed.weights)];
    req2.parent = Some("m".into());
    repo.commit(&req2).unwrap();
    assert_eq!(repo.lineage().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsck_detects_injected_damage() {
    let dir = temp_dir("fsck");
    let repo = Repository::init(&dir).unwrap();
    let (req, _) = trained_commit("m", 16, 6);
    repo.commit(&req).unwrap();
    assert!(repo.fsck().is_empty(), "fresh repository must be clean");

    // Metrics API returns the committed loss curve.
    let loss = repo.metrics("m", "loss").unwrap();
    assert_eq!(loss.len(), req.log.len());
    assert!(loss.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(repo.metrics("ghost", "loss").is_err());

    // Damage 1: corrupt a staged blob.
    let blob = std::fs::read_dir(dir.join("weights"))
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let orig = std::fs::read(&blob).unwrap();
    let mut bad = orig.clone();
    let n = bad.len() - 5;
    bad[n] ^= 0x80;
    std::fs::write(&blob, &bad).unwrap();
    let problems = repo.fsck();
    assert!(
        problems.iter().any(|p| p.contains("unreadable")),
        "{problems:?}"
    );
    std::fs::write(&blob, &orig).unwrap();
    assert!(repo.fsck().is_empty());

    // Damage 2: delete a content-addressed file object.
    let obj = std::fs::read_dir(dir.join("objects"))
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let saved = std::fs::read(&obj).unwrap();
    std::fs::remove_file(&obj).unwrap();
    let problems = repo.fsck();
    assert!(
        problems.iter().any(|p| p.contains("missing")),
        "{problems:?}"
    );
    std::fs::write(&obj, &saved).unwrap();

    // Archived repositories fsck clean too (recreation exercised).
    repo.archive(&ArchiveConfig::default()).unwrap();
    assert!(repo.fsck().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
