//! Binary weight-blob format: stores a [`Weights`] collection, compressed
//! per matrix, for staged (not-yet-archived) snapshots.

use crate::DlvError;
use mh_compress::Level;
use mh_dnn::Weights;
use mh_tensor::Matrix;

const MAGIC: &[u8; 4] = b"MHW1";

/// Serialize weights to a compressed blob.
pub fn weights_to_bytes(w: &Weights, level: Level) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(w.len() as u32).to_le_bytes());
    for (name, m) in w.layers() {
        let nb = name.as_bytes();
        out.extend_from_slice(&(nb.len() as u32).to_le_bytes());
        out.extend_from_slice(nb);
        out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
        let packed = mh_compress::compress(&m.to_le_bytes(), level);
        out.extend_from_slice(&(packed.len() as u64).to_le_bytes());
        out.extend_from_slice(&packed);
    }
    out
}

/// Deserialize a blob produced by [`weights_to_bytes`].
pub fn weights_from_bytes(data: &[u8]) -> Result<Weights, DlvError> {
    let corrupt = |m: &'static str| DlvError::Corrupt(m);
    if data.len() < 8 || &data[..4] != MAGIC {
        return Err(corrupt("not a weight blob"));
    }
    let mut pos = 4usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], DlvError> {
        if *pos + n > data.len() {
            return Err(corrupt("truncated weight blob"));
        }
        let s = &data[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let count =
        u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("fixed-size chunk")) as usize;
    let mut w = Weights::new();
    for _ in 0..count {
        let nlen =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("fixed-size chunk")) as usize;
        let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
            .map_err(|_| corrupt("bad layer name"))?;
        let rows =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("fixed-size chunk")) as usize;
        let cols =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("fixed-size chunk")) as usize;
        let plen =
            u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("fixed-size chunk")) as usize;
        let packed = take(&mut pos, plen)?;
        let raw = mh_compress::decompress(packed).map_err(DlvError::Compress)?;
        let m = Matrix::from_le_bytes(rows, cols, &raw)
            .ok_or_else(|| corrupt("matrix size mismatch"))?;
        w.insert(&name, m);
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mh_dnn::{zoo, Weights};

    #[test]
    fn roundtrip() {
        let net = zoo::lenet_s(5);
        let w = Weights::init(&net, 3).unwrap();
        let blob = weights_to_bytes(&w, Level::Fast);
        let back = weights_from_bytes(&blob).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn truncation_rejected() {
        let net = zoo::lenet_s(2);
        let w = Weights::init(&net, 1).unwrap();
        let blob = weights_to_bytes(&w, Level::Fast);
        for cut in [0, 3, 10, blob.len() / 2, blob.len() - 1] {
            assert!(weights_from_bytes(&blob[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_weights() {
        let w = Weights::new();
        let blob = weights_to_bytes(&w, Level::Fast);
        assert_eq!(weights_from_bytes(&blob).unwrap(), w);
    }
}
