//! # mh-dlv
//!
//! DLV — the model versioning system of the ModelHub paper (§III): a
//! git-like VCS specialized for DNN lifecycle artifacts. Model versions
//! carry a network definition, checkpointed weight snapshots, extracted
//! metadata (hyperparameters, training measurements) and associated files;
//! lineage between versions is first-class.
//!
//! Storage is split-backend: structured metadata in the `mh-store`
//! relational catalog, float parameters staged as compressed blobs and
//! archived into `mh-pas` segment stores by `dlv archive`. The hosted
//! ModelHub service (publish / search / pull) is a directory-based hub.
//!
//! ```
//! use mh_dlv::{CommitRequest, Repository};
//! use mh_dnn::{zoo, Weights};
//!
//! let dir = std::env::temp_dir().join(format!("dlv-doc-{}", std::process::id()));
//! let repo = Repository::init(&dir).unwrap();
//!
//! // Commit a model version: network + weight snapshot(s) + metadata.
//! let net = zoo::lenet_s(10);
//! let mut req = CommitRequest::new("lenet", net);
//! req.snapshots = vec![(0, Weights::init(&req.network, 42).unwrap())];
//! req.comment = "initial version".into();
//! let key = repo.commit(&req).unwrap();
//! assert_eq!(key.to_string(), "lenet:1");
//!
//! // Explore it.
//! assert_eq!(repo.list().len(), 1);
//! assert!(repo.desc("lenet").unwrap().layers.len() > 5);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod diff;
pub mod hash;
pub mod hub;
pub mod layercodec;
pub mod repo;
pub mod wfile;

pub use diff::{diff, DiffReport};
pub use hub::{
    committed_manifest, create_standard_dirs, replace_published, validate_rel_path,
    validate_repo_name, verify_pulled, Hub, HubBackend, ManifestEntry, SearchHit,
};
pub use repo::{
    ArchiveConfig, ArchiveId, ArchiveReport, CommitRequest, Repository, SnapshotInfo, VersionDesc,
    VersionKey, VersionSummary,
};

/// Errors from DLV operations.
#[derive(Debug)]
pub enum DlvError {
    Io(std::io::Error),
    Store(mh_store::StoreError),
    Network(mh_dnn::NetworkError),
    Pas(mh_pas::PasError),
    Pas2(mh_pas::PlanError),
    Compress(mh_compress::CompressError),
    Corrupt(&'static str),
    NoSuchVersion(String),
    NoSuchSnapshot(usize),
    NoSuchFile(String),
    AlreadyExists(String),
    NotARepository(String),
    EmptyCommit,
    NothingToArchive,
    /// Deletion refused: version is archived in a shared PAS store.
    Archived(String),
    /// Deletion refused: version has lineage descendants.
    HasDescendants(String),
    /// A repository name (or manifest path) failed validation — empty,
    /// absolute, containing `..`, dot-prefixed, or illegal characters.
    InvalidName(String),
    /// A hosted-hub operation failed (transport, protocol, or server).
    Hub(String),
    /// A pulled repository failed post-transfer integrity verification.
    Verify(String),
}

impl std::fmt::Display for DlvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Store(e) => write!(f, "catalog error: {e}"),
            Self::Network(e) => write!(f, "network error: {e}"),
            Self::Pas(e) => write!(f, "archival error: {e}"),
            Self::Pas2(e) => write!(f, "archival plan error: {e}"),
            Self::Compress(e) => write!(f, "compression error: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt repository: {m}"),
            Self::NoSuchVersion(v) => write!(f, "no such model version '{v}'"),
            Self::NoSuchSnapshot(i) => write!(f, "no such snapshot {i}"),
            Self::NoSuchFile(p) => write!(f, "no such file '{p}'"),
            Self::AlreadyExists(p) => write!(f, "already exists: {p}"),
            Self::NotARepository(p) => write!(f, "not a dlv repository: {p}"),
            Self::EmptyCommit => write!(f, "commit needs at least one snapshot"),
            Self::NothingToArchive => write!(f, "no staged snapshots to archive"),
            Self::Archived(v) => {
                write!(f, "'{v}' is archived; archived versions cannot be deleted")
            }
            Self::HasDescendants(v) => {
                write!(f, "'{v}' has lineage descendants; delete them first")
            }
            Self::InvalidName(n) => {
                write!(f, "invalid repository name or path '{n}'")
            }
            Self::Hub(m) => write!(f, "hub error: {m}"),
            Self::Verify(m) => {
                write!(f, "pulled repository failed verification: {m}")
            }
        }
    }
}

impl std::error::Error for DlvError {}
