//! Text codec for layer definitions, used to persist the network DAG in
//! the catalog's `node` table (the paper's `Node(id, node, A)` relation,
//! with `A` the attribute list).

use mh_dnn::{Activation, LayerKind, PoolKind};

/// Serialize a layer kind to a compact `TYPE k=v ...` string.
pub fn encode_layer(kind: &LayerKind) -> String {
    match kind {
        LayerKind::Input {
            channels,
            height,
            width,
        } => {
            format!("INPUT c={channels} h={height} w={width}")
        }
        LayerKind::Conv {
            out_channels,
            kernel,
            stride,
            pad,
        } => {
            format!("CONV out={out_channels} k={kernel} s={stride} p={pad}")
        }
        LayerKind::Pool { kind, size, stride } => {
            let k = match kind {
                PoolKind::Max => "max",
                PoolKind::Avg => "avg",
            };
            format!("POOL kind={k} size={size} s={stride}")
        }
        LayerKind::Full { out } => format!("FULL out={out}"),
        LayerKind::Act(Activation::ReLU) => "RELU".to_string(),
        LayerKind::Act(Activation::Sigmoid) => "SIGMOID".to_string(),
        LayerKind::Act(Activation::Tanh) => "TANH".to_string(),
        LayerKind::Flatten => "FLATTEN".to_string(),
        LayerKind::Softmax => "SOFTMAX".to_string(),
        LayerKind::Dropout { rate } => format!("DROPOUT rate={rate}"),
        LayerKind::Lrn {
            size,
            alpha,
            beta,
            k,
        } => {
            format!("NORM size={size} alpha={alpha} beta={beta} k={k}")
        }
    }
}

/// Parse a string produced by [`encode_layer`].
pub fn decode_layer(s: &str) -> Option<LayerKind> {
    let mut parts = s.split_whitespace();
    let ty = parts.next()?;
    let mut attrs = std::collections::BTreeMap::new();
    for p in parts {
        let (k, v) = p.split_once('=')?;
        attrs.insert(k, v);
    }
    let get_usize = |k: &str| -> Option<usize> { attrs.get(k)?.parse().ok() };
    Some(match ty {
        "INPUT" => LayerKind::Input {
            channels: get_usize("c")?,
            height: get_usize("h")?,
            width: get_usize("w")?,
        },
        "CONV" => LayerKind::Conv {
            out_channels: get_usize("out")?,
            kernel: get_usize("k")?,
            stride: get_usize("s")?,
            pad: get_usize("p")?,
        },
        "POOL" => LayerKind::Pool {
            kind: match *attrs.get("kind")? {
                "max" => PoolKind::Max,
                "avg" => PoolKind::Avg,
                _ => return None,
            },
            size: get_usize("size")?,
            stride: get_usize("s")?,
        },
        "FULL" => LayerKind::Full {
            out: get_usize("out")?,
        },
        "RELU" => LayerKind::Act(Activation::ReLU),
        "SIGMOID" => LayerKind::Act(Activation::Sigmoid),
        "TANH" => LayerKind::Act(Activation::Tanh),
        "FLATTEN" => LayerKind::Flatten,
        "SOFTMAX" => LayerKind::Softmax,
        "DROPOUT" => LayerKind::Dropout {
            rate: attrs.get("rate")?.parse().ok()?,
        },
        "NORM" => LayerKind::Lrn {
            size: get_usize("size")?,
            alpha: attrs.get("alpha")?.parse().ok()?,
            beta: attrs.get("beta")?.parse().ok()?,
            k: attrs.get("k")?.parse().ok()?,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let kinds = vec![
            LayerKind::Input {
                channels: 3,
                height: 224,
                width: 224,
            },
            LayerKind::Conv {
                out_channels: 64,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            LayerKind::Pool {
                kind: PoolKind::Max,
                size: 2,
                stride: 2,
            },
            LayerKind::Pool {
                kind: PoolKind::Avg,
                size: 3,
                stride: 1,
            },
            LayerKind::Full { out: 4096 },
            LayerKind::Act(Activation::ReLU),
            LayerKind::Act(Activation::Sigmoid),
            LayerKind::Act(Activation::Tanh),
            LayerKind::Flatten,
            LayerKind::Softmax,
            LayerKind::Dropout { rate: 0.5 },
            LayerKind::Lrn {
                size: 5,
                alpha: 1e-4,
                beta: 0.75,
                k: 2.0,
            },
        ];
        for k in kinds {
            let s = encode_layer(&k);
            assert_eq!(decode_layer(&s), Some(k), "codec failed for '{s}'");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(decode_layer(""), None);
        assert_eq!(decode_layer("WIBBLE x=1"), None);
        assert_eq!(decode_layer("CONV out=8"), None); // missing attrs
        assert_eq!(decode_layer("POOL kind=squish size=2 s=2"), None);
    }
}
