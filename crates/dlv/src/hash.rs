//! SHA-256, implemented from scratch for content-addressing associated
//! files and weight blobs (the role git's object hashing plays in the
//! paper's prototype).

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256: feed data with [`Sha256::update`], close with
/// [`Sha256::finalize`]. The hub wire protocol uses this to checksum whole
/// object transfers without buffering them.
#[derive(Debug, Clone)]
pub struct Sha256 {
    h: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Self {
            h: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total: 0,
        }
    }

    // mh-audit: trusted(fixed 64-byte block buffering; take <= 64 - buf_len and chunks_exact(64) make every slice in range)
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.h, &block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything fit in the (possibly still partial) buffer;
                // falling through would clobber buf_len with an empty
                // remainder.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            compress(&mut self.h, block.try_into().expect("fixed-size chunk"));
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    // mh-audit: trusted(padding tail is a fixed 128-byte array; buf_len < 64 is a struct invariant)
    pub fn finalize(mut self) -> [u8; 32] {
        let bitlen = self.total.wrapping_mul(8);
        let mut tail = [0u8; 128];
        tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        tail[self.buf_len] = 0x80;
        let tail_len = if self.buf_len < 56 { 64 } else { 128 };
        tail[tail_len - 8..tail_len].copy_from_slice(&bitlen.to_be_bytes());
        compress(
            &mut self.h,
            tail[..64].try_into().expect("fixed-size chunk"),
        );
        if tail_len == 128 {
            compress(
                &mut self.h,
                tail[64..128].try_into().expect("fixed-size chunk"),
            );
        }
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    pub fn finalize_hex(self) -> String {
        self.finalize().iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// Compute the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hex string of the digest.
pub fn sha256_hex(data: &[u8]) -> String {
    sha256(data).iter().map(|b| format!("{b:02x}")).collect()
}

// mh-audit: trusted(SHA-256 compression over fixed [u8; 64] / [u32; 64] arrays; all indices are literal-bounded loop counters)
fn compress(h: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, c) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(c.try_into().expect("fixed-size chunk"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
    h[5] = h[5].wrapping_add(f);
    h[6] = h[6].wrapping_add(g);
    h[7] = h[7].wrapping_add(hh);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // NIST test vectors.
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths that straddle the 56-byte padding cutoff and block size.
        for n in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x61u8; n];
            let d = sha256(&data);
            assert_eq!(d.len(), 32);
            // Stability: same input, same digest.
            assert_eq!(sha256(&data), d);
        }
        // Cross-check one boundary value against a known digest
        // ("a" * 64).
        assert_eq!(
            sha256_hex(&[b'a'; 64]),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn different_inputs_different_digests() {
        assert_ne!(sha256(b"model-v1"), sha256(b"model-v2"));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 7 + 3) as u8).collect();
        // Feed in awkward chunk sizes that straddle block boundaries.
        for chunk in [1usize, 7, 63, 64, 65, 200] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk={chunk}");
        }
        assert_eq!(Sha256::new().finalize(), sha256(b""));
    }
}
