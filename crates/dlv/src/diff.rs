//! `dlv diff`: side-by-side comparison of two model versions over both the
//! metadata (architecture, hyperparameters, accuracy) and the learned
//! parameters.

use crate::repo::Repository;
use crate::DlvError;
use std::collections::BTreeSet;

/// The outcome of comparing two versions.
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub left: String,
    pub right: String,
    /// Layers present only in the left version (name, definition).
    pub only_left: Vec<(String, String)>,
    /// Layers present only in the right version.
    pub only_right: Vec<(String, String)>,
    /// Layers present in both but with different definitions:
    /// (name, left def, right def).
    pub changed: Vec<(String, String, String)>,
    /// Hyperparameters that differ: (key, left, right) with "" for absent.
    pub hyper_diff: Vec<(String, String, String)>,
    pub accuracy_left: Option<f64>,
    pub accuracy_right: Option<f64>,
    /// Mean absolute difference over shared same-shape weight matrices
    /// (None when either side's weights are unavailable).
    pub weight_distance: Option<f32>,
}

impl DiffReport {
    pub fn is_architecture_identical(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty() && self.changed.is_empty()
    }

    /// Render a human-readable report (the CLI front end of `dlv diff`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("diff {} .. {}\n", self.left, self.right));
        for (n, d) in &self.only_left {
            out.push_str(&format!("- layer {n}: {d}\n"));
        }
        for (n, d) in &self.only_right {
            out.push_str(&format!("+ layer {n}: {d}\n"));
        }
        for (n, l, r) in &self.changed {
            out.push_str(&format!("~ layer {n}: {l} -> {r}\n"));
        }
        for (k, l, r) in &self.hyper_diff {
            out.push_str(&format!("~ hyper {k}: '{l}' -> '{r}'\n"));
        }
        match (self.accuracy_left, self.accuracy_right) {
            (Some(a), Some(b)) => {
                out.push_str(&format!("accuracy: {a:.4} -> {b:.4} ({:+.4})\n", b - a))
            }
            _ => out.push_str("accuracy: (missing on at least one side)\n"),
        }
        if let Some(d) = self.weight_distance {
            out.push_str(&format!("mean |Δweight| over shared layers: {d:.6}\n"));
        }
        out
    }
}

/// Compare two versions in a repository.
pub fn diff(repo: &Repository, left: &str, right: &str) -> Result<DiffReport, DlvError> {
    let dl = repo.desc(left)?;
    let dr = repo.desc(right)?;
    let lmap: std::collections::BTreeMap<&String, &String> =
        dl.layers.iter().map(|(n, d)| (n, d)).collect();
    let rmap: std::collections::BTreeMap<&String, &String> =
        dr.layers.iter().map(|(n, d)| (n, d)).collect();
    let mut only_left = Vec::new();
    let mut only_right = Vec::new();
    let mut changed = Vec::new();
    for (n, d) in &lmap {
        match rmap.get(n) {
            None => only_left.push(((*n).clone(), (*d).clone())),
            Some(rd) if rd != d => changed.push(((*n).clone(), (*d).clone(), (*rd).clone())),
            _ => {}
        }
    }
    for (n, d) in &rmap {
        if !lmap.contains_key(n) {
            only_right.push(((*n).clone(), (*d).clone()));
        }
    }

    let keys: BTreeSet<&String> = dl.hyperparams.keys().chain(dr.hyperparams.keys()).collect();
    let mut hyper_diff = Vec::new();
    for k in keys {
        let lv = dl.hyperparams.get(k).cloned().unwrap_or_default();
        let rv = dr.hyperparams.get(k).cloned().unwrap_or_default();
        if lv != rv {
            hyper_diff.push((k.clone(), lv, rv));
        }
    }

    let weight_distance = match (repo.get_weights(left, None), repo.get_weights(right, None)) {
        (Ok(a), Ok(b)) => Some(a.distance(&b)),
        _ => None,
    };

    Ok(DiffReport {
        left: dl.summary.key.to_string(),
        right: dr.summary.key.to_string(),
        only_left,
        only_right,
        changed,
        hyper_diff,
        accuracy_left: dl.summary.accuracy,
        accuracy_right: dr.summary.accuracy,
        weight_distance,
    })
}
