//! The hosted ModelHub service (§III-C): `dlv publish`, `dlv search`,
//! `dlv pull`.
//!
//! Two backends implement the [`HubBackend`] trait:
//!
//! - [`Hub`] (this module) — a hub rooted at a local directory. A
//!   published repository is a plain directory holding exactly the
//!   repository's *committed content* (see [`committed_manifest`]).
//! - `mh_hub::RemoteHub` — a networked client for the `hubd` server,
//!   which negotiates content-addressed objects so repeat transfers move
//!   only what the other side is missing.
//!
//! Publication is atomic: content is staged into a hidden sibling
//! directory under the hub root and renamed into place
//! ([`replace_published`]), so a crash mid-publish never leaves a
//! half-copied or missing published repository. Repository names are
//! validated against path traversal ([`validate_repo_name`]) and every
//! pulled repository is integrity-checked ([`verify_pulled`]) before the
//! pull reports success.

use crate::repo::Repository;
use crate::{hash, DlvError};
use mh_store::like_match;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The operations every hub backend (local directory or remote `hubd`)
/// provides. `dlv publish/search/pull` program against this trait.
pub trait HubBackend {
    /// Push a repository under a public name, replacing any previous
    /// publication of that name atomically.
    fn publish(&self, repo: &Repository, name: &str) -> Result<(), DlvError>;
    /// All published repository names, sorted.
    fn repositories(&self) -> Result<Vec<String>, DlvError>;
    /// Match a SQL-LIKE pattern against repository names, model names and
    /// comments.
    fn search(&self, pattern: &str) -> Result<Vec<SearchHit>, DlvError>;
    /// Clone a published repository to a local destination, verifying its
    /// integrity before returning.
    fn pull(&self, name: &str, dest: &Path) -> Result<Repository, DlvError>;
}

/// A hub rooted at a directory.
#[derive(Debug)]
pub struct Hub {
    root: PathBuf,
}

/// One search hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    pub repo: String,
    pub version: String,
    pub architecture: String,
    pub comment: String,
}

/// One file of a repository's committed content: a repo-relative
/// `/`-separated path, its byte size, and the SHA-256 of its contents.
/// The manifest is the unit of hub transfer negotiation: hashes are the
/// "have/want" currency, paths say where objects land on assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    pub path: String,
    pub size: u64,
    pub hash: String,
}

/// Validate a published repository name: `/`-separated segments, each
/// non-empty, not dot-prefixed (which also rejects `.` and `..`), and
/// drawn from `[A-Za-z0-9._-]`. Rejects absolute paths (their leading
/// `/` yields an empty first segment), traversal (`..`), and anything
/// that could escape the hub root when joined onto it.
pub fn validate_repo_name(name: &str) -> Result<(), DlvError> {
    if name.is_empty() || name.len() > 255 || !name.split('/').all(valid_segment) {
        return Err(DlvError::InvalidName(name.to_string()));
    }
    Ok(())
}

/// Validate a repo-relative manifest path with the same segment rules as
/// repository names. Applied to every server- or client-supplied path
/// before it is joined onto a local directory.
pub fn validate_rel_path(path: &str) -> Result<(), DlvError> {
    if path.is_empty() || path.len() > 1024 || !path.split('/').all(valid_segment) {
        return Err(DlvError::InvalidName(path.to_string()));
    }
    Ok(())
}

fn valid_segment(seg: &str) -> bool {
    !seg.is_empty()
        && !seg.starts_with('.')
        && seg
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Transient working state that must never be published or pulled:
/// atomic-write temporaries, locks, partial transfers, and hidden
/// staging/cache directories.
fn is_transient(name: &str) -> bool {
    name.starts_with('.')
        || name.ends_with(".tmp")
        || name.ends_with(".lock")
        || name.ends_with(".part")
}

/// The manifest of a repository's *committed content*: the catalog, every
/// staged snapshot blob the catalog references, every content-addressed
/// associated file, and every PAS store holding archived snapshots.
/// Orphaned blobs, transient files, and symlinks are excluded by
/// construction — a published repo is exactly its committed content.
pub fn committed_manifest(repo: &Repository) -> Result<Vec<ManifestEntry>, DlvError> {
    let root = repo.root();
    let mut paths: BTreeSet<String> = BTreeSet::new();
    paths.insert("catalog.mhs".to_string());
    let mut stores: BTreeSet<String> = BTreeSet::new();
    for v in repo.list() {
        let spec = v.key.to_string();
        for s in repo.snapshots(&spec)? {
            if let Some(rel) = s.location.strip_prefix("staged:") {
                paths.insert(rel.to_string());
            } else if let Some(store) = s.location.strip_prefix("pas:") {
                stores.insert(store.to_string());
            }
        }
        for (_, digest, _) in repo.desc(&spec)?.files {
            paths.insert(format!("objects/{digest}"));
        }
    }
    for store in &stores {
        collect_files(
            &root.join("pas").join(store),
            &format!("pas/{store}"),
            &mut paths,
        )
        .map_err(DlvError::Io)?;
    }
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let data = std::fs::read(root.join(&path)).map_err(DlvError::Io)?;
        out.push(ManifestEntry {
            hash: hash::sha256_hex(&data),
            size: data.len() as u64,
            path,
        });
    }
    Ok(out)
}

/// Recursively collect regular files under `dir` as `prefix/`-relative
/// paths, skipping symlinks and transient files.
fn collect_files(dir: &Path, prefix: &str, out: &mut BTreeSet<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let ft = entry.file_type()?; // does not follow symlinks
        let name = entry.file_name().to_string_lossy().to_string();
        if is_transient(&name) {
            continue;
        }
        if ft.is_dir() {
            collect_files(&entry.path(), &format!("{prefix}/{name}"), out)?;
        } else if ft.is_file() {
            out.insert(format!("{prefix}/{name}"));
        }
    }
    Ok(())
}

/// Copy a directory tree, skipping symlinks and transient working files
/// (locks, atomic-write temporaries, hidden staging dirs).
fn copy_dir_filtered(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let ft = entry.file_type()?; // does not follow symlinks
        let name = entry.file_name().to_string_lossy().to_string();
        if is_transient(&name) {
            continue;
        }
        let to = dst.join(entry.file_name());
        if ft.is_dir() {
            copy_dir_filtered(&entry.path(), &to)?;
        } else if ft.is_file() {
            std::fs::copy(entry.path(), &to)?;
        }
        // Symlinks and special files are deliberately not copied.
    }
    Ok(())
}

static STAGE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique suffix for staging directory names.
fn unique_suffix() -> String {
    let seq = STAGE_SEQ.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("{}-{seq}-{nanos}", std::process::id())
}

/// Create the standard repository directories an assembled copy needs
/// even when empty (`Repository::archive` and friends read them).
pub fn create_standard_dirs(root: &Path) -> std::io::Result<()> {
    for d in ["weights", "objects", "pas"] {
        std::fs::create_dir_all(root.join(d))?;
    }
    Ok(())
}

/// Atomically (re)place the published repository `name` under `root`:
/// `build` populates a hidden staging directory which is then renamed
/// into place, replacing any previous publication. A failure in `build`
/// — or a crash at any point — leaves the previous publication intact;
/// the worst case is an orphaned hidden staging directory, which later
/// publishes ignore and never serve. Concurrent publishers of the same
/// name race on the final rename and both succeed (last writer wins).
pub fn replace_published<F>(root: &Path, name: &str, build: F) -> Result<(), DlvError>
where
    F: FnOnce(&Path) -> Result<(), DlvError>,
{
    validate_repo_name(name)?;
    let dst = root.join(name);
    // Refuse to nest a publication inside an existing published repo.
    let mut anc = PathBuf::from(root);
    let segments: Vec<&str> = name.split('/').collect();
    let (_, ancestors) = segments.split_last().unwrap_or((&"", &[]));
    for seg in ancestors {
        anc.push(seg);
        if anc.join("catalog.mhs").exists() {
            return Err(DlvError::Hub(format!(
                "'{name}' would nest inside published repository '{}'",
                anc.strip_prefix(root).unwrap_or(&anc).display()
            )));
        }
    }
    let suffix = unique_suffix();
    let stage = root.join(format!(".stage-{suffix}"));
    std::fs::create_dir_all(&stage).map_err(DlvError::Io)?;
    if let Err(e) = build(&stage) {
        let _ = std::fs::remove_dir_all(&stage);
        return Err(e);
    }
    if let Some(parent) = dst.parent() {
        std::fs::create_dir_all(parent).map_err(DlvError::Io)?;
    }
    for attempt in 0..16 {
        if dst.exists() {
            let old = root.join(format!(".old-{suffix}-{attempt}"));
            match std::fs::rename(&dst, &old) {
                Ok(()) => {
                    let _ = std::fs::remove_dir_all(&old);
                }
                // A racing publisher already moved it aside.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => continue,
            }
        }
        match std::fs::rename(&stage, &dst) {
            Ok(()) => return Ok(()),
            // Raced with another publisher whose stage landed first: loop
            // to move theirs aside and try again.
            Err(_) if dst.exists() => continue,
            Err(e) => {
                let _ = std::fs::remove_dir_all(&stage);
                return Err(DlvError::Io(e));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&stage);
    Err(DlvError::Hub(format!(
        "publish of '{name}' kept losing the rename race; giving up"
    )))
}

/// Post-pull verification: run the repository's own fsck and fail the
/// pull if anything is inconsistent.
pub fn verify_pulled(repo: &Repository) -> Result<(), DlvError> {
    let problems = repo.fsck();
    if problems.is_empty() {
        Ok(())
    } else {
        Err(DlvError::Verify(problems.join("; ")))
    }
}

impl Hub {
    /// Open (or create) a hub at `root`.
    pub fn open(root: &Path) -> Result<Self, DlvError> {
        std::fs::create_dir_all(root).map_err(DlvError::Io)?;
        Ok(Self {
            root: root.to_path_buf(),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `dlv publish`: push a repository under a public name (replacing any
    /// previous publication of the same name). The copy is staged into a
    /// hidden sibling directory and renamed into place, so a crash
    /// mid-publish never destroys the previous publication; only the
    /// repository's committed content is copied.
    pub fn publish(&self, repo: &Repository, name: &str) -> Result<(), DlvError> {
        let manifest = committed_manifest(repo)?;
        let src_root = repo.root().to_path_buf();
        replace_published(&self.root, name, |stage| {
            create_standard_dirs(stage).map_err(DlvError::Io)?;
            for entry in &manifest {
                let to = stage.join(&entry.path);
                if let Some(parent) = to.parent() {
                    std::fs::create_dir_all(parent).map_err(DlvError::Io)?;
                }
                std::fs::copy(src_root.join(&entry.path), &to).map_err(DlvError::Io)?;
            }
            Ok(())
        })
    }

    /// Published repository names. Names may contain `/` (e.g.
    /// `team/vision`): a directory is a repository iff it holds a
    /// `catalog.mhs`; other directories are namespaces to recurse into.
    /// Hidden entries (staging, caches) are never listed.
    pub fn repositories(&self) -> Result<Vec<String>, DlvError> {
        fn walk(dir: &Path, prefix: &str, out: &mut Vec<String>) -> std::io::Result<()> {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                if !entry.file_type()?.is_dir() {
                    continue;
                }
                let name = entry.file_name().to_string_lossy().to_string();
                if name.starts_with('.') {
                    continue;
                }
                let full = if prefix.is_empty() {
                    name
                } else {
                    format!("{prefix}/{name}")
                };
                if entry.path().join("catalog.mhs").exists() {
                    out.push(full);
                } else {
                    walk(&entry.path(), &full, out)?;
                }
            }
            Ok(())
        }
        let mut out = Vec::new();
        walk(&self.root, "", &mut out).map_err(DlvError::Io)?;
        out.sort();
        Ok(out)
    }

    /// `dlv search`: match a SQL-LIKE pattern against repository names,
    /// model names and comments.
    pub fn search(&self, pattern: &str) -> Result<Vec<SearchHit>, DlvError> {
        let mut hits = Vec::new();
        for repo_name in self.repositories()? {
            let repo = Repository::open(&self.root.join(&repo_name))?;
            for summary in repo.list() {
                let hay = [
                    repo_name.as_str(),
                    summary.key.name.as_str(),
                    summary.comment.as_str(),
                ];
                if hay.iter().any(|h| like_match(pattern, h))
                    || hay.iter().any(|h| h.contains(pattern))
                {
                    hits.push(SearchHit {
                        repo: repo_name.clone(),
                        version: summary.key.to_string(),
                        architecture: summary.architecture.clone(),
                        comment: summary.comment.clone(),
                    });
                }
            }
        }
        Ok(hits)
    }

    /// `dlv pull`: clone a published repository to a local destination.
    /// The copy is staged next to `dest` and renamed into place, then
    /// integrity-checked before the pull reports success.
    pub fn pull(&self, name: &str, dest: &Path) -> Result<Repository, DlvError> {
        validate_repo_name(name)?;
        let src = self.root.join(name);
        if !src.join("catalog.mhs").exists() {
            return Err(DlvError::NoSuchVersion(name.to_string()));
        }
        if dest.exists() {
            return Err(DlvError::AlreadyExists(dest.display().to_string()));
        }
        let parent = dest.parent().unwrap_or(Path::new("."));
        std::fs::create_dir_all(parent).map_err(DlvError::Io)?;
        let stage = parent.join(format!(".pull-{}", unique_suffix()));
        let assembled = copy_dir_filtered(&src, &stage)
            .and_then(|()| create_standard_dirs(&stage))
            .map_err(DlvError::Io)
            .and_then(|()| {
                std::fs::rename(&stage, dest).map_err(|e| {
                    if dest.exists() {
                        DlvError::AlreadyExists(dest.display().to_string())
                    } else {
                        DlvError::Io(e)
                    }
                })
            });
        if let Err(e) = assembled {
            let _ = std::fs::remove_dir_all(&stage);
            return Err(e);
        }
        let repo = Repository::open(dest)?;
        verify_pulled(&repo)?;
        Ok(repo)
    }

    /// A hash → repo-relative-path index over the committed content of a
    /// published repository, used by `hubd` for have/want negotiation.
    /// Returns an empty map if `name` is not published.
    pub fn published_objects(&self, name: &str) -> Result<BTreeMap<String, String>, DlvError> {
        validate_repo_name(name)?;
        let dir = self.root.join(name);
        if !dir.join("catalog.mhs").exists() {
            return Ok(BTreeMap::new());
        }
        let repo = Repository::open(&dir)?;
        Ok(committed_manifest(&repo)?
            .into_iter()
            .map(|e| (e.hash, e.path))
            .collect())
    }
}

impl HubBackend for Hub {
    fn publish(&self, repo: &Repository, name: &str) -> Result<(), DlvError> {
        Hub::publish(self, repo, name)
    }

    fn repositories(&self) -> Result<Vec<String>, DlvError> {
        Hub::repositories(self)
    }

    fn search(&self, pattern: &str) -> Result<Vec<SearchHit>, DlvError> {
        Hub::search(self, pattern)
    }

    fn pull(&self, name: &str, dest: &Path) -> Result<Repository, DlvError> {
        Hub::pull(self, name, dest)
    }
}
