//! The hosted ModelHub service (§III-C), simulated as a directory-based
//! registry: `dlv publish`, `dlv search`, `dlv pull`.
//!
//! A published repository is copied wholesale under the hub root; search
//! matches over repository names and model-version names/comments.

use crate::repo::Repository;
use crate::DlvError;
use mh_store::like_match;
use std::path::{Path, PathBuf};

/// A hub rooted at a directory.
#[derive(Debug)]
pub struct Hub {
    root: PathBuf,
}

/// One search hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    pub repo: String,
    pub version: String,
    pub architecture: String,
    pub comment: String,
}

fn copy_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir(&entry.path(), &to)?;
        } else {
            std::fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

impl Hub {
    /// Open (or create) a hub at `root`.
    pub fn open(root: &Path) -> Result<Self, DlvError> {
        std::fs::create_dir_all(root).map_err(DlvError::Io)?;
        Ok(Self {
            root: root.to_path_buf(),
        })
    }

    /// `dlv publish`: push a repository under a public name (replacing any
    /// previous publication of the same name).
    pub fn publish(&self, repo: &Repository, name: &str) -> Result<(), DlvError> {
        let dst = self.root.join(name);
        if dst.exists() {
            std::fs::remove_dir_all(&dst).map_err(DlvError::Io)?;
        }
        copy_dir(repo.root(), &dst).map_err(DlvError::Io)?;
        Ok(())
    }

    /// Published repository names. Names may contain `/` (e.g.
    /// `team/vision`): a directory is a repository iff it holds a
    /// `catalog.mhs`; other directories are namespaces to recurse into.
    pub fn repositories(&self) -> Result<Vec<String>, DlvError> {
        fn walk(dir: &Path, prefix: &str, out: &mut Vec<String>) -> std::io::Result<()> {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                if !entry.file_type()?.is_dir() {
                    continue;
                }
                let name = entry.file_name().to_string_lossy().to_string();
                let full = if prefix.is_empty() {
                    name
                } else {
                    format!("{prefix}/{name}")
                };
                if entry.path().join("catalog.mhs").exists() {
                    out.push(full);
                } else {
                    walk(&entry.path(), &full, out)?;
                }
            }
            Ok(())
        }
        let mut out = Vec::new();
        walk(&self.root, "", &mut out).map_err(DlvError::Io)?;
        out.sort();
        Ok(out)
    }

    /// `dlv search`: match a SQL-LIKE pattern against repository names,
    /// model names and comments.
    pub fn search(&self, pattern: &str) -> Result<Vec<SearchHit>, DlvError> {
        let mut hits = Vec::new();
        for repo_name in self.repositories()? {
            let repo = Repository::open(&self.root.join(&repo_name))?;
            for summary in repo.list() {
                let hay = [
                    repo_name.as_str(),
                    summary.key.name.as_str(),
                    summary.comment.as_str(),
                ];
                if hay.iter().any(|h| like_match(pattern, h))
                    || hay.iter().any(|h| h.contains(pattern))
                {
                    hits.push(SearchHit {
                        repo: repo_name.clone(),
                        version: summary.key.to_string(),
                        architecture: summary.architecture.clone(),
                        comment: summary.comment.clone(),
                    });
                }
            }
        }
        Ok(hits)
    }

    /// `dlv pull`: clone a published repository to a local destination.
    pub fn pull(&self, name: &str, dest: &Path) -> Result<Repository, DlvError> {
        let src = self.root.join(name);
        if !src.exists() {
            return Err(DlvError::NoSuchVersion(name.to_string()));
        }
        if dest.exists() {
            return Err(DlvError::AlreadyExists(dest.display().to_string()));
        }
        copy_dir(&src, dest).map_err(DlvError::Io)?;
        Repository::open(dest)
    }
}
