//! The DLV repository: `dlv init / add+commit / copy / list / desc / diff /
//! eval / archive` (Table II of the paper).
//!
//! Split-backend design exactly as §III describes: structured artifacts
//! (model versions, network DAGs, lineage, hyperparameters, training
//! metrics, file manifests) live in the relational catalog (`mh-store`);
//! learned float matrices live either staged as compressed blobs or
//! archived inside PAS segment stores.

use crate::layercodec::{decode_layer, encode_layer};
use crate::wfile::{weights_from_bytes, weights_to_bytes};
use crate::{hash, DlvError};
use mh_compress::Level;
use mh_delta::DeltaOp;
use mh_dnn::{accuracy, LogEntry, Network, Weights};
use mh_pas::{apply_alpha_budgets, solver, CostModel, GraphBuilder, RetrievalScheme, SegmentStore};
use mh_store::{Catalog, Column, ColumnType, Predicate, Row, Schema, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A model version is identified by a human-readable name plus an
/// auto-assigned id distinguishing versions committed under the same name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct VersionKey {
    pub name: String,
    pub id: i64,
}

impl std::fmt::Display for VersionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.name, self.id)
    }
}

impl VersionKey {
    /// Parse `name` or `name:id`.
    pub fn parse(s: &str) -> (String, Option<i64>) {
        match s.rsplit_once(':') {
            Some((name, id)) => match id.parse() {
                Ok(i) => (name.to_string(), Some(i)),
                Err(_) => (s.to_string(), None),
            },
            None => (s.to_string(), None),
        }
    }
}

/// Everything a `dlv commit` records.
#[derive(Debug, Clone)]
pub struct CommitRequest {
    pub name: String,
    pub network: Network,
    /// Checkpoint snapshots `(iteration, weights)`, oldest first. The last
    /// entry is the latest snapshot.
    pub snapshots: Vec<(usize, Weights)>,
    pub hyperparams: BTreeMap<String, String>,
    pub log: Vec<LogEntry>,
    /// Associated files (scripts, configs): path -> content.
    pub files: Vec<(String, Vec<u8>)>,
    /// Lineage parent (`name` or `name:id`).
    pub parent: Option<String>,
    pub accuracy: Option<f32>,
    pub comment: String,
}

impl CommitRequest {
    pub fn new(name: &str, network: Network) -> Self {
        Self {
            name: name.to_string(),
            network,
            snapshots: Vec::new(),
            hyperparams: BTreeMap::new(),
            log: Vec::new(),
            files: Vec::new(),
            parent: None,
            accuracy: None,
            comment: String::new(),
        }
    }
}

/// Summary row for `dlv list`.
#[derive(Debug, Clone)]
pub struct VersionSummary {
    pub key: VersionKey,
    pub created: i64,
    pub architecture: String,
    pub param_count: i64,
    pub accuracy: Option<f64>,
    pub comment: String,
    pub num_snapshots: usize,
    pub archived: bool,
}

/// Detailed description for `dlv desc`.
#[derive(Debug, Clone)]
pub struct VersionDesc {
    pub summary: VersionSummary,
    pub hyperparams: BTreeMap<String, String>,
    pub layers: Vec<(String, String)>,
    pub snapshots: Vec<SnapshotInfo>,
    pub files: Vec<(String, String, i64)>,
    /// (iteration, loss) series from the training log.
    pub loss_curve: Vec<(i64, f64)>,
}

impl VersionDesc {
    /// Render as a standalone HTML page — the paper's "HTML front end"
    /// for `dlv desc` results.
    pub fn render_html(&self) -> String {
        let esc = |s: &str| -> String {
            s.replace('&', "&amp;")
                .replace('<', "&lt;")
                .replace('>', "&gt;")
        };
        let mut h = String::new();
        h.push_str("<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
        h.push_str(&format!(
            "<title>dlv desc {}</title>",
            esc(&self.summary.key.to_string())
        ));
        h.push_str(
            "<style>body{font-family:sans-serif;margin:2em}table{border-collapse:collapse}\
             td,th{border:1px solid #ccc;padding:4px 8px;text-align:left}\
             h2{margin-top:1.2em}</style></head><body>",
        );
        h.push_str(&format!(
            "<h1>Model {}</h1>",
            esc(&self.summary.key.to_string())
        ));
        h.push_str(&format!(
            "<p><b>architecture</b> {} &middot; <b>parameters</b> {} &middot; \
             <b>accuracy</b> {}</p>",
            esc(&self.summary.architecture),
            self.summary.param_count,
            self.summary
                .accuracy
                .map(|a| format!("{a:.4}"))
                .unwrap_or_else(|| "n/a".into())
        ));
        h.push_str("<h2>Layers</h2><table><tr><th>name</th><th>definition</th></tr>");
        for (name, def) in &self.layers {
            h.push_str(&format!(
                "<tr><td>{}</td><td>{}</td></tr>",
                esc(name),
                esc(def)
            ));
        }
        h.push_str("</table><h2>Hyperparameters</h2><table>");
        for (k, v) in &self.hyperparams {
            h.push_str(&format!("<tr><td>{}</td><td>{}</td></tr>", esc(k), esc(v)));
        }
        h.push_str("</table><h2>Snapshots</h2><table><tr><th>#</th><th>iteration</th><th>location</th></tr>");
        for s in &self.snapshots {
            h.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td></tr>",
                s.index,
                s.iteration,
                esc(&s.location)
            ));
        }
        h.push_str("</table>");
        if !self.loss_curve.is_empty() {
            // Inline SVG sparkline of the loss curve.
            let max = self
                .loss_curve
                .iter()
                .map(|(_, l)| *l)
                .fold(f64::MIN, f64::max);
            let min = self
                .loss_curve
                .iter()
                .map(|(_, l)| *l)
                .fold(f64::MAX, f64::min);
            let (w, ht) = (400.0, 80.0);
            let n = self.loss_curve.len().max(2) as f64;
            let pts: Vec<String> = self
                .loss_curve
                .iter()
                .enumerate()
                .map(|(i, (_, l))| {
                    let x = i as f64 / (n - 1.0) * w;
                    let y = if max > min {
                        ht - (l - min) / (max - min) * ht
                    } else {
                        ht / 2.0
                    };
                    format!("{x:.1},{y:.1}")
                })
                .collect();
            h.push_str(&format!(
                "<h2>Training loss</h2><svg width=\"{w}\" height=\"{ht}\" \
                 viewBox=\"0 0 {w} {ht}\"><polyline fill=\"none\" stroke=\"#36c\" \
                 stroke-width=\"1.5\" points=\"{}\"/></svg>",
                pts.join(" ")
            ));
        }
        if !self.files.is_empty() {
            h.push_str("<h2>Files</h2><table><tr><th>path</th><th>bytes</th><th>sha256</th></tr>");
            for (p, hash, bytes) in &self.files {
                h.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td><code>{}</code></td></tr>",
                    esc(p),
                    bytes,
                    esc(&hash[..16.min(hash.len())])
                ));
            }
            h.push_str("</table>");
        }
        h.push_str("</body></html>");
        h
    }
}

#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    pub index: usize,
    pub iteration: i64,
    pub location: String,
}

/// One archived PAS store's identity within a repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveId(pub String);

/// Archive policy.
#[derive(Debug, Clone)]
pub struct ArchiveConfig {
    /// Snapshot recreation budget as a multiple of the SPT cost.
    pub alpha: f64,
    pub scheme: RetrievalScheme,
    pub delta_op: DeltaOp,
    pub level: Level,
    /// Optional lossy float scheme applied to **non-latest** snapshots
    /// before archival (§IV-B: "PAS lets experienced users select schemes
    /// rather than deleting snapshots due to resource constraints"). The
    /// latest snapshot of every version always stays lossless; earlier
    /// checkpoints are round-tripped through the scheme, trading precision
    /// for a smaller footprint.
    pub checkpoint_scheme: Option<mh_tensor::Scheme>,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        Self {
            alpha: 2.0,
            scheme: RetrievalScheme::Independent,
            delta_op: DeltaOp::Sub,
            level: Level::Fast,
            checkpoint_scheme: None,
        }
    }
}

/// A DLV repository rooted at a directory.
#[derive(Debug)]
pub struct Repository {
    root: PathBuf,
    catalog: Catalog,
}

/// Per-snapshot archival budgets (declared θ and achieved recreation cost),
/// persisted so `fsck` can re-verify them long after the storage graph that
/// produced the plan is gone. Split out so `archive` can create the table
/// lazily in repositories that predate it.
fn create_pas_budget_table(db: &mut mh_store::Database) -> Result<(), mh_store::StoreError> {
    db.create_table(
        "pas_budget",
        Schema::new(vec![
            Column::not_null("store", ColumnType::Text),
            Column::not_null("snapshot", ColumnType::Text),
            Column::not_null("scheme", ColumnType::Text),
            Column::not_null("budget", ColumnType::Real),
            Column::not_null("cost", ColumnType::Real),
        ]),
    )
}

fn now_epoch() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

impl Repository {
    /// `dlv init`: create a fresh repository.
    pub fn init(root: &Path) -> Result<Self, DlvError> {
        if root.join("catalog.mhs").exists() {
            return Err(DlvError::AlreadyExists(root.display().to_string()));
        }
        std::fs::create_dir_all(root.join("weights")).map_err(DlvError::Io)?;
        std::fs::create_dir_all(root.join("objects")).map_err(DlvError::Io)?;
        std::fs::create_dir_all(root.join("pas")).map_err(DlvError::Io)?;
        let catalog = Catalog::open(&root.join("catalog.mhs")).map_err(DlvError::Store)?;
        catalog
            .write(|db| {
                db.create_table(
                    "model_version",
                    Schema::new(vec![
                        Column::not_null("name", ColumnType::Text),
                        Column::not_null("vid", ColumnType::Int),
                        Column::not_null("created", ColumnType::Int),
                        Column::new("arch", ColumnType::Text),
                        Column::new("params", ColumnType::Int),
                        Column::new("accuracy", ColumnType::Real),
                        Column::new("comment", ColumnType::Text),
                    ]),
                )?;
                db.table_mut("model_version")?.create_index("name")?;
                db.create_table(
                    "node",
                    Schema::new(vec![
                        Column::not_null("mv", ColumnType::Int),
                        Column::not_null("node_id", ColumnType::Int),
                        Column::not_null("lname", ColumnType::Text),
                        Column::not_null("def", ColumnType::Text),
                    ]),
                )?;
                db.table_mut("node")?.create_index("mv")?;
                db.create_table(
                    "edge",
                    Schema::new(vec![
                        Column::not_null("mv", ColumnType::Int),
                        Column::not_null("from_id", ColumnType::Int),
                        Column::not_null("to_id", ColumnType::Int),
                    ]),
                )?;
                db.table_mut("edge")?.create_index("mv")?;
                db.create_table(
                    "parent",
                    Schema::new(vec![
                        Column::not_null("base", ColumnType::Text),
                        Column::not_null("derived", ColumnType::Text),
                        Column::new("commit_msg", ColumnType::Text),
                    ]),
                )?;
                db.create_table(
                    "hyper",
                    Schema::new(vec![
                        Column::not_null("mv", ColumnType::Int),
                        Column::not_null("key", ColumnType::Text),
                        Column::new("value", ColumnType::Text),
                    ]),
                )?;
                db.create_table(
                    "metric",
                    Schema::new(vec![
                        Column::not_null("mv", ColumnType::Int),
                        Column::not_null("iteration", ColumnType::Int),
                        Column::not_null("key", ColumnType::Text),
                        Column::new("value", ColumnType::Real),
                    ]),
                )?;
                db.table_mut("metric")?.create_index("mv")?;
                db.create_table(
                    "file",
                    Schema::new(vec![
                        Column::not_null("mv", ColumnType::Int),
                        Column::not_null("path", ColumnType::Text),
                        Column::not_null("hash", ColumnType::Text),
                        Column::not_null("bytes", ColumnType::Int),
                    ]),
                )?;
                db.create_table(
                    "snapshot",
                    Schema::new(vec![
                        Column::not_null("mv", ColumnType::Int),
                        Column::not_null("snap_idx", ColumnType::Int),
                        Column::not_null("iteration", ColumnType::Int),
                        Column::not_null("location", ColumnType::Text),
                    ]),
                )?;
                db.table_mut("snapshot")?.create_index("mv")?;
                db.create_table(
                    "pas_vertex",
                    Schema::new(vec![
                        Column::not_null("mv", ColumnType::Int),
                        Column::not_null("snap_idx", ColumnType::Int),
                        Column::not_null("layer", ColumnType::Text),
                        Column::not_null("store", ColumnType::Text),
                        Column::not_null("vertex", ColumnType::Int),
                    ]),
                )?;
                db.table_mut("pas_vertex")?.create_index("mv")?;
                create_pas_budget_table(db)?;
                Ok(())
            })
            .map_err(DlvError::Store)?;
        Ok(Self {
            root: root.to_path_buf(),
            catalog,
        })
    }

    /// Open an existing repository.
    pub fn open(root: &Path) -> Result<Self, DlvError> {
        if !root.join("catalog.mhs").exists() {
            return Err(DlvError::NotARepository(root.display().to_string()));
        }
        let catalog = Catalog::open(&root.join("catalog.mhs")).map_err(DlvError::Store)?;
        Ok(Self {
            root: root.to_path_buf(),
            catalog,
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Internal: the catalog row of a version by name (+ optional id);
    /// without an id the newest version under that name wins.
    // mh-audit: trusted(reads rows of the repository's own catalog, written by this crate under a fixed schema)
    fn find_version(&self, spec: &str) -> Result<(mh_store::RowId, VersionKey), DlvError> {
        let (name, id) = VersionKey::parse(spec);
        let rows = self.catalog.read(|db| {
            let t = db.table("model_version").expect("schema");
            t.select(&Predicate::Eq("name".into(), Value::Text(name.clone())))
        });
        let best = rows
            .into_iter()
            .filter(|r| id.is_none_or(|i| r.values[1].as_int() == Some(i)))
            .max_by_key(|r| r.values[1].as_int());
        match best {
            Some(r) => {
                let vid = r.values[1].as_int().expect("vid not null");
                Ok((r.id, VersionKey { name, id: vid }))
            }
            None => Err(DlvError::NoSuchVersion(spec.to_string())),
        }
    }

    /// `dlv add` + `dlv commit`: record a model version with its artifacts.
    pub fn commit(&self, req: &CommitRequest) -> Result<VersionKey, DlvError> {
        let mut sp = mh_obs::span("dlv.commit");
        if sp.is_recording() {
            sp.field("name", &req.name);
            sp.field("snapshots", req.snapshots.len());
        }
        if req.snapshots.is_empty() {
            return Err(DlvError::EmptyCommit);
        }
        let arch = req.network.architecture_string();
        let params = req.network.param_count().map_err(DlvError::Network)? as i64;
        for (_, w) in &req.snapshots {
            w.validate(&req.network).map_err(DlvError::Network)?;
        }
        // Resolve the parent before mutating anything.
        let parent_key = match &req.parent {
            Some(p) => Some(self.find_version(p)?.1),
            None => None,
        };
        // Assign the next vid under this name.
        let existing = self.catalog.read(|db| {
            let t = db.table("model_version").expect("schema");
            t.select(&Predicate::Eq("name".into(), Value::Text(req.name.clone())))
                .iter()
                .filter_map(|r| r.values[1].as_int())
                .max()
                .unwrap_or(0)
        });
        let vid = existing + 1;
        let key = VersionKey {
            name: req.name.clone(),
            id: vid,
        };

        // Stage weight blobs outside the catalog transaction.
        let mut snapshot_rows = Vec::new();
        for (sidx, (iter, w)) in req.snapshots.iter().enumerate() {
            let blob = weights_to_bytes(w, Level::Fast);
            sp.add_bytes_out(blob.len() as u64);
            let rel = format!("weights/{}_{}_s{}.mhw", sanitize_name(&req.name), vid, sidx);
            std::fs::write(self.root.join(&rel), &blob).map_err(DlvError::Io)?;
            snapshot_rows.push((sidx as i64, *iter as i64, format!("staged:{rel}")));
        }
        // Content-addressed associated files.
        let mut file_rows = Vec::new();
        for (path, content) in &req.files {
            let digest = hash::sha256_hex(content);
            let obj = self.root.join("objects").join(&digest);
            if !obj.exists() {
                std::fs::write(&obj, content).map_err(DlvError::Io)?;
            }
            file_rows.push((path.clone(), digest, content.len() as i64));
        }

        let network = req.network.clone();
        let hyper = req.hyperparams.clone();
        let log = req.log.clone();
        let acc = req.accuracy;
        let comment = req.comment.clone();
        let name = req.name.clone();
        let key2 = key.clone();
        self.catalog
            .write(move |db| {
                let mv = db.table_mut("model_version")?.insert(vec![
                    Value::Text(name.clone()),
                    Value::Int(vid),
                    Value::Int(now_epoch()),
                    Value::Text(arch.clone()),
                    Value::Int(params),
                    acc.map(|a| Value::Real(f64::from(a)))
                        .unwrap_or(Value::Null),
                    Value::Text(comment.clone()),
                ])?;
                for node in network.nodes() {
                    db.table_mut("node")?.insert(vec![
                        Value::Int(mv as i64),
                        Value::Int(node.id as i64),
                        Value::Text(node.name.clone()),
                        Value::Text(encode_layer(&node.kind)),
                    ])?;
                }
                for (f, t) in network.edges() {
                    db.table_mut("edge")?.insert(vec![
                        Value::Int(mv as i64),
                        Value::Int(f as i64),
                        Value::Int(t as i64),
                    ])?;
                }
                if let Some(p) = &parent_key {
                    db.table_mut("parent")?.insert(vec![
                        Value::Text(p.to_string()),
                        Value::Text(key2.to_string()),
                        Value::Text(comment.clone()),
                    ])?;
                }
                for (k, v) in &hyper {
                    db.table_mut("hyper")?.insert(vec![
                        Value::Int(mv as i64),
                        Value::Text(k.clone()),
                        Value::Text(v.clone()),
                    ])?;
                }
                for e in &log {
                    db.table_mut("metric")?.insert(vec![
                        Value::Int(mv as i64),
                        Value::Int(e.iteration as i64),
                        Value::Text("loss".into()),
                        Value::Real(f64::from(e.loss)),
                    ])?;
                    if let Some(a) = e.accuracy {
                        db.table_mut("metric")?.insert(vec![
                            Value::Int(mv as i64),
                            Value::Int(e.iteration as i64),
                            Value::Text("accuracy".into()),
                            Value::Real(f64::from(a)),
                        ])?;
                    }
                }
                for (path, digest, bytes) in &file_rows {
                    db.table_mut("file")?.insert(vec![
                        Value::Int(mv as i64),
                        Value::Text(path.clone()),
                        Value::Text(digest.clone()),
                        Value::Int(*bytes),
                    ])?;
                }
                for (sidx, iter, loc) in &snapshot_rows {
                    db.table_mut("snapshot")?.insert(vec![
                        Value::Int(mv as i64),
                        Value::Int(*sidx),
                        Value::Int(*iter),
                        Value::Text(loc.clone()),
                    ])?;
                }
                Ok(())
            })
            .map_err(DlvError::Store)?;
        Ok(key)
    }

    /// `dlv copy`: scaffold a new version from an existing one (same
    /// network, latest snapshot carried over as initialization).
    pub fn copy(&self, src: &str, new_name: &str, comment: &str) -> Result<VersionKey, DlvError> {
        let (_, src_key) = self.find_version(src)?;
        let network = self.get_network(src)?;
        let weights = self.get_weights(src, None)?;
        let mut req = CommitRequest::new(new_name, network);
        req.snapshots = vec![(0, weights)];
        req.parent = Some(src_key.to_string());
        req.comment = comment.to_string();
        self.commit(&req)
    }

    /// `dlv list`: all versions, newest first.
    // mh-audit: trusted(reads rows of the repository's own catalog, written by this crate under a fixed schema)
    pub fn list(&self) -> Vec<VersionSummary> {
        let mut out: Vec<VersionSummary> = self.catalog.read(|db| {
            let t = db.table("model_version").expect("schema");
            t.scan().map(|r| self.summary_from_row(db, &r)).collect()
        });
        out.sort_by(|a, b| b.created.cmp(&a.created).then(b.key.cmp(&a.key)));
        out
    }

    // mh-audit: trusted(decodes a catalog row with the fixed model_version schema this crate wrote)
    fn summary_from_row(&self, db: &mh_store::Database, r: &Row) -> VersionSummary {
        let mv = r.id as i64;
        let snaps = db
            .table("snapshot")
            .expect("schema")
            .select(&Predicate::Eq("mv".into(), Value::Int(mv)));
        let archived = snaps
            .iter()
            .any(|s| s.values[3].as_text().is_some_and(|l| l.starts_with("pas:")));
        VersionSummary {
            key: VersionKey {
                name: r.values[0].as_text().unwrap_or("").to_string(),
                id: r.values[1].as_int().unwrap_or(0),
            },
            created: r.values[2].as_int().unwrap_or(0),
            architecture: r.values[3].as_text().unwrap_or("").to_string(),
            param_count: r.values[4].as_int().unwrap_or(0),
            accuracy: r.values[5].as_real(),
            comment: r.values[6].as_text().unwrap_or("").to_string(),
            num_snapshots: snaps.len(),
            archived,
        }
    }

    /// `dlv desc`: full metadata of one version.
    // mh-audit: trusted(reads rows of the repository's own catalog, written by this crate under a fixed schema)
    pub fn desc(&self, spec: &str) -> Result<VersionDesc, DlvError> {
        let (row_id, _) = self.find_version(spec)?;
        let mv = row_id as i64;
        Ok(self.catalog.read(|db| {
            let r = db
                .table("model_version")
                .expect("schema")
                .get(row_id)
                .expect("row exists");
            let summary = self.summary_from_row(db, &r);
            let hyperparams = db
                .table("hyper")
                .expect("schema")
                .select(&Predicate::Eq("mv".into(), Value::Int(mv)))
                .into_iter()
                .filter_map(|r| {
                    Some((
                        r.values[1].as_text()?.to_string(),
                        r.values[2].as_text().unwrap_or("").to_string(),
                    ))
                })
                .collect();
            let mut layers: Vec<(i64, String, String)> = db
                .table("node")
                .expect("schema")
                .select(&Predicate::Eq("mv".into(), Value::Int(mv)))
                .into_iter()
                .filter_map(|r| {
                    Some((
                        r.values[1].as_int()?,
                        r.values[2].as_text()?.to_string(),
                        r.values[3].as_text()?.to_string(),
                    ))
                })
                .collect();
            layers.sort();
            let snapshots = db
                .table("snapshot")
                .expect("schema")
                .select(&Predicate::Eq("mv".into(), Value::Int(mv)))
                .into_iter()
                .map(|r| SnapshotInfo {
                    index: r.values[1].as_int().unwrap_or(0) as usize,
                    iteration: r.values[2].as_int().unwrap_or(0),
                    location: r.values[3].as_text().unwrap_or("").to_string(),
                })
                .collect();
            let files = db
                .table("file")
                .expect("schema")
                .select(&Predicate::Eq("mv".into(), Value::Int(mv)))
                .into_iter()
                .filter_map(|r| {
                    Some((
                        r.values[1].as_text()?.to_string(),
                        r.values[2].as_text()?.to_string(),
                        r.values[3].as_int()?,
                    ))
                })
                .collect();
            let mut loss_curve: Vec<(i64, f64)> = db
                .table("metric")
                .expect("schema")
                .select(
                    &Predicate::Eq("mv".into(), Value::Int(mv))
                        .and(Predicate::Eq("key".into(), "loss".into())),
                )
                .into_iter()
                .filter_map(|r| Some((r.values[1].as_int()?, r.values[3].as_real()?)))
                .collect();
            loss_curve.sort_by_key(|(i, _)| *i);
            VersionDesc {
                summary,
                hyperparams,
                layers: layers.into_iter().map(|(_, n, d)| (n, d)).collect(),
                snapshots,
                files,
                loss_curve,
            }
        }))
    }

    /// Reconstruct the network DAG of a version.
    // mh-audit: trusted(reads rows of the repository's own catalog, written by this crate under a fixed schema)
    pub fn get_network(&self, spec: &str) -> Result<Network, DlvError> {
        let (row_id, _) = self.find_version(spec)?;
        let mv = row_id as i64;
        let (nodes, edges) = self.catalog.read(|db| {
            let nodes: Vec<(i64, String, String)> = db
                .table("node")
                .expect("schema")
                .select(&Predicate::Eq("mv".into(), Value::Int(mv)))
                .into_iter()
                .filter_map(|r| {
                    Some((
                        r.values[1].as_int()?,
                        r.values[2].as_text()?.to_string(),
                        r.values[3].as_text()?.to_string(),
                    ))
                })
                .collect();
            let edges: Vec<(i64, i64)> = db
                .table("edge")
                .expect("schema")
                .select(&Predicate::Eq("mv".into(), Value::Int(mv)))
                .into_iter()
                .filter_map(|r| Some((r.values[1].as_int()?, r.values[2].as_int()?)))
                .collect();
            (nodes, edges)
        });
        let mut sorted = nodes;
        sorted.sort();
        let mut net = Network::new();
        let mut remap = BTreeMap::new();
        for (old_id, name, def) in &sorted {
            let kind = decode_layer(def).ok_or(DlvError::Corrupt("bad layer definition"))?;
            let id = net.add_layer(name, kind).map_err(DlvError::Network)?;
            remap.insert(*old_id, id);
        }
        for (f, t) in edges {
            let (&nf, &nt) = (
                remap.get(&f).ok_or(DlvError::Corrupt("dangling edge"))?,
                remap.get(&t).ok_or(DlvError::Corrupt("dangling edge"))?,
            );
            net.connect(nf, nt).map_err(DlvError::Network)?;
        }
        Ok(net)
    }

    /// Snapshot infos of a version (ordered by index).
    pub fn snapshots(&self, spec: &str) -> Result<Vec<SnapshotInfo>, DlvError> {
        Ok(self.desc(spec)?.snapshots)
    }

    /// Fetch the weights of a snapshot (`None` = latest), transparently
    /// recreating from PAS if archived.
    pub fn get_weights(&self, spec: &str, snap: Option<usize>) -> Result<Weights, DlvError> {
        let mut sp = mh_obs::span("dlv.checkout");
        if sp.is_recording() {
            sp.field("spec", spec);
        }
        let (row_id, _) = self.find_version(spec)?;
        let mv = row_id as i64;
        let infos = self.snapshots(spec)?;
        let info = match snap {
            Some(i) => infos
                .into_iter()
                .find(|s| s.index == i)
                .ok_or(DlvError::NoSuchSnapshot(i))?,
            None => infos
                .into_iter()
                .max_by_key(|s| s.index)
                .ok_or(DlvError::NoSuchSnapshot(0))?,
        };
        if let Some(rel) = info.location.strip_prefix("staged:") {
            let blob = std::fs::read(self.root.join(rel)).map_err(DlvError::Io)?;
            sp.add_bytes_in(blob.len() as u64);
            sp.field("source", "staged");
            return weights_from_bytes(&blob);
        }
        if let Some(store_name) = info.location.strip_prefix("pas:") {
            let store = SegmentStore::open(&self.root.join("pas").join(store_name))
                .map_err(DlvError::Pas)?;
            let rows = self.catalog.read(|db| {
                db.table("pas_vertex").expect("schema").select(
                    &Predicate::Eq("mv".into(), Value::Int(mv)).and(Predicate::Eq(
                        "snap_idx".into(),
                        Value::Int(info.index as i64),
                    )),
                )
            });
            let mut w = Weights::new();
            for r in rows {
                let layer = r.values[2].as_text().unwrap_or("").to_string();
                let vertex = r.values[4].as_int().unwrap_or(0) as usize;
                let m = store.recreate(vertex).map_err(DlvError::Pas)?;
                w.insert(&layer, m);
            }
            if w.is_empty() {
                return Err(DlvError::Corrupt("archived snapshot has no vertices"));
            }
            sp.field("source", "pas");
            return Ok(w);
        }
        Err(DlvError::Corrupt("unknown snapshot location"))
    }

    /// For archived snapshots: the PAS store directory and the layer →
    /// vertex mapping, enabling progressive (partial-precision) queries.
    pub fn pas_binding(
        &self,
        spec: &str,
        snap: Option<usize>,
    ) -> Result<(PathBuf, BTreeMap<String, mh_pas::VertexId>), DlvError> {
        let (row_id, _) = self.find_version(spec)?;
        let mv = row_id as i64;
        let infos = self.snapshots(spec)?;
        let info = match snap {
            Some(i) => infos
                .into_iter()
                .find(|s| s.index == i)
                .ok_or(DlvError::NoSuchSnapshot(i))?,
            None => infos
                .into_iter()
                .max_by_key(|s| s.index)
                .ok_or(DlvError::NoSuchSnapshot(0))?,
        };
        let Some(store_name) = info.location.strip_prefix("pas:") else {
            return Err(DlvError::Corrupt("snapshot is not archived"));
        };
        let rows = self.catalog.read(|db| {
            db.table("pas_vertex").expect("schema").select(
                &Predicate::Eq("mv".into(), Value::Int(mv)).and(Predicate::Eq(
                    "snap_idx".into(),
                    Value::Int(info.index as i64),
                )),
            )
        });
        let mapping: BTreeMap<String, mh_pas::VertexId> = rows
            .into_iter()
            .filter_map(|r| {
                Some((
                    r.values[2].as_text()?.to_string(),
                    r.values[4].as_int()? as mh_pas::VertexId,
                ))
            })
            .collect();
        if mapping.is_empty() {
            return Err(DlvError::Corrupt("archived snapshot has no vertices"));
        }
        Ok((self.root.join("pas").join(store_name), mapping))
    }

    /// `dlv eval`: run the test phase of a version over labelled data.
    pub fn eval(&self, spec: &str, data: &[(mh_tensor::Tensor3, usize)]) -> Result<f32, DlvError> {
        let net = self.get_network(spec)?;
        let w = self.get_weights(spec, None)?;
        accuracy(&net, &w, data).map_err(DlvError::Network)
    }

    /// Training-metric series of a version (`loss`, `accuracy`, `lr`) as
    /// `(iteration, value)` pairs, sorted by iteration.
    pub fn metrics(&self, spec: &str, key: &str) -> Result<Vec<(i64, f64)>, DlvError> {
        let (row_id, _) = self.find_version(spec)?;
        let mv = row_id as i64;
        let mut out: Vec<(i64, f64)> = self.catalog.read(|db| {
            db.table("metric")
                .expect("schema")
                .select(
                    &Predicate::Eq("mv".into(), Value::Int(mv))
                        .and(Predicate::Eq("key".into(), Value::Text(key.to_string()))),
                )
                .into_iter()
                .filter_map(|r| Some((r.values[1].as_int()?, r.values[3].as_real()?)))
                .collect()
        });
        out.sort_by_key(|(i, _)| *i);
        Ok(out)
    }

    /// Integrity check (fsck): verifies that every version's artifacts are
    /// present and consistent — staged blobs decode, archived snapshots
    /// recreate, content-addressed files match their digests, and lineage
    /// rows reference existing versions. Returns human-readable problem
    /// descriptions (empty = clean).
    pub fn fsck(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let versions = self.list();
        let keys: std::collections::BTreeSet<String> =
            versions.iter().map(|v| v.key.to_string()).collect();
        for v in &versions {
            let spec = v.key.to_string();
            // Network decodes and shape-checks.
            match self.get_network(&spec) {
                Ok(net) => {
                    if net.infer_shapes().is_err() {
                        problems.push(format!("{spec}: stored network fails shape inference"));
                    }
                }
                Err(e) => problems.push(format!("{spec}: network unreadable ({e})")),
            }
            // Every snapshot's weights must load.
            match self.snapshots(&spec) {
                Ok(snaps) => {
                    for s in snaps {
                        if let Err(e) = self.get_weights(&spec, Some(s.index)) {
                            problems.push(format!("{spec}: snapshot {} unreadable ({e})", s.index));
                        }
                    }
                }
                Err(e) => problems.push(format!("{spec}: snapshot list unreadable ({e})")),
            }
            // Associated files match their digests.
            if let Ok(desc) = self.desc(&spec) {
                for (path, digest, bytes) in &desc.files {
                    match std::fs::read(self.root.join("objects").join(digest)) {
                        Ok(content) => {
                            if crate::hash::sha256_hex(&content) != *digest {
                                problems.push(format!("{spec}: file '{path}' digest mismatch"));
                            } else if content.len() as i64 != *bytes {
                                problems.push(format!("{spec}: file '{path}' size mismatch"));
                            }
                        }
                        Err(_) => problems.push(format!("{spec}: file object '{path}' missing")),
                    }
                }
            }
        }
        // Lineage endpoints exist.
        for (base, derived) in self.lineage() {
            for end in [&base, &derived] {
                if !keys.contains(end) {
                    problems.push(format!("lineage references missing version '{end}'"));
                }
            }
        }
        problems
    }

    /// Compare two versions' predictions sample by sample (the paper's
    /// "comparing the results of different models on a dataset").
    pub fn compare(
        &self,
        spec_a: &str,
        spec_b: &str,
        data: &[(mh_tensor::Tensor3, usize)],
    ) -> Result<mh_dnn::ModelComparison, DlvError> {
        let (na, wa) = (self.get_network(spec_a)?, self.get_weights(spec_a, None)?);
        let (nb, wb) = (self.get_network(spec_b)?, self.get_weights(spec_b, None)?);
        mh_dnn::compare_models((&na, &wa), (&nb, &wb), data).map_err(DlvError::Network)
    }

    /// Lineage edges `(base, derived)` as display keys.
    pub fn lineage(&self) -> Vec<(String, String)> {
        self.catalog.read(|db| {
            db.table("parent")
                .expect("schema")
                .scan()
                .filter_map(|r| {
                    Some((
                        r.values[0].as_text()?.to_string(),
                        r.values[1].as_text()?.to_string(),
                    ))
                })
                .collect()
        })
    }

    /// `dlv archive`: move every staged snapshot into a new PAS segment
    /// store under the given policy. Returns the store id and the achieved
    /// (storage bytes, plan) summary.
    pub fn archive(&self, cfg: &ArchiveConfig) -> Result<ArchiveReport, DlvError> {
        let mut sp = mh_obs::span("dlv.archive");
        // Gather all staged snapshots grouped by version.
        let staged: Vec<(mh_store::RowId, VersionKey, Vec<SnapshotInfo>)> = {
            let summaries = self.list();
            let mut out = Vec::new();
            for s in summaries {
                let (row_id, key) = self.find_version(&s.key.to_string())?;
                let snaps: Vec<SnapshotInfo> = self
                    .snapshots(&s.key.to_string())?
                    .into_iter()
                    .filter(|i| i.location.starts_with("staged:"))
                    .collect();
                if !snaps.is_empty() {
                    out.push((row_id, key, snaps));
                }
            }
            out
        };
        if staged.is_empty() {
            return Err(DlvError::NothingToArchive);
        }

        let mut builder = GraphBuilder::new(CostModel {
            level: cfg.level,
            delta_op: cfg.delta_op,
            ..CostModel::default()
        });
        // Preload and decode every staged snapshot's weights on the worker
        // pool — blob decompression plus the lossy checkpoint round-trip
        // dominate archival wall-clock — then feed the graph builder
        // serially in the same order, so the result is independent of the
        // thread count.
        let jobs: Vec<(String, usize, bool)> = staged
            .iter()
            .flat_map(|(_, key, snaps)| {
                let vname = key.to_string();
                let latest_idx = snaps.iter().map(|s| s.index).max().unwrap_or(0);
                snaps
                    .iter()
                    .map(move |info| (vname.clone(), info.index, info.index == latest_idx))
            })
            .collect();
        if sp.is_recording() {
            sp.field("snapshots", jobs.len());
        }
        let load_sp = mh_obs::span("dlv.archive.load_staged");
        let loaded = mh_par::parallel_map(&jobs, |_, (vname, index, latest)| {
            let mut w = self.get_weights(vname, Some(*index))?;
            // Lossy checkpoint archival: round-trip non-latest snapshots
            // through the chosen float scheme.
            if let Some(scheme) = cfg.checkpoint_scheme {
                if !latest {
                    w = w
                        .layers()
                        .map(|(n, m)| {
                            (
                                n.clone(),
                                mh_tensor::decode(&mh_tensor::encode(m, scheme, false)),
                            )
                        })
                        .collect();
                }
            }
            Ok::<Weights, DlvError>(w)
        })
        .map_err(|e| DlvError::Pas(mh_pas::PasError::Parallel(e.to_string())))?;
        drop(load_sp);

        // Register snapshots and remember vertex assignments.
        let mut assignments: Vec<(i64, usize, BTreeMap<String, mh_pas::VertexId>)> = Vec::new();
        let mut loaded_iter = loaded.into_iter();
        for (row_id, key, snaps) in &staged {
            let vname = key.to_string();
            let mut indices = Vec::new();
            for info in snaps {
                let w = loaded_iter.next().expect("one preload per snapshot")?;
                let lv = builder.add_snapshot(&vname, info.index, &w);
                assignments.push((*row_id as i64, info.index, lv));
                indices.push(info.index);
            }
            builder.link_version_chain(&vname, &indices);
        }
        // Lineage links between latest snapshots.
        let latest: BTreeMap<String, usize> = staged
            .iter()
            .map(|(_, key, snaps)| {
                (
                    key.to_string(),
                    snaps.iter().map(|s| s.index).max().unwrap_or(0),
                )
            })
            .collect();
        for (base, derived) in self.lineage() {
            if let (Some(&bs), Some(&ds)) = (latest.get(&base), latest.get(&derived)) {
                builder.link_snapshots(&base, bs, &derived, ds);
            }
        }

        let solve_sp = mh_obs::span("dlv.archive.plan_solve");
        let (mut graph, matrices) = builder.finish();
        apply_alpha_budgets(&mut graph, cfg.alpha, cfg.scheme).map_err(DlvError::Pas2)?;
        // Run both heuristics and keep the better feasible plan.
        let mt = solver::pas_mt(&graph, cfg.scheme).map_err(DlvError::Pas2)?;
        let pt = solver::pas_pt(&graph, cfg.scheme).map_err(DlvError::Pas2)?;
        let pick = |a: mh_pas::StoragePlan, b: mh_pas::StoragePlan| {
            let (fa, fb) = (
                a.satisfies_budgets(&graph, cfg.scheme),
                b.satisfies_budgets(&graph, cfg.scheme),
            );
            match (fa, fb) {
                (true, false) => a,
                (false, true) => b,
                _ => {
                    if a.storage_cost(&graph) <= b.storage_cost(&graph) {
                        a
                    } else {
                        b
                    }
                }
            }
        };
        let plan = pick(mt, pt);
        drop(solve_sp);

        // Create the physical store.
        let store_name = format!("store{:04}", self.next_store_index()?);
        let store_dir = self.root.join("pas").join(&store_name);
        let create_sp = mh_obs::span("dlv.archive.store_create");
        let store = SegmentStore::create(
            &store_dir,
            &graph,
            &plan,
            &matrices,
            cfg.delta_op,
            cfg.level,
        )
        .map_err(DlvError::Pas)?;
        drop(create_sp);

        // Flip snapshot locations and record vertex assignments; delete the
        // staged blobs afterwards.
        let mut staged_files = Vec::new();
        for (row_id, _, snaps) in &staged {
            for info in snaps {
                if let Some(rel) = info.location.strip_prefix("staged:") {
                    staged_files.push((*row_id as i64, info.index as i64, rel.to_string()));
                }
            }
        }
        let store_name2 = store_name.clone();
        let assignments2 = assignments.clone();
        // Persist the declared θ budgets and achieved recreation costs so
        // static verification (`modelhub fsck`) can re-check them later.
        let scheme_name = match cfg.scheme {
            RetrievalScheme::Independent => "independent",
            RetrievalScheme::Parallel => "parallel",
            RetrievalScheme::Reusable => "reusable",
        };
        let budget_rows: Vec<(String, f64, f64)> = graph
            .snapshots
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    s.budget,
                    plan.snapshot_recreation_cost(&graph, &s.members, cfg.scheme),
                )
            })
            .collect();
        self.catalog
            .write(move |db| {
                if !db.table_names().iter().any(|t| t == "pas_budget") {
                    create_pas_budget_table(db)?;
                }
                for (snapshot, budget, cost) in &budget_rows {
                    db.table_mut("pas_budget")?.insert(vec![
                        Value::Text(store_name2.clone()),
                        Value::Text(snapshot.clone()),
                        Value::Text(scheme_name.to_string()),
                        Value::Real(*budget),
                        Value::Real(*cost),
                    ])?;
                }
                for (mv, sidx, lv) in &assignments2 {
                    for (layer, vertex) in lv {
                        db.table_mut("pas_vertex")?.insert(vec![
                            Value::Int(*mv),
                            Value::Int(*sidx as i64),
                            Value::Text(layer.clone()),
                            Value::Text(store_name2.clone()),
                            Value::Int(*vertex as i64),
                        ])?;
                    }
                }
                // Update snapshot locations.
                let rows: Vec<(mh_store::RowId, i64, i64)> = db
                    .table("snapshot")?
                    .scan()
                    .filter_map(|r| Some((r.id, r.values[0].as_int()?, r.values[1].as_int()?)))
                    .collect();
                for (rid, mv, sidx) in rows {
                    if staged_files.iter().any(|(m, s, _)| *m == mv && *s == sidx) {
                        db.table_mut("snapshot")?.update(
                            rid,
                            "location",
                            Value::Text(format!("pas:{store_name2}")),
                        )?;
                    }
                }
                Ok(())
            })
            .map_err(DlvError::Store)?;
        for (_, _, snaps) in &staged {
            for info in snaps {
                if let Some(rel) = info.location.strip_prefix("staged:") {
                    let _ = std::fs::remove_file(self.root.join(rel));
                }
            }
        }

        Ok(ArchiveReport {
            store: ArchiveId(store_name),
            bytes_on_disk: store.bytes_on_disk(),
            storage_cost: plan.storage_cost(&graph),
            satisfied: plan.satisfies_budgets(&graph, cfg.scheme),
            num_matrices: graph.num_vertices() - 1,
            num_snapshots: graph.snapshots.len(),
        })
    }

    fn next_store_index(&self) -> Result<usize, DlvError> {
        let dir = self.root.join("pas");
        let mut max = 0usize;
        for entry in std::fs::read_dir(&dir).map_err(DlvError::Io)? {
            let entry = entry.map_err(DlvError::Io)?;
            if let Some(n) = entry
                .file_name()
                .to_string_lossy()
                .strip_prefix("store")
                .and_then(|s| s.parse::<usize>().ok())
            {
                max = max.max(n + 1);
            }
        }
        Ok(max)
    }

    /// Delete a model version: removes its catalog rows and staged weight
    /// blobs. Refuses to delete archived versions (their matrices may be
    /// delta bases for other snapshots in the shared PAS store) and
    /// versions that are lineage parents of surviving versions.
    pub fn delete_version(&self, spec: &str) -> Result<(), DlvError> {
        let (row_id, key) = self.find_version(spec)?;
        let mv = row_id as i64;
        let snaps = self.snapshots(&key.to_string())?;
        if snaps.iter().any(|s| s.location.starts_with("pas:")) {
            return Err(DlvError::Archived(key.to_string()));
        }
        let key_str = key.to_string();
        let has_children = self.lineage().iter().any(|(base, _)| base == &key_str);
        if has_children {
            return Err(DlvError::HasDescendants(key_str));
        }
        // Remove staged blobs first (catalog rows reference them).
        for s in &snaps {
            if let Some(rel) = s.location.strip_prefix("staged:") {
                let _ = std::fs::remove_file(self.root.join(rel));
            }
        }
        self.catalog
            .write(move |db| {
                for table in [
                    "node",
                    "edge",
                    "hyper",
                    "metric",
                    "file",
                    "snapshot",
                    "pas_vertex",
                ] {
                    let ids: Vec<mh_store::RowId> = db
                        .table(table)?
                        .select(&Predicate::Eq("mv".into(), Value::Int(mv)))
                        .into_iter()
                        .map(|r| r.id)
                        .collect();
                    let t = db.table_mut(table)?;
                    for id in ids {
                        t.delete(id);
                    }
                }
                // Lineage rows where this version is the derived side.
                let ids: Vec<mh_store::RowId> = db
                    .table("parent")?
                    .select(&Predicate::Eq(
                        "derived".into(),
                        Value::Text(key_str.clone()),
                    ))
                    .into_iter()
                    .map(|r| r.id)
                    .collect();
                let t = db.table_mut("parent")?;
                for id in ids {
                    t.delete(id);
                }
                db.table_mut("model_version")?.delete(row_id);
                Ok(())
            })
            .map_err(DlvError::Store)
    }

    /// Read back an associated file by its manifest path.
    pub fn read_file(&self, spec: &str, path: &str) -> Result<Vec<u8>, DlvError> {
        let desc = self.desc(spec)?;
        let (_, digest, _) = desc
            .files
            .iter()
            .find(|(p, _, _)| p == path)
            .ok_or_else(|| DlvError::NoSuchFile(path.to_string()))?;
        std::fs::read(self.root.join("objects").join(digest)).map_err(DlvError::Io)
    }
}

/// Result of `dlv archive`.
#[derive(Debug, Clone)]
pub struct ArchiveReport {
    pub store: ArchiveId,
    pub bytes_on_disk: u64,
    pub storage_cost: f64,
    pub satisfied: bool,
    pub num_matrices: usize,
    pub num_snapshots: usize,
}

fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}
