//! Facade tests: the `ModelHub` type end to end, plus the SD generator's
//! statistical properties (adjacent snapshots close, retrained models far
//! — the premise the archival experiments rest on).

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use mh_dlv::CommitRequest;
use mh_dnn::{synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use mh_dql::QueryResult;
use modelhub_core::{generate_sd, ModelHub, SdConfig};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-core-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn facade_init_open_query_archive() {
    let dir = temp_dir("facade");
    let root = dir.join("repo");
    {
        let mut hub = ModelHub::init(&root).unwrap();
        let net = zoo::lenet_s(3);
        let data = synth_dataset(&SynthConfig {
            num_classes: 3,
            train_per_class: 8,
            test_per_class: 4,
            seed: 2,
            ..Default::default()
        });
        let trainer = Trainer::new(Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        });
        let r = trainer
            .train(&net, Weights::init(&net, 1).unwrap(), &data, 10)
            .unwrap();
        let mut req = CommitRequest::new("facade-model", net);
        req.snapshots = vec![(10, r.weights)];
        req.accuracy = Some(r.final_accuracy);
        hub.repo().commit(&req).unwrap();
        hub.register_dataset("d", data.clone());
        hub.register_config(
            "myconf",
            Hyperparams {
                base_lr: 0.02,
                ..Default::default()
            },
        );

        // DQL through the facade with the registered config.
        let out = hub
            .query(
                r#"evaluate m from "facade%" with config = "myconf"
                   keep top(1, m["loss"], 3)"#,
            )
            .unwrap();
        let QueryResult::Evaluated(rows) = out else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert!(rows[0].kept);

        // Archive + progressive through the facade.
        hub.archive(&Default::default()).unwrap();
        let (x, _) = &data.test[0];
        let p = hub.progressive_eval("facade-model", x, 1).unwrap();
        assert_eq!(p.prediction.len(), 1);
        assert!(p.read_fraction() <= 1.0);
    }
    // Re-open an existing instance.
    let hub = ModelHub::open(&root).unwrap();
    assert!(hub.repo().list().len() >= 2, "original + kept eval model");
    // Unknown model errors cleanly.
    assert!(hub
        .progressive_eval("no-such-model", &mh_tensor::Tensor3::zeros(1, 16, 16), 1)
        .is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sd_statistics_match_the_papers_premise() {
    let dir = temp_dir("sd-stats");
    let repo = mh_dlv::Repository::init(&dir).unwrap();
    let sd = generate_sd(
        &repo,
        &SdConfig {
            num_versions: 2,
            snapshots_per_version: 3,
            ..Default::default()
        },
    )
    .unwrap();

    // (a) Adjacent checkpoints of the same version are close.
    let v0 = sd.versions[0].to_string();
    let s0 = repo.get_weights(&v0, Some(0)).unwrap();
    let s1 = repo.get_weights(&v0, Some(1)).unwrap();
    let adjacent = s0.distance(&s1);

    // (b) Fine-tuned siblings share ancestry: closer than chance but
    // farther than adjacent checkpoints.
    let v1 = sd.versions[1].to_string();
    let sib = repo.get_weights(&v1, Some(0)).unwrap();
    let sibling = s0.distance(&sib);

    assert!(adjacent > 0.0);
    assert!(
        adjacent < sibling + 1e-9,
        "checkpoint distance {adjacent} should not exceed sibling distance {sibling}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn facade_hub_roundtrip() {
    let base = temp_dir("facade-hub");
    let hub_dir = base.join("hub");
    let a = ModelHub::init(&base.join("a")).unwrap();
    let net = zoo::lenet_s(2);
    let mut req = CommitRequest::new("shared", net.clone());
    req.snapshots = vec![(0, Weights::init(&net, 1).unwrap())];
    a.repo().commit(&req).unwrap();
    a.publish(&hub_dir, "team/models").unwrap();
    let hits = ModelHub::search(&hub_dir, "%shared%").unwrap();
    assert_eq!(hits.len(), 1);
    let b = ModelHub::pull(&hub_dir, "team/models", &base.join("b")).unwrap();
    assert_eq!(b.repo().list().len(), 1);
    std::fs::remove_dir_all(&base).ok();
}
