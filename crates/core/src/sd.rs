//! The synthetic repository generator — the paper's §V-A "automatic
//! modeler".
//!
//! SD simulates a modeler who takes a trained base model and enumerates
//! fine-tuned variants for a new prediction task: each model version is a
//! (possibly mutated) descendant of the base with warm-started weights and
//! a chain of checkpoint snapshots. RD variants scale SD along delta
//! closeness, group size and version count.

use crate::CoreError;
use mh_dlv::{CommitRequest, Repository, VersionKey};
use mh_dnn::{
    fine_tune_setup, synth_dataset, zoo, Dataset, Hyperparams, SynthConfig, Trainer, Weights,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for SD generation.
#[derive(Debug, Clone)]
pub struct SdConfig {
    /// Number of fine-tuned model versions to enumerate (the paper used 54).
    pub num_versions: usize,
    /// Checkpoint snapshots per version (the paper used 10).
    pub snapshots_per_version: usize,
    /// Model family: 0 = lenet_s, 1 = alexnet_s, 2 = vgg_s.
    pub family: usize,
    /// Classes in the base task and in the fine-tuning task.
    pub base_classes: usize,
    pub finetune_classes: usize,
    /// Training iterations between checkpoints.
    pub iters_per_snapshot: usize,
    pub seed: u64,
}

impl Default for SdConfig {
    fn default() -> Self {
        Self {
            num_versions: 6,
            snapshots_per_version: 4,
            family: 0,
            base_classes: 4,
            finetune_classes: 3,
            iters_per_snapshot: 4,
            seed: 1234,
        }
    }
}

/// The generated repository contents.
#[derive(Debug)]
pub struct SdRepo {
    pub base: VersionKey,
    pub versions: Vec<VersionKey>,
    pub dataset: Dataset,
}

fn family_net(family: usize, classes: usize) -> mh_dnn::Network {
    match family {
        0 => zoo::lenet_s(classes),
        1 => zoo::alexnet_s(classes),
        _ => zoo::vgg_s(classes),
    }
}

/// Generate the SD workload into a repository: one trained base model plus
/// `num_versions` fine-tuned descendants, each checkpointed
/// `snapshots_per_version` times.
pub fn generate_sd(repo: &Repository, cfg: &SdConfig) -> Result<SdRepo, CoreError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let base_data = synth_dataset(&SynthConfig {
        num_classes: cfg.base_classes,
        train_per_class: 10,
        test_per_class: 4,
        noise: 0.1,
        seed: cfg.seed,
        ..Default::default()
    });
    let ft_data = synth_dataset(&SynthConfig {
        num_classes: cfg.finetune_classes,
        train_per_class: 10,
        test_per_class: 4,
        noise: 0.1,
        seed: cfg.seed + 1,
        ..Default::default()
    });

    // Train the base model (the "trained VGG" being fine-tuned).
    let base_net = family_net(cfg.family, cfg.base_classes);
    let trainer = Trainer {
        hp: Hyperparams {
            base_lr: 0.08,
            ..Default::default()
        },
        snapshot_every: cfg.iters_per_snapshot,
    };
    let init = Weights::init(&base_net, cfg.seed).map_err(CoreError::Network)?;
    let iters = cfg.iters_per_snapshot * cfg.snapshots_per_version;
    let result = trainer
        .train(&base_net, init, &base_data, iters)
        .map_err(CoreError::Network)?;
    let mut req = CommitRequest::new("sd-base", base_net.clone());
    req.snapshots = result
        .snapshots
        .iter()
        .map(|(i, w)| (*i, w.clone()))
        .collect();
    req.log = result.log.clone();
    req.accuracy = Some(result.final_accuracy);
    req.comment = "SD base model".into();
    let base_key = repo.commit(&req).map_err(CoreError::Dlv)?;

    // Enumerate fine-tuned variants: hyperparameter alternations mimicking
    // practice (varied lr, momentum, frozen feature layers).
    let mut versions = Vec::new();
    for v in 0..cfg.num_versions {
        let (ft_net, ft_init) = fine_tune_setup(
            &base_net,
            &result.weights,
            cfg.finetune_classes,
            cfg.seed + 100 + v as u64,
        )
        .map_err(CoreError::Network)?;
        let mut hp = Hyperparams {
            base_lr: [0.05f32, 0.02, 0.01][v % 3],
            momentum: if v % 2 == 0 { 0.9 } else { 0.8 },
            ..Default::default()
        };
        if rng.gen_bool(0.5) {
            // Freeze the first conv layer (classic fine-tuning practice).
            hp.layer_lr.insert("conv1".into(), 0.0);
        }
        let trainer = Trainer {
            hp: hp.clone(),
            snapshot_every: cfg.iters_per_snapshot,
        };
        let r = trainer
            .train(&ft_net, ft_init, &ft_data, iters)
            .map_err(CoreError::Network)?;
        let name = format!("sd-ft{v:02}");
        let mut req = CommitRequest::new(&name, ft_net.clone());
        req.snapshots = r.snapshots.iter().map(|(i, w)| (*i, w.clone())).collect();
        req.log = r.log.clone();
        req.accuracy = Some(r.final_accuracy);
        req.parent = Some(base_key.to_string());
        req.hyperparams
            .insert("base_lr".into(), hp.base_lr.to_string());
        req.hyperparams
            .insert("momentum".into(), hp.momentum.to_string());
        req.comment = format!("SD fine-tuned variant {v}");
        versions.push(repo.commit(&req).map_err(CoreError::Dlv)?);
    }
    Ok(SdRepo {
        base: base_key,
        versions,
        dataset: ft_data,
    })
}
