//! # modelhub-core
//!
//! The unified ModelHub system (§III of the paper): one facade wiring the
//! DLV versioning system, the PAS archival store, the DQL language, the
//! DNN substrate and the hosted hub together, plus the SD synthetic
//! workload generator used throughout the evaluation.
//!
//! ```no_run
//! use modelhub_core::ModelHub;
//! let hub = ModelHub::init(std::path::Path::new("/tmp/my-models")).unwrap();
//! // hub.repo() gives the DLV repository; hub.query("...") runs DQL.
//! ```

pub mod sd;

use mh_dlv::{ArchiveConfig, ArchiveReport, DlvError, Hub, Repository, SearchHit};
use mh_dnn::{Dataset, Hyperparams, NetworkError};
use mh_dql::{DqlError, Executor, QueryResult};
use mh_pas::{ModelBinding, PasError, ProgressiveEvaluator, ProgressiveResult, SegmentStore};
use mh_tensor::Tensor3;
use std::collections::BTreeMap;
use std::path::Path;

pub use sd::{generate_sd, SdConfig, SdRepo};

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum CoreError {
    Dlv(DlvError),
    Dql(DqlError),
    Pas(PasError),
    Network(NetworkError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Dlv(e) => write!(f, "{e}"),
            Self::Dql(e) => write!(f, "{e}"),
            Self::Pas(e) => write!(f, "{e}"),
            Self::Network(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// The ModelHub system: a local DLV repository plus DQL execution state.
pub struct ModelHub {
    repo: Repository,
    datasets: BTreeMap<String, Dataset>,
    configs: BTreeMap<String, Hyperparams>,
}

impl ModelHub {
    /// Create a fresh ModelHub instance (a `dlv init` under the hood).
    pub fn init(root: &Path) -> Result<Self, CoreError> {
        Ok(Self {
            repo: Repository::init(root).map_err(CoreError::Dlv)?,
            datasets: BTreeMap::new(),
            configs: BTreeMap::new(),
        })
    }

    /// Open an existing instance.
    pub fn open(root: &Path) -> Result<Self, CoreError> {
        Ok(Self {
            repo: Repository::open(root).map_err(CoreError::Dlv)?,
            datasets: BTreeMap::new(),
            configs: BTreeMap::new(),
        })
    }

    /// The underlying DLV repository.
    pub fn repo(&self) -> &Repository {
        &self.repo
    }

    /// Register a dataset for DQL `evaluate` queries.
    pub fn register_dataset(&mut self, name: &str, data: Dataset) {
        self.datasets.insert(name.to_string(), data);
    }

    /// Register a named base configuration for `with config = "..."`.
    pub fn register_config(&mut self, name: &str, hp: Hyperparams) {
        self.configs.insert(name.to_string(), hp);
    }

    /// Run a DQL query (`dlv query`).
    pub fn query(&self, dql: &str) -> Result<QueryResult, CoreError> {
        let mut exec = Executor::new(&self.repo);
        for (name, d) in &self.datasets {
            exec.register_dataset(name, d.clone());
        }
        for (name, hp) in &self.configs {
            exec.register_config(name, hp.clone());
        }
        exec.run(dql).map_err(CoreError::Dql)
    }

    /// `dlv archive`: move staged snapshots into a PAS store.
    pub fn archive(&self, cfg: &ArchiveConfig) -> Result<ArchiveReport, CoreError> {
        self.repo.archive(cfg).map_err(CoreError::Dlv)
    }

    /// Progressive evaluation of an archived model on one input: fetch
    /// high-order byte planes first, refine only if the prediction is not
    /// determined (§IV-D).
    pub fn progressive_eval(
        &self,
        spec: &str,
        input: &Tensor3,
        top_k: usize,
    ) -> Result<ProgressiveResult, CoreError> {
        let (store_dir, mapping) = self.repo.pas_binding(spec, None).map_err(CoreError::Dlv)?;
        let store = SegmentStore::open(&store_dir).map_err(CoreError::Pas)?;
        let net = self.repo.get_network(spec).map_err(CoreError::Dlv)?;
        let binding = ModelBinding::new(net, mapping);
        ProgressiveEvaluator::new(&store, &binding)
            .eval(input, top_k)
            .map_err(CoreError::Pas)
    }

    /// Publish this repository to a hub directory.
    pub fn publish(&self, hub_root: &Path, name: &str) -> Result<(), CoreError> {
        Hub::open(hub_root)
            .and_then(|h| h.publish(&self.repo, name))
            .map_err(CoreError::Dlv)
    }

    /// Search a hub.
    pub fn search(hub_root: &Path, pattern: &str) -> Result<Vec<SearchHit>, CoreError> {
        Hub::open(hub_root)
            .and_then(|h| h.search(pattern))
            .map_err(CoreError::Dlv)
    }

    /// Pull a published repository from a hub.
    pub fn pull(hub_root: &Path, name: &str, dest: &Path) -> Result<Self, CoreError> {
        let repo = Hub::open(hub_root)
            .and_then(|h| h.pull(name, dest))
            .map_err(CoreError::Dlv)?;
        Ok(Self {
            repo,
            datasets: BTreeMap::new(),
            configs: BTreeMap::new(),
        })
    }
}
