//! Parser robustness: arbitrary input never panics, and well-formed
//! queries round-trip through structural generation.

use mh_dql::{parse, Selector};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_never_panics_on_arbitrary_strings(input in ".{0,200}") {
        let _ = parse(&input);
    }

    #[test]
    fn parse_never_panics_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("select".to_string()), Just("slice".to_string()),
                Just("construct".to_string()), Just("evaluate".to_string()),
                Just("from".to_string()), Just("where".to_string()),
                Just("mutate".to_string()), Just("vary".to_string()),
                Just("keep".to_string()), Just("and".to_string()),
                Just("like".to_string()), Just("has".to_string()),
                Just("m1".to_string()), Just("top".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just("[".to_string()), Just("]".to_string()),
                Just("=".to_string()), Just(">".to_string()),
                Just("\"x%\"".to_string()), Just("0.5".to_string()),
                Just(".".to_string()), Just(",".to_string()),
            ],
            0..24
        )
    ) {
        let _ = parse(&words.join(" "));
    }

    #[test]
    fn generated_select_queries_parse(
        name in "[a-z][a-z0-9-]{0,8}",
        threshold in 0.0f64..1.0,
        sel in "[a-z][a-z0-9]{0,4}",
    ) {
        let q = format!(
            r#"select m1 where m1.name like "{name}%" and m1.accuracy > {threshold} and m1["{sel}*"].next has POOL("MAX")"#
        );
        parse(&q).expect("generated query must parse");
    }

    #[test]
    fn selector_compile_never_panics(pattern in ".{0,40}") {
        if let Ok(sel) = Selector::compile(&pattern) {
            // Matching arbitrary names must also be panic-free and
            // backtracking must terminate.
            let _ = sel.is_match("conv1_2");
            let _ = sel.captures("pool");
        }
    }

    #[test]
    fn selector_literal_patterns_match_exactly(name in "[a-z0-9_]{0,12}") {
        let sel = Selector::compile(&name).unwrap();
        let extended = format!("{name}x");
        prop_assert!(sel.is_match(&name));
        prop_assert!(!sel.is_match(&extended));
    }

    #[test]
    fn star_matches_any_extension(prefix in "[a-z]{1,5}", rest in "[a-z0-9_]{0,8}") {
        let sel = Selector::compile(&format!("{prefix}*")).unwrap();
        let caps = sel.captures(&format!("{prefix}{rest}")).expect("must match");
        prop_assert_eq!(caps, vec![rest]);
    }
}

// ---- optimizer equivalence -------------------------------------------

use mh_dql::ast::{CmpOp, Literal, Path, PathStep, Pred};
use mh_dql::optimize;

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        Just(Pred::True),
        (0u8..3, -2.0f64..2.0).prop_map(|(attr, v)| {
            let name = ["accuracy", "params", "id"][attr as usize];
            Pred::Cmp(
                Path {
                    root: "m".into(),
                    steps: vec![PathStep::Attr(name.into())],
                },
                CmpOp::Gt,
                Literal::Num(v),
            )
        }),
        "[a-c%]{0,4}".prop_map(|pat| Pred::Like(
            Path {
                root: "m".into(),
                steps: vec![PathStep::Attr("name".into())]
            },
            pat,
        )),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Pred::Not(Box::new(a))),
        ]
    })
}

/// Pure evaluation over a fake metadata row (no repository needed).
fn eval_pure(p: &Pred, accuracy: f64, params: f64, id: f64, name: &str) -> bool {
    match p {
        Pred::True => true,
        Pred::And(a, b) => {
            eval_pure(a, accuracy, params, id, name) && eval_pure(b, accuracy, params, id, name)
        }
        Pred::Or(a, b) => {
            eval_pure(a, accuracy, params, id, name) || eval_pure(b, accuracy, params, id, name)
        }
        Pred::Not(a) => !eval_pure(a, accuracy, params, id, name),
        Pred::Cmp(path, CmpOp::Gt, Literal::Num(v)) => {
            let x = match path.steps.first() {
                Some(PathStep::Attr(a)) if a == "accuracy" => accuracy,
                Some(PathStep::Attr(a)) if a == "params" => params,
                _ => id,
            };
            x > *v
        }
        Pred::Like(_, pat) => mh_store::like_match(pat, name),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimizer_preserves_semantics(
        p in arb_pred(),
        accuracy in -1.0f64..1.0,
        params in -1.0f64..1.0,
        id in -1.0f64..1.0,
        name in "[a-c]{0,4}",
    ) {
        let o = optimize(&p);
        prop_assert_eq!(
            eval_pure(&p, accuracy, params, id, &name),
            eval_pure(&o, accuracy, params, id, &name),
            "optimizer changed semantics for {:?} -> {:?}", p, o
        );
    }
}
