//! End-to-end DQL tests: build a small repository of trained models, then
//! run the paper's four query archetypes against it.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use mh_dlv::{CommitRequest, Repository};
use mh_dnn::{synth_dataset, zoo, Hyperparams, SynthConfig, Trainer, Weights};
use mh_dql::{Executor, QueryResult};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-dql-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn dataset() -> mh_dnn::Dataset {
    synth_dataset(&SynthConfig {
        num_classes: 3,
        train_per_class: 8,
        test_per_class: 4,
        noise: 0.05,
        seed: 21,
        ..Default::default()
    })
}

/// A repo with a lenet family (trained) and an alexnet-style model.
fn fixture(tag: &str) -> (Repository, PathBuf) {
    let dir = temp_dir(tag);
    let repo = Repository::init(&dir).unwrap();
    let data = dataset();
    let trainer = Trainer::new(Hyperparams {
        base_lr: 0.08,
        ..Default::default()
    });

    for (name, seed) in [("lenet-origin", 1u64), ("lenet-avgv1", 2)] {
        let net = zoo::lenet_s(3);
        let init = Weights::init(&net, seed).unwrap();
        let result = trainer.train(&net, init, &data, 8).unwrap();
        let mut req = CommitRequest::new(name, net);
        req.snapshots = vec![(8, result.weights)];
        req.accuracy = Some(result.final_accuracy);
        req.comment = format!("{name} baseline");
        repo.commit(&req).unwrap();
    }
    {
        let net = zoo::alexnet_s(3);
        let init = Weights::init(&net, 5).unwrap();
        let result = trainer.train(&net, init, &data, 4).unwrap();
        let mut req = CommitRequest::new("alexnet-v1", net);
        req.snapshots = vec![(4, result.weights)];
        req.accuracy = Some(result.final_accuracy);
        repo.commit(&req).unwrap();
    }
    (repo, dir)
}

#[test]
fn select_by_name_and_structure() {
    let (repo, dir) = fixture("select");
    let exec = Executor::new(&repo);

    // Name pattern only.
    let QueryResult::Versions(v) = exec
        .run(r#"select m1 where m1.name like "lenet%""#)
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(v.len(), 2);

    // Structural condition: lenet_s has conv layers followed by relu, and
    // pools downstream: conv1.next is relu1, not a POOL.
    let QueryResult::Versions(v) = exec
        .run(r#"select m1 where m1["conv?"].next has POOL("MAX")"#)
        .unwrap()
    else {
        panic!()
    };
    assert!(v.is_empty(), "conv is followed by relu, not pool: {v:?}");

    // relu1.next IS a max pool in both scaled families (lenet_s and
    // alexnet_s), so the structural filter alone matches all three.
    let QueryResult::Versions(v) = exec
        .run(r#"select m1 where m1["relu[1,2]"].next has POOL("MAX")"#)
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(v.len(), 3, "relu->maxpool appears in every committed model");

    // Mixing the structural condition with a name predicate narrows it —
    // the paper's Query 1 shape.
    let QueryResult::Versions(v) = exec
        .run(r#"select m1 where m1.name like "lenet%" and m1["relu[1,2]"].next has POOL("MAX")"#)
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(v.len(), 2, "both lenets have relu->maxpool");

    // Numeric predicate over metadata.
    let QueryResult::Versions(v) = exec
        .run(r#"select m1 where m1.params > 1 and m1.accuracy >= 0"#)
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(v.len(), 3);

    // Or / not combinations.
    let QueryResult::Versions(v) = exec
        .run(r#"select m1 where m1.name like "alexnet%" or m1.name like "lenet-origin%""#)
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(v.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slice_extracts_subnetwork_with_weights() {
    let (repo, dir) = fixture("slice");
    let exec = Executor::new(&repo);
    let QueryResult::Derived(d) = exec
        .run(
            r#"slice m2 from m1 where m1.name like "lenet-origin%"
               mutate m2.input = m1["conv1"] and m2.output = m1["ip1"]"#,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(d.len(), 1);
    let sub = &d[0].network;
    let names: Vec<&str> = sub.nodes().map(|n| n.name.as_str()).collect();
    assert!(names.contains(&"conv1") && names.contains(&"ip1"));
    assert!(!names.contains(&"data") && !names.contains(&"ip2"));
    // Warm-start weights for surviving parametric layers came along.
    let init = d[0].init.as_ref().unwrap();
    assert!(init.get("conv1").is_some() && init.get("ip1").is_some());
    assert!(init.get("ip2").is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn construct_inserts_templated_layers() {
    let (repo, dir) = fixture("construct");
    let exec = Executor::new(&repo);
    // Insert a tanh after every pool (captures number the new layers).
    let QueryResult::Derived(d) = exec
        .run(
            r#"construct m2 from m1 where m1.name like "lenet%"
               mutate m1["pool(*)"].insert = TANH("posttanh$1")"#,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(d.len(), 2);
    for dm in &d {
        let names: Vec<&str> = dm.network.nodes().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"posttanh1"), "{names:?}");
        assert!(names.contains(&"posttanh2"), "{names:?}");
        // Inserted after pool1: pool1 -> posttanh1 -> conv2.
        let pool1 = dm.network.node_by_name("pool1").unwrap().id;
        let next = dm.network.next(pool1);
        assert_eq!(next.len(), 1);
        assert_eq!(dm.network.node(next[0]).unwrap().name, "posttanh1");
        dm.network.infer_shapes().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn construct_delete_layers() {
    let (repo, dir) = fixture("delete");
    let exec = Executor::new(&repo);
    let QueryResult::Derived(d) = exec
        .run(
            r#"construct m2 from m1 where m1.name like "lenet-origin%"
               mutate m1["relu3"].delete"#,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(d.len(), 1);
    assert!(d[0].network.node_by_name("relu3").is_err());
    // ip1 now feeds ip2 directly.
    let ip1 = d[0].network.node_by_name("ip1").unwrap().id;
    let next = d[0].network.next(ip1);
    assert_eq!(d[0].network.node(next[0]).unwrap().name, "ip2");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_grid_search_and_keep_top() {
    let (repo, dir) = fixture("evaluate");
    let mut exec = Executor::new(&repo);
    exec.register_dataset("synth3", dataset());
    let before = repo.list().len();

    let QueryResult::Evaluated(rows) = exec
        .run(
            r#"evaluate m from "lenet-origin%"
               vary config.base_lr in [0.1, 0.01]
               keep top(1, m["loss"], 5)"#,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(rows.len(), 2, "2 lr values × 1 model");
    let kept: Vec<_> = rows.iter().filter(|r| r.kept).collect();
    assert_eq!(kept.len(), 1);
    // The kept model was committed with lineage back to the source.
    let committed = kept[0].committed.as_ref().unwrap();
    assert_eq!(repo.list().len(), before + 1);
    assert!(repo
        .lineage()
        .iter()
        .any(|(base, derived)| base == "lenet-origin:1" && derived == &committed.to_string()));
    // Kept rows sort first and have the lowest loss.
    assert!(rows[0].kept);
    assert!(rows[0].loss <= rows[1].loss);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_nested_construct_with_layer_lr_auto() {
    let (repo, dir) = fixture("nested");
    let mut exec = Executor::new(&repo);
    exec.register_dataset("synth3", dataset());
    exec.auto_lr_grid = vec![1.0, 0.0]; // second config freezes matched layers

    let QueryResult::Evaluated(rows) = exec
        .run(
            r#"evaluate m from (construct m2 from m1 where m1.name like "lenet-origin%"
                                mutate m1["pool2"].insert = TANH("t1"))
               vary config.net["conv*"].lr auto
               keep top(2, m["loss"], 4)"#,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(rows.len(), 2, "one derived model × 2 auto lr settings");
    assert!(rows.iter().all(|r| r.kept));
    assert!(rows.iter().all(|r| r.config.contains("lr[conv*]")));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_threshold_keep_and_input_data() {
    let (repo, dir) = fixture("threshold");
    let mut exec = Executor::new(&repo);
    exec.register_dataset("easy", dataset());
    exec.register_dataset(
        "noisy",
        synth_dataset(&SynthConfig {
            num_classes: 3,
            train_per_class: 8,
            test_per_class: 4,
            noise: 0.6,
            seed: 77,
            ..Default::default()
        }),
    );
    let QueryResult::Evaluated(rows) = exec
        .run(
            r#"evaluate m from "alexnet%"
               vary config.input_data in ["easy", "noisy"]
               keep m["loss"] < 100.0, 3"#,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().any(|r| r.config.contains("data=easy")));
    assert!(rows.iter().any(|r| r.config.contains("data=noisy")));
    assert!(
        rows.iter().all(|r| r.kept),
        "threshold 100 keeps everything"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_queries_fail_cleanly() {
    let (repo, dir) = fixture("bad");
    let exec = Executor::new(&repo);
    assert!(exec.run("select m1 where m2.name like 'x'").is_err());
    assert!(exec.run("select m1 where m1.nonsense > 1").is_err());
    assert!(exec.run("not a query at all").is_err());
    // Evaluate without a dataset registered.
    assert!(exec
        .run(r#"evaluate m from "lenet%" keep top(1, m["loss"], 2)"#)
        .is_err());
    std::fs::remove_dir_all(&dir).ok();
}
