//! Lexer for DQL.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (lowercased); DQL keywords are case-insensitive.
    Keyword(Kw),
    /// Identifier (model aliases, attribute names, template names).
    Ident(String),
    /// Quoted string literal (single or double quotes).
    Str(String),
    Number(f64),
    // Punctuation / operators.
    Dot,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Select,
    Slice,
    Construct,
    Evaluate,
    From,
    Where,
    Mutate,
    With,
    Vary,
    Keep,
    And,
    Or,
    Not,
    Like,
    Has,
    In,
    Auto,
    Top,
    Insert,
    Delete,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s.to_ascii_lowercase().as_str() {
        "select" => Kw::Select,
        "slice" => Kw::Slice,
        "construct" => Kw::Construct,
        "evaluate" => Kw::Evaluate,
        "from" => Kw::From,
        "where" => Kw::Where,
        "mutate" => Kw::Mutate,
        "with" => Kw::With,
        "vary" => Kw::Vary,
        "keep" => Kw::Keep,
        "and" => Kw::And,
        "or" => Kw::Or,
        "not" => Kw::Not,
        "like" => Kw::Like,
        "has" => Kw::Has,
        "in" => Kw::In,
        "auto" => Kw::Auto,
        "top" => Kw::Top,
        "insert" => Kw::Insert,
        "delete" => Kw::Delete,
        _ => return None,
    })
}

/// A half-open source range `[start, end)` in *character* offsets into the
/// query string (the lexer operates on `char`s, so multi-byte characters
/// count as one position).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq)]
pub enum LexError {
    UnterminatedString(usize),
    BadNumber(usize),
    UnexpectedChar(char, usize),
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnterminatedString(p) => write!(f, "unterminated string at byte {p}"),
            Self::BadNumber(p) => write!(f, "malformed number at byte {p}"),
            Self::UnexpectedChar(c, p) => write!(f, "unexpected character '{c}' at byte {p}"),
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenize a DQL query string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    Ok(lex_spanned(input)?.into_iter().map(|(t, _)| t).collect())
}

/// Tokenize, keeping the source span of every token (for diagnostics).
pub fn lex_spanned(input: &str) -> Result<Vec<(Token, Span)>, LexError> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
                continue;
            }
            '.' => {
                i += 1;
                out.push((Token::Dot, Span::new(start, i)));
            }
            ',' => {
                i += 1;
                out.push((Token::Comma, Span::new(start, i)));
            }
            '(' => {
                i += 1;
                out.push((Token::LParen, Span::new(start, i)));
            }
            ')' => {
                i += 1;
                out.push((Token::RParen, Span::new(start, i)));
            }
            '[' => {
                i += 1;
                out.push((Token::LBracket, Span::new(start, i)));
            }
            ']' => {
                i += 1;
                out.push((Token::RBracket, Span::new(start, i)));
            }
            '=' => {
                i += 1;
                if chars.get(i) == Some(&'=') {
                    i += 1; // accept '==' as '='
                }
                out.push((Token::Eq, Span::new(start, i)));
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                i += 2;
                out.push((Token::Ne, Span::new(start, i)));
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    out.push((Token::Le, Span::new(start, i)));
                } else if chars.get(i + 1) == Some(&'>') {
                    i += 2;
                    out.push((Token::Ne, Span::new(start, i)));
                } else {
                    i += 1;
                    out.push((Token::Lt, Span::new(start, i)));
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    out.push((Token::Ge, Span::new(start, i)));
                } else {
                    i += 1;
                    out.push((Token::Gt, Span::new(start, i)));
                }
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(LexError::UnterminatedString(start)),
                        Some(&ch) if ch == quote => {
                            i += 1;
                            break;
                        }
                        Some(&'\\') if chars.get(i + 1).is_some() => {
                            s.push(chars[i + 1]);
                            i += 2;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push((Token::Str(s), Span::new(start, i)));
            }
            '0'..='9' => {
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && i > start
                            && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
                {
                    i += 1;
                }
                // A trailing '.' belongs to attribute access, not the number.
                let mut end = i;
                if end > start && chars[end - 1] == '.' {
                    end -= 1;
                    i = end;
                }
                let text: String = chars[start..end].iter().collect();
                let n: f64 = text.parse().map_err(|_| LexError::BadNumber(start))?;
                out.push((Token::Number(n), Span::new(start, end)));
            }
            c if c.is_alphabetic() || c == '_' => {
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '-')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let tok = match keyword(&text) {
                    Some(kw) => Token::Keyword(kw),
                    None => Token::Ident(text),
                };
                out.push((tok, Span::new(start, i)));
            }
            other => return Err(LexError::UnexpectedChar(other, i)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_query1() {
        let toks = lex(r#"select m1 where m1.name like "alexnet_%" and m1["conv[1,3,5]"].next has POOL("MAX")"#)
            .unwrap();
        assert_eq!(toks[0], Token::Keyword(Kw::Select));
        assert_eq!(toks[1], Token::Ident("m1".into()));
        assert!(toks.contains(&Token::Str("alexnet_%".into())));
        assert!(toks.contains(&Token::Str("conv[1,3,5]".into())));
        assert!(toks.contains(&Token::Keyword(Kw::Has)));
        assert!(toks.contains(&Token::Str("MAX".into())));
    }

    #[test]
    fn lex_numbers_and_ops() {
        let toks = lex("x >= 0.5 and y != 3 and z in [0.1, 0.01, 1e-3]").unwrap();
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Number(0.5)));
        assert!(toks.contains(&Token::Number(1e-3)));
    }

    #[test]
    fn number_followed_by_dot_attribute() {
        // "top(5, m..." style: number then punctuation.
        let toks = lex("top(5, m1.loss)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Kw::Top),
                Token::LParen,
                Token::Number(5.0),
                Token::Comma,
                Token::Ident("m1".into()),
                Token::Dot,
                Token::Ident("loss".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(matches!(
            lex("\"oops"),
            Err(LexError::UnterminatedString(_))
        ));
        assert!(matches!(
            lex("a # b"),
            Err(LexError::UnexpectedChar('#', _))
        ));
    }

    #[test]
    fn case_insensitive_keywords() {
        let toks = lex("SELECT m1 WHERE m1.name LIKE 'x%'").unwrap();
        assert_eq!(toks[0], Token::Keyword(Kw::Select));
        assert_eq!(toks[2], Token::Keyword(Kw::Where));
    }

    #[test]
    fn escaped_quotes() {
        let toks = lex(r#""a\"b""#).unwrap();
        assert_eq!(toks, vec![Token::Str("a\"b".into())]);
    }

    #[test]
    fn spans_point_into_source() {
        let src = r#"select m1 where m1.accuracy >= 0.5 and m1.name like "x%""#;
        let spanned = lex_spanned(src).unwrap();
        let chars: Vec<char> = src.chars().collect();
        for (tok, sp) in &spanned {
            assert!(sp.start < sp.end && sp.end <= chars.len(), "{tok:?} {sp}");
            let slice: String = chars[sp.start..sp.end].iter().collect();
            match tok {
                Token::Ident(s) => assert_eq!(&slice, s),
                Token::Str(_) => assert!(slice.starts_with('"') || slice.starts_with('\'')),
                Token::Ge => assert_eq!(slice, ">="),
                _ => assert!(!slice.trim().is_empty()),
            }
        }
        // The plain lexer sees the identical token stream.
        let plain = lex(src).unwrap();
        assert_eq!(
            plain,
            spanned.into_iter().map(|(t, _)| t).collect::<Vec<_>>()
        );
    }

    #[test]
    fn span_join() {
        let a = Span::new(3, 5);
        let b = Span::new(9, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }
}
