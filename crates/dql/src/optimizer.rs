//! The DQL optimizer (the "DQL Parser & Optimizer" box of Fig. 3).
//!
//! Two rewrites, both semantics-preserving:
//!
//! 1. **Conjunct reordering by cost.** Structural `has` predicates load
//!    and traverse the model's network DAG, while metadata comparisons
//!    read the already-materialized version summary. Within an `And`
//!    chain, cheap predicates are evaluated first so expensive structural
//!    checks only run on survivors. (Boolean `&&` short-circuits, so this
//!    is a pure win; `Or` chains are reordered symmetrically to put cheap
//!    *accepting* conditions first.)
//! 2. **Constant folding** of double negations.

use crate::ast::Pred;

/// Relative evaluation cost of a predicate atom.
fn cost(p: &Pred) -> u32 {
    match p {
        Pred::True => 0,
        Pred::Cmp(..) => 1,
        Pred::Like(..) => 2,
        // Loads the network from the catalog and walks the DAG.
        Pred::Has(..) => 100,
        Pred::Not(inner) => cost(inner),
        Pred::And(a, b) | Pred::Or(a, b) => cost(a).saturating_add(cost(b)),
    }
}

/// Flatten an `And`/`Or` spine into its conjuncts/disjuncts.
fn flatten(p: Pred, and: bool, out: &mut Vec<Pred>) {
    match (p, and) {
        (Pred::And(a, b), true) => {
            flatten(*a, true, out);
            flatten(*b, true, out);
        }
        (Pred::Or(a, b), false) => {
            flatten(*a, false, out);
            flatten(*b, false, out);
        }
        (other, _) => out.push(other),
    }
}

/// Rebuild a left-deep chain from ordered parts.
fn rebuild(mut parts: Vec<Pred>, and: bool) -> Pred {
    let Some(mut acc) = parts.first().cloned() else {
        return Pred::True;
    };
    for p in parts.drain(1..) {
        acc = if and {
            Pred::And(Box::new(acc), Box::new(p))
        } else {
            Pred::Or(Box::new(acc), Box::new(p))
        };
    }
    acc
}

/// Optimize a predicate. The result is logically equivalent for
/// well-formed predicates (verified by property tests) but orders
/// conjuncts cheapest-first. Ill-formed atoms (unknown attributes) may
/// surface their error from a different position, since short-circuit
/// order changes.
pub fn optimize(pred: &Pred) -> Pred {
    match pred {
        Pred::And(..) => {
            let mut parts = Vec::new();
            flatten(pred.clone(), true, &mut parts);
            let mut parts: Vec<Pred> = parts.iter().map(optimize).collect();
            parts.sort_by_key(cost);
            rebuild(parts, true)
        }
        Pred::Or(..) => {
            let mut parts = Vec::new();
            flatten(pred.clone(), false, &mut parts);
            let mut parts: Vec<Pred> = parts.iter().map(optimize).collect();
            parts.sort_by_key(cost);
            rebuild(parts, false)
        }
        Pred::Not(inner) => match &**inner {
            // Double negation elimination.
            Pred::Not(x) => optimize(x),
            _ => Pred::Not(Box::new(optimize(inner))),
        },
        leaf => leaf.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Literal, NodeTemplate, Path, PathStep};

    fn cmp(attr: &str, v: f64) -> Pred {
        Pred::Cmp(
            Path {
                root: "m".into(),
                steps: vec![PathStep::Attr(attr.into())],
            },
            CmpOp::Gt,
            Literal::Num(v),
        )
    }

    fn has(sel: &str) -> Pred {
        Pred::Has(
            Path {
                root: "m".into(),
                steps: vec![PathStep::Selector(sel.into())],
            },
            NodeTemplate {
                ty: "POOL".into(),
                args: vec![],
            },
        )
    }

    #[test]
    fn structural_predicates_sink_to_the_right() {
        let p = Pred::And(
            Box::new(has("conv*")),
            Box::new(Pred::And(
                Box::new(cmp("accuracy", 0.5)),
                Box::new(has("relu*")),
            )),
        );
        let o = optimize(&p);
        // Flattened order: Cmp first, Has atoms after.
        let mut parts = Vec::new();
        flatten(o, true, &mut parts);
        assert_eq!(parts.len(), 3);
        assert!(matches!(parts[0], Pred::Cmp(..)));
        assert!(matches!(parts[1], Pred::Has(..)));
        assert!(matches!(parts[2], Pred::Has(..)));
    }

    #[test]
    fn double_negation_folds() {
        let p = Pred::Not(Box::new(Pred::Not(Box::new(cmp("id", 1.0)))));
        assert_eq!(optimize(&p), cmp("id", 1.0));
        // Triple negation keeps one Not.
        let p3 = Pred::Not(Box::new(p));
        assert!(matches!(optimize(&p3), Pred::Not(_)));
    }

    #[test]
    fn leaves_unchanged() {
        let p = cmp("params", 10.0);
        assert_eq!(optimize(&p), p);
        assert_eq!(optimize(&Pred::True), Pred::True);
    }
}
