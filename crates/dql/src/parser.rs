//! Recursive-descent parser for DQL.

use crate::ast::*;
use crate::token::{lex, Kw, LexError, Token};

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    Lex(LexError),
    /// Expected something else at the given token index.
    Expected(&'static str, usize),
    TrailingTokens(usize),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lex(e) => write!(f, "lex error: {e}"),
            Self::Expected(what, at) => write!(f, "expected {what} at token {at}"),
            Self::TrailingTokens(at) => write!(f, "unexpected trailing input at token {at}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a DQL query string.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input).map_err(ParseError::Lex)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::TrailingTokens(p.pos));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.peek() == Some(&Token::Keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Kw, what: &'static str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::Expected(what, self.pos))
        }
    }

    fn expect_ident(&mut self, what: &'static str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(ParseError::Expected(what, self.pos.saturating_sub(1))),
        }
    }

    fn expect_str(&mut self, what: &'static str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            _ => Err(ParseError::Expected(what, self.pos.saturating_sub(1))),
        }
    }

    fn expect_tok(&mut self, t: Token, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::Expected(what, self.pos))
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        match self.peek() {
            Some(Token::Keyword(Kw::Select)) => self.select().map(Query::Select),
            Some(Token::Keyword(Kw::Slice)) => self.slice().map(Query::Slice),
            Some(Token::Keyword(Kw::Construct)) => self.construct().map(Query::Construct),
            Some(Token::Keyword(Kw::Evaluate)) => self.evaluate().map(Query::Evaluate),
            _ => Err(ParseError::Expected(
                "select / slice / construct / evaluate",
                self.pos,
            )),
        }
    }

    fn select(&mut self) -> Result<SelectQuery, ParseError> {
        self.expect_kw(Kw::Select, "select")?;
        let alias = self.expect_ident("model alias")?;
        let pred = if self.eat_kw(Kw::Where) {
            self.pred()?
        } else {
            Pred::True
        };
        Ok(SelectQuery { alias, pred })
    }

    fn slice(&mut self) -> Result<SliceQuery, ParseError> {
        self.expect_kw(Kw::Slice, "slice")?;
        let out_alias = self.expect_ident("output alias")?;
        self.expect_kw(Kw::From, "from")?;
        let in_alias = self.expect_ident("input alias")?;
        let pred = if self.eat_kw(Kw::Where) {
            self.pred()?
        } else {
            Pred::True
        };
        self.expect_kw(Kw::Mutate, "mutate")?;
        // out.input = in["sel"] and out.output = in["sel"]
        let mut input_selector = None;
        let mut output_selector = None;
        loop {
            let alias = self.expect_ident("slice alias")?;
            if alias != out_alias {
                return Err(ParseError::Expected("output alias on mutate lhs", self.pos));
            }
            self.expect_tok(Token::Dot, ".")?;
            let which = self.expect_ident("'input' or 'output'")?;
            self.expect_tok(Token::Eq, "=")?;
            let _src = self.expect_ident("input alias")?;
            self.expect_tok(Token::LBracket, "[")?;
            let sel = self.expect_str("selector string")?;
            self.expect_tok(Token::RBracket, "]")?;
            match which.as_str() {
                "input" => input_selector = Some(sel),
                "output" => output_selector = Some(sel),
                _ => return Err(ParseError::Expected("'input' or 'output'", self.pos)),
            }
            if !self.eat_kw(Kw::And) {
                break;
            }
        }
        Ok(SliceQuery {
            out_alias,
            in_alias,
            pred,
            input_selector: input_selector
                .ok_or(ParseError::Expected("input selector", self.pos))?,
            output_selector: output_selector
                .ok_or(ParseError::Expected("output selector", self.pos))?,
        })
    }

    fn construct(&mut self) -> Result<ConstructQuery, ParseError> {
        self.expect_kw(Kw::Construct, "construct")?;
        let out_alias = self.expect_ident("output alias")?;
        self.expect_kw(Kw::From, "from")?;
        let in_alias = self.expect_ident("input alias")?;
        let pred = if self.eat_kw(Kw::Where) {
            self.pred()?
        } else {
            Pred::True
        };
        self.expect_kw(Kw::Mutate, "mutate")?;
        let mut actions = Vec::new();
        loop {
            // m["sel"].insert = TEMPLATE(...)  |  m["sel"].delete
            let _alias = self.expect_ident("model alias")?;
            self.expect_tok(Token::LBracket, "[")?;
            let selector = self.expect_str("selector string")?;
            self.expect_tok(Token::RBracket, "]")?;
            self.expect_tok(Token::Dot, ".")?;
            match self.next() {
                Some(Token::Keyword(Kw::Insert)) => {
                    self.expect_tok(Token::Eq, "=")?;
                    let template = self.node_template()?;
                    actions.push(MutationAction::Insert { selector, template });
                }
                Some(Token::Keyword(Kw::Delete)) => {
                    actions.push(MutationAction::Delete { selector });
                }
                _ => return Err(ParseError::Expected("insert or delete", self.pos)),
            }
            if !self.eat_kw(Kw::And) {
                break;
            }
        }
        Ok(ConstructQuery {
            out_alias,
            in_alias,
            pred,
            actions,
        })
    }

    fn evaluate(&mut self) -> Result<EvaluateQuery, ParseError> {
        self.expect_kw(Kw::Evaluate, "evaluate")?;
        let alias = self.expect_ident("model alias")?;
        self.expect_kw(Kw::From, "from")?;
        let source = match self.peek() {
            Some(Token::Str(_)) => {
                let s = self.expect_str("source")?;
                EvalSource::Named(s)
            }
            Some(Token::LParen) => {
                self.next();
                let q = self.query()?;
                self.expect_tok(Token::RParen, ")")?;
                EvalSource::Nested(Box::new(q))
            }
            _ => {
                // A nested query without parentheses.
                let q = self.query()?;
                EvalSource::Nested(Box::new(q))
            }
        };
        let mut config = None;
        if self.eat_kw(Kw::With) {
            // with config = "..."
            let ident = self.expect_ident("'config'")?;
            if ident != "config" {
                return Err(ParseError::Expected("'config'", self.pos));
            }
            self.expect_tok(Token::Eq, "=")?;
            config = Some(self.expect_str("config reference")?);
        }
        let mut vary = Vec::new();
        if self.eat_kw(Kw::Vary) {
            loop {
                vary.push(self.vary_clause()?);
                if !self.eat_kw(Kw::And) {
                    break;
                }
            }
        }
        let mut keep = None;
        if self.eat_kw(Kw::Keep) {
            keep = Some(self.keep_rule(&alias)?);
        }
        Ok(EvaluateQuery {
            alias,
            source,
            config,
            vary,
            keep,
        })
    }

    /// `config.base_lr in [...]` | `config.net["sel"].lr auto` |
    /// `config.input_data in [...]`
    fn vary_clause(&mut self) -> Result<VaryClause, ParseError> {
        let root = self.expect_ident("'config'")?;
        if root != "config" {
            return Err(ParseError::Expected("'config'", self.pos));
        }
        self.expect_tok(Token::Dot, ".")?;
        let field = self.expect_ident("config field")?;
        if field == "net" {
            self.expect_tok(Token::LBracket, "[")?;
            let selector = self.expect_str("selector")?;
            self.expect_tok(Token::RBracket, "]")?;
            self.expect_tok(Token::Dot, ".")?;
            let sub = self.expect_ident("'lr'")?;
            if sub != "lr" {
                return Err(ParseError::Expected("'lr'", self.pos));
            }
            self.expect_kw(Kw::Auto, "auto")?;
            return Ok(VaryClause::LayerLrAuto { selector });
        }
        self.expect_kw(Kw::In, "in")?;
        let values = self.literal_list()?;
        if field == "input_data" {
            let names = values
                .into_iter()
                .map(|l| match l {
                    Literal::Str(s) => Ok(s),
                    _ => Err(ParseError::Expected("string dataset names", self.pos)),
                })
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(VaryClause::InputData { names });
        }
        Ok(VaryClause::Grid { key: field, values })
    }

    /// `top(k, m["metric"], iters)` or `m["metric"] < value , iters`.
    fn keep_rule(&mut self, alias: &str) -> Result<KeepRule, ParseError> {
        if self.eat_kw(Kw::Top) {
            self.expect_tok(Token::LParen, "(")?;
            let k = self.number()? as usize;
            self.expect_tok(Token::Comma, ",")?;
            let metric = self.metric_ref(alias)?;
            self.expect_tok(Token::Comma, ",")?;
            let iterations = self.number()? as usize;
            self.expect_tok(Token::RParen, ")")?;
            return Ok(KeepRule::Top {
                k,
                metric,
                iterations,
            });
        }
        let metric = self.metric_ref(alias)?;
        let op = self.cmp_op()?;
        let value = self.number()?;
        self.expect_tok(Token::Comma, ",")?;
        let iterations = self.number()? as usize;
        Ok(KeepRule::Threshold {
            metric,
            op,
            value,
            iterations,
        })
    }

    /// `m["loss"]` or `m.loss`.
    fn metric_ref(&mut self, alias: &str) -> Result<String, ParseError> {
        let root = self.expect_ident("metric alias")?;
        if root != alias {
            return Err(ParseError::Expected("evaluate alias in metric", self.pos));
        }
        match self.next() {
            Some(Token::LBracket) => {
                let m = self.expect_str("metric name")?;
                self.expect_tok(Token::RBracket, "]")?;
                Ok(m)
            }
            Some(Token::Dot) => self.expect_ident("metric name"),
            _ => Err(ParseError::Expected("metric reference", self.pos)),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            _ => Err(ParseError::Expected("number", self.pos.saturating_sub(1))),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        match self.next() {
            Some(Token::Eq) => Ok(CmpOp::Eq),
            Some(Token::Ne) => Ok(CmpOp::Ne),
            Some(Token::Lt) => Ok(CmpOp::Lt),
            Some(Token::Le) => Ok(CmpOp::Le),
            Some(Token::Gt) => Ok(CmpOp::Gt),
            Some(Token::Ge) => Ok(CmpOp::Ge),
            _ => Err(ParseError::Expected(
                "comparison operator",
                self.pos.saturating_sub(1),
            )),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.peek() {
            Some(Token::Str(_)) => Ok(Literal::Str(self.expect_str("string")?)),
            Some(Token::Number(_)) => Ok(Literal::Num(self.number()?)),
            Some(Token::LBracket) => self.literal_list().map(Literal::List),
            _ => Err(ParseError::Expected("literal", self.pos)),
        }
    }

    fn literal_list(&mut self) -> Result<Vec<Literal>, ParseError> {
        self.expect_tok(Token::LBracket, "[")?;
        let mut out = Vec::new();
        if self.peek() != Some(&Token::RBracket) {
            loop {
                out.push(self.literal()?);
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.next();
            }
        }
        self.expect_tok(Token::RBracket, "]")?;
        Ok(out)
    }

    /// Boolean predicate with `and` binding tighter than `or`.
    fn pred(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.pred_and()?;
        while self.eat_kw(Kw::Or) {
            let right = self.pred_and()?;
            left = Pred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.pred_atom()?;
        while self.eat_kw(Kw::And) {
            let right = self.pred_atom()?;
            left = Pred::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_atom(&mut self) -> Result<Pred, ParseError> {
        if self.eat_kw(Kw::Not) {
            let inner = self.pred_atom()?;
            return Ok(Pred::Not(Box::new(inner)));
        }
        if self.peek() == Some(&Token::LParen) {
            self.next();
            let inner = self.pred()?;
            self.expect_tok(Token::RParen, ")")?;
            return Ok(inner);
        }
        let path = self.path()?;
        match self.peek() {
            Some(Token::Keyword(Kw::Like)) => {
                self.next();
                let pat = self.expect_str("like pattern")?;
                Ok(Pred::Like(path, pat))
            }
            Some(Token::Keyword(Kw::Has)) => {
                self.next();
                let tpl = self.node_template()?;
                Ok(Pred::Has(path, tpl))
            }
            _ => {
                let op = self.cmp_op()?;
                let lit = self.literal()?;
                Ok(Pred::Cmp(path, op, lit))
            }
        }
    }

    /// `alias(.attr | ["sel"])*`
    fn path(&mut self) -> Result<Path, ParseError> {
        let root = self.expect_ident("path root")?;
        let mut steps = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.next();
                    steps.push(PathStep::Attr(self.expect_ident("attribute")?));
                }
                Some(Token::LBracket) => {
                    self.next();
                    let sel = self.expect_str("selector")?;
                    self.expect_tok(Token::RBracket, "]")?;
                    steps.push(PathStep::Selector(sel));
                }
                _ => break,
            }
        }
        Ok(Path { root, steps })
    }

    /// `NAME("arg", 2, ...)` or bare `NAME`.
    fn node_template(&mut self) -> Result<NodeTemplate, ParseError> {
        let ty = self.expect_ident("template name")?;
        let mut args = Vec::new();
        if self.peek() == Some(&Token::LParen) {
            self.next();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.literal()?);
                    if !matches!(self.peek(), Some(Token::Comma)) {
                        break;
                    }
                    self.next();
                }
            }
            self.expect_tok(Token::RParen, ")")?;
        }
        Ok(NodeTemplate {
            ty: ty.to_ascii_uppercase(),
            args,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_query1() {
        let q = parse(
            r#"select m1
               where m1.name like "alexnet_%" and
                     m1.creation_time > 1448150400 and
                     m1["conv[1,3,5]"].next has POOL("MAX")"#,
        )
        .unwrap();
        let Query::Select(s) = q else {
            panic!("expected select")
        };
        assert_eq!(s.alias, "m1");
        // Predicate is a left-nested And of three atoms.
        let Pred::And(lhs, rhs) = &s.pred else {
            panic!()
        };
        assert!(matches!(**rhs, Pred::Has(_, _)));
        let Pred::And(a, b) = &**lhs else { panic!() };
        assert!(matches!(**a, Pred::Like(_, _)));
        assert!(matches!(**b, Pred::Cmp(_, CmpOp::Gt, _)));
    }

    #[test]
    fn parse_paper_query2() {
        let q = parse(
            r#"slice m2 from m1
               where m1.name like "alexnet-origin%"
               mutate m2.input = m1["conv1"] and
                      m2.output = m1["fc7"]"#,
        )
        .unwrap();
        let Query::Slice(s) = q else {
            panic!("expected slice")
        };
        assert_eq!(s.input_selector, "conv1");
        assert_eq!(s.output_selector, "fc7");
    }

    #[test]
    fn parse_paper_query3() {
        let q = parse(
            r#"construct m2 from m1
               where m1.name like "alexnet-avgv1%" and
                     m1["conv*($1)"].next has POOL("AVG")
               mutate m1["conv*($1)"].insert = RELU("relu$1")"#,
        )
        .unwrap();
        let Query::Construct(c) = q else {
            panic!("expected construct")
        };
        assert_eq!(c.actions.len(), 1);
        let MutationAction::Insert { selector, template } = &c.actions[0] else {
            panic!()
        };
        assert_eq!(selector, "conv*($1)");
        assert_eq!(template.ty, "RELU");
        assert_eq!(template.args, vec![Literal::Str("relu$1".into())]);
    }

    #[test]
    fn parse_paper_query4() {
        let q = parse(
            r#"evaluate m
               from "query3"
               with config = "path to config"
               vary config.base_lr in [0.1, 0.01, 0.001] and
                    config.net["conv*"].lr auto and
                    config.input_data in ["path1", "path2"]
               keep top(5, m["loss"], 100)"#,
        )
        .unwrap();
        let Query::Evaluate(e) = q else {
            panic!("expected evaluate")
        };
        assert_eq!(e.source, EvalSource::Named("query3".into()));
        assert_eq!(e.config.as_deref(), Some("path to config"));
        assert_eq!(e.vary.len(), 3);
        assert!(
            matches!(&e.vary[0], VaryClause::Grid { key, values } if key == "base_lr" && values.len() == 3)
        );
        assert!(matches!(&e.vary[1], VaryClause::LayerLrAuto { selector } if selector == "conv*"));
        assert!(matches!(&e.vary[2], VaryClause::InputData { names } if names.len() == 2));
        assert_eq!(
            e.keep,
            Some(KeepRule::Top {
                k: 5,
                metric: "loss".into(),
                iterations: 100
            })
        );
    }

    #[test]
    fn parse_nested_evaluate() {
        let q = parse(
            r#"evaluate m from (construct m2 from m1 where m1.name like "x%" mutate m1["conv1"].delete)
               keep m["loss"] < 0.5, 20"#,
        )
        .unwrap();
        let Query::Evaluate(e) = q else { panic!() };
        assert!(matches!(e.source, EvalSource::Nested(_)));
        assert_eq!(
            e.keep,
            Some(KeepRule::Threshold {
                metric: "loss".into(),
                op: CmpOp::Lt,
                value: 0.5,
                iterations: 20
            })
        );
    }

    #[test]
    fn parse_delete_action() {
        let q = parse(r#"construct m2 from m1 mutate m1["drop*"].delete"#).unwrap();
        let Query::Construct(c) = q else { panic!() };
        assert_eq!(
            c.actions,
            vec![MutationAction::Delete {
                selector: "drop*".into()
            }]
        );
    }

    #[test]
    fn or_and_precedence_and_parens() {
        let q = parse(r#"select m where m.a > 1 or m.b > 2 and m.c > 3"#).unwrap();
        let Query::Select(s) = q else { panic!() };
        // Parses as a OR (b AND c).
        let Pred::Or(_, rhs) = &s.pred else {
            panic!("or at top")
        };
        assert!(matches!(**rhs, Pred::And(_, _)));
        let q2 = parse(r#"select m where (m.a > 1 or m.b > 2) and m.c > 3"#).unwrap();
        let Query::Select(s2) = q2 else { panic!() };
        assert!(matches!(s2.pred, Pred::And(_, _)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("select").is_err());
        assert!(parse("frobnicate m1").is_err());
        assert!(parse(r#"select m1 where m1.name like"#).is_err());
        assert!(parse(r#"select m1 where m1.x > 1 extra"#).is_err());
    }
}
