//! DQL abstract syntax.

/// A literal value in a predicate or assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Str(String),
    Num(f64),
    /// A list of literals (`in [...]`).
    List(Vec<Literal>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A path rooted at a model alias: `m1.name`,
/// `m1["conv*"]`, `m1["conv*"].next`, `config.base_lr`,
/// `config.net["conv*"].lr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    pub root: String,
    pub steps: Vec<PathStep>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum PathStep {
    /// `.attr`
    Attr(String),
    /// `["selector"]`
    Selector(String),
}

impl Path {
    pub fn attr_only(&self) -> Option<&str> {
        match self.steps.as_slice() {
            [PathStep::Attr(a)] => Some(a),
            _ => None,
        }
    }
}

/// A node template: `POOL("MAX")`, `RELU("relu$1")`, `FULL(100)`, ...
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTemplate {
    pub ty: String,
    pub args: Vec<Literal>,
}

/// Boolean predicate over model versions.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    True,
    Cmp(Path, CmpOp, Literal),
    Like(Path, String),
    /// `path has TEMPLATE(...)`: some node reached via the path matches the
    /// template.
    Has(Path, NodeTemplate),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

/// `select <alias> where <pred>`
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    pub alias: String,
    pub pred: Pred,
}

/// `slice <out> from <in> where <pred> mutate out.input = in["..."] and
/// out.output = in["..."]`
#[derive(Debug, Clone, PartialEq)]
pub struct SliceQuery {
    pub out_alias: String,
    pub in_alias: String,
    pub pred: Pred,
    pub input_selector: String,
    pub output_selector: String,
}

/// One mutation action.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationAction {
    /// `m["sel"].insert = TEMPLATE("name$1")`: insert the templated node
    /// after every node matched by the selector.
    Insert {
        selector: String,
        template: NodeTemplate,
    },
    /// `m["sel"].delete`: remove every matched node, reconnecting around it.
    Delete { selector: String },
}

/// `construct <out> from <in> where <pred> mutate <actions...>`
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructQuery {
    pub out_alias: String,
    pub in_alias: String,
    pub pred: Pred,
    pub actions: Vec<MutationAction>,
}

/// The `from` source of an evaluate query.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalSource {
    /// Models selected by name pattern (a string literal source).
    Named(String),
    /// A nested query whose results are evaluated.
    Nested(Box<Query>),
}

/// One `vary` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum VaryClause {
    /// `config.<key> in [v1, v2, ...]`
    Grid { key: String, values: Vec<Literal> },
    /// `config.net["sel"].lr auto` — per-layer learning-rate multipliers
    /// explored with the default strategy.
    LayerLrAuto { selector: String },
    /// `config.input_data in ["path1", "path2"]`
    InputData { names: Vec<String> },
}

/// The `keep` rule.
#[derive(Debug, Clone, PartialEq)]
pub enum KeepRule {
    /// `top(k, m["metric"], iters)`.
    Top {
        k: usize,
        metric: String,
        iterations: usize,
    },
    /// `m["metric"] <op> threshold` after `iterations`.
    Threshold {
        metric: String,
        op: CmpOp,
        value: f64,
        iterations: usize,
    },
}

/// `evaluate <alias> from <source> with config = "..." vary ... keep ...`
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluateQuery {
    pub alias: String,
    pub source: EvalSource,
    /// Base config reference (a template name or path).
    pub config: Option<String>,
    pub vary: Vec<VaryClause>,
    pub keep: Option<KeepRule>,
}

/// A parsed DQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Select(SelectQuery),
    Slice(SliceQuery),
    Construct(ConstructQuery),
    Evaluate(EvaluateQuery),
}
