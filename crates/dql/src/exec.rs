//! DQL execution against a DLV repository (`dlv query`).

use crate::ast::*;
use crate::selector::{substitute, Selector};
use crate::DqlError;
use mh_dlv::{CommitRequest, Repository, VersionKey, VersionSummary};
use mh_dnn::{
    accuracy, Activation, Dataset, Hyperparams, LayerKind, Network, NodeId, PoolKind, Trainer,
    Weights,
};
use std::collections::BTreeMap;

/// A derived (not yet trained) model produced by `slice` or `construct`.
#[derive(Debug, Clone)]
pub struct DerivedModel {
    /// The version it was derived from.
    pub source: VersionKey,
    pub network: Network,
    /// Warm-start weights for the layers that survived the mutation.
    pub init: Option<Weights>,
    /// Human-readable description of the derivation.
    pub derivation: String,
}

/// One row of an `evaluate` result.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    pub source: VersionKey,
    /// Config description, e.g. `base_lr=0.01 data=path1`.
    pub config: String,
    pub loss: f32,
    pub accuracy: f32,
    pub kept: bool,
    /// Where the kept model was committed.
    pub committed: Option<VersionKey>,
}

/// The result of running a query.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// `select`: matching model versions.
    Versions(Vec<VersionSummary>),
    /// `slice` / `construct`: derived networks.
    Derived(Vec<DerivedModel>),
    /// `evaluate`: per-configuration outcomes (kept rows first).
    Evaluated(Vec<EvalOutcome>),
}

/// Executes parsed DQL queries against a repository.
pub struct Executor<'a> {
    repo: &'a Repository,
    /// Named datasets for `config.input_data`.
    datasets: BTreeMap<String, Dataset>,
    /// Named base configurations for `with config = "..."`.
    configs: BTreeMap<String, Hyperparams>,
    /// Default training length when `keep` gives none.
    pub default_iterations: usize,
    /// Default dataset when an evaluate query names none.
    pub default_dataset: Option<String>,
    /// Per-layer lr multipliers tried by `auto` (the default grid-search
    /// strategy).
    pub auto_lr_grid: Vec<f32>,
    /// Whether kept models are committed back into the repository.
    pub commit_kept: bool,
}

impl<'a> Executor<'a> {
    pub fn new(repo: &'a Repository) -> Self {
        Self {
            repo,
            datasets: BTreeMap::new(),
            configs: BTreeMap::new(),
            default_iterations: 20,
            default_dataset: None,
            auto_lr_grid: vec![1.0, 0.1],
            commit_kept: true,
        }
    }

    /// Register a dataset under a name referable from `config.input_data`.
    pub fn register_dataset(&mut self, name: &str, data: Dataset) {
        if self.default_dataset.is_none() {
            self.default_dataset = Some(name.to_string());
        }
        self.datasets.insert(name.to_string(), data);
    }

    /// Register a base configuration referable from `with config = "..."`.
    pub fn register_config(&mut self, name: &str, hp: Hyperparams) {
        self.configs.insert(name.to_string(), hp);
    }

    /// Parse and run a DQL string.
    pub fn run(&self, query: &str) -> Result<QueryResult, DqlError> {
        let q = {
            let _sp = mh_obs::span("dql.parse");
            crate::parser::parse(query).map_err(DqlError::Parse)?
        };
        self.execute(&q)
    }

    /// Check-only mode: parse and semantically analyze a query against this
    /// executor's repository, registered configs, and datasets — without
    /// executing it. Returns the diagnostics (empty = clean).
    pub fn check(&self, query: &str) -> Result<Vec<crate::analyze::Diagnostic>, DqlError> {
        let q = {
            let _sp = mh_obs::span("dql.parse");
            crate::parser::parse(query).map_err(DqlError::Parse)?
        };
        let _sp = mh_obs::span("dql.analyze");
        let mut ctx = crate::analyze::AnalyzeContext::from_repository(self.repo);
        ctx.configs = Some(self.configs.keys().cloned().collect());
        ctx.datasets = Some(self.datasets.keys().cloned().collect());
        Ok(crate::analyze::analyze(&q, query, &ctx))
    }

    /// Run a parsed query.
    pub fn execute(&self, q: &Query) -> Result<QueryResult, DqlError> {
        let kind = match q {
            Query::Select(_) => "select",
            Query::Slice(_) => "slice",
            Query::Construct(_) => "construct",
            Query::Evaluate(_) => "evaluate",
        };
        let mut sp = mh_obs::span("dql.execute");
        let result = match q {
            Query::Select(s) => QueryResult::Versions(self.select(s)?),
            Query::Slice(s) => QueryResult::Derived(self.slice(s)?),
            Query::Construct(c) => QueryResult::Derived(self.construct(c)?),
            Query::Evaluate(e) => QueryResult::Evaluated(self.evaluate(e)?),
        };
        if sp.is_recording() {
            sp.field("kind", kind);
            let rows = match &result {
                QueryResult::Versions(v) => v.len(),
                QueryResult::Derived(d) => d.len(),
                QueryResult::Evaluated(e) => e.len(),
            };
            sp.field("rows", rows);
        }
        Ok(result)
    }

    // ---- select -------------------------------------------------------

    fn select(&self, q: &SelectQuery) -> Result<Vec<VersionSummary>, DqlError> {
        // Reorder conjuncts so cheap metadata predicates filter candidates
        // before expensive structural (network-loading) checks.
        let pred = {
            let _sp = mh_obs::span("dql.optimize");
            crate::optimizer::optimize(&q.pred)
        };
        let mut out = Vec::new();
        for summary in self.repo.list() {
            if self.eval_pred(&pred, &q.alias, &summary)? {
                out.push(summary);
            }
        }
        Ok(out)
    }

    fn eval_pred(
        &self,
        pred: &Pred,
        alias: &str,
        summary: &VersionSummary,
    ) -> Result<bool, DqlError> {
        Ok(match pred {
            Pred::True => true,
            Pred::And(a, b) => {
                self.eval_pred(a, alias, summary)? && self.eval_pred(b, alias, summary)?
            }
            Pred::Or(a, b) => {
                self.eval_pred(a, alias, summary)? || self.eval_pred(b, alias, summary)?
            }
            Pred::Not(a) => !self.eval_pred(a, alias, summary)?,
            Pred::Like(path, pat) => {
                let text = self.text_attr(path, alias, summary)?;
                mh_store::like_match(pat, &text)
            }
            Pred::Cmp(path, op, lit) => {
                let x = self.num_attr(path, alias, summary)?;
                let y = match lit {
                    Literal::Num(n) => *n,
                    _ => return Err(DqlError::BadQuery("numeric literal expected")),
                };
                match op {
                    CmpOp::Eq => (x - y).abs() < f64::EPSILON,
                    CmpOp::Ne => (x - y).abs() >= f64::EPSILON,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                }
            }
            Pred::Has(path, tpl) => self.eval_has(path, tpl, alias, summary)?,
        })
    }

    fn check_alias(&self, path: &Path, alias: &str) -> Result<(), DqlError> {
        if path.root != alias {
            return Err(DqlError::BadQuery("unknown alias in predicate path"));
        }
        Ok(())
    }

    fn text_attr(
        &self,
        path: &Path,
        alias: &str,
        summary: &VersionSummary,
    ) -> Result<String, DqlError> {
        self.check_alias(path, alias)?;
        match path.attr_only() {
            Some("name") => Ok(summary.key.name.clone()),
            Some("arch") | Some("architecture") => Ok(summary.architecture.clone()),
            Some("comment") => Ok(summary.comment.clone()),
            _ => Err(DqlError::BadQuery("unknown text attribute")),
        }
    }

    fn num_attr(
        &self,
        path: &Path,
        alias: &str,
        summary: &VersionSummary,
    ) -> Result<f64, DqlError> {
        self.check_alias(path, alias)?;
        match path.attr_only() {
            Some("creation_time") | Some("created") => Ok(summary.created as f64),
            Some("accuracy") => Ok(summary.accuracy.unwrap_or(f64::NAN)),
            Some("params") | Some("param_count") => Ok(summary.param_count as f64),
            Some("id") => Ok(summary.key.id as f64),
            Some("num_snapshots") => Ok(summary.num_snapshots as f64),
            _ => Err(DqlError::BadQuery("unknown numeric attribute")),
        }
    }

    /// `m["sel"](.next|.prev)? has TEMPLATE(...)`.
    fn eval_has(
        &self,
        path: &Path,
        tpl: &NodeTemplate,
        alias: &str,
        summary: &VersionSummary,
    ) -> Result<bool, DqlError> {
        self.check_alias(path, alias)?;
        let net = self
            .repo
            .get_network(&summary.key.to_string())
            .map_err(DqlError::Dlv)?;
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut first = true;
        for step in &path.steps {
            match step {
                PathStep::Selector(sel) => {
                    if !first {
                        return Err(DqlError::BadQuery("selector must come first in path"));
                    }
                    let s = Selector::compile(sel).map_err(DqlError::Selector)?;
                    nodes = net
                        .nodes()
                        .filter(|n| s.is_match(&n.name))
                        .map(|n| n.id)
                        .collect();
                }
                PathStep::Attr(a) if a == "next" => {
                    nodes = nodes.iter().flat_map(|&id| net.next(id)).collect();
                }
                PathStep::Attr(a) if a == "prev" => {
                    nodes = nodes.iter().flat_map(|&id| net.prev(id)).collect();
                }
                PathStep::Attr(_) => return Err(DqlError::BadQuery("unknown traversal attribute")),
            }
            first = false;
        }
        Ok(nodes
            .iter()
            .filter_map(|&id| net.node(id).ok())
            .any(|n| template_matches(tpl, &n.kind)))
    }

    // ---- slice --------------------------------------------------------

    fn slice(&self, q: &SliceQuery) -> Result<Vec<DerivedModel>, DqlError> {
        let matches = self.select(&SelectQuery {
            alias: q.in_alias.clone(),
            pred: q.pred.clone(),
        })?;
        let in_sel = Selector::compile(&q.input_selector).map_err(DqlError::Selector)?;
        let out_sel = Selector::compile(&q.output_selector).map_err(DqlError::Selector)?;
        let mut out = Vec::new();
        for summary in matches {
            let spec = summary.key.to_string();
            let net = self.repo.get_network(&spec).map_err(DqlError::Dlv)?;
            let start = net.nodes().find(|n| in_sel.is_match(&n.name)).map(|n| n.id);
            let end = net
                .nodes()
                .find(|n| out_sel.is_match(&n.name))
                .map(|n| n.id);
            let (Some(start), Some(end)) = (start, end) else {
                continue; // model lacks the requested endpoints
            };
            let sub = net.slice(start, end).map_err(DqlError::Network)?;
            // Carry the weights of surviving parametric layers.
            let init = self.surviving_weights(&spec, &sub)?;
            out.push(DerivedModel {
                source: summary.key.clone(),
                network: sub,
                init,
                derivation: format!(
                    "slice[{} .. {}] of {}",
                    q.input_selector, q.output_selector, summary.key
                ),
            });
        }
        Ok(out)
    }

    fn surviving_weights(
        &self,
        spec: &str,
        derived: &Network,
    ) -> Result<Option<Weights>, DqlError> {
        let Ok(full) = self.repo.get_weights(spec, None) else {
            return Ok(None);
        };
        let mut w = Weights::new();
        for node in derived.nodes() {
            if node.kind.is_parametric() {
                if let Some(m) = full.get(&node.name) {
                    w.insert(&node.name, m.clone());
                }
            }
        }
        Ok(Some(w))
    }

    // ---- construct ----------------------------------------------------

    fn construct(&self, q: &ConstructQuery) -> Result<Vec<DerivedModel>, DqlError> {
        let matches = self.select(&SelectQuery {
            alias: q.in_alias.clone(),
            pred: q.pred.clone(),
        })?;
        let mut out = Vec::new();
        for summary in matches {
            let spec = summary.key.to_string();
            let mut net = self.repo.get_network(&spec).map_err(DqlError::Dlv)?;
            let mut derivation = Vec::new();
            let mut mutated = false;
            for action in &q.actions {
                match action {
                    MutationAction::Insert { selector, template } => {
                        let sel = Selector::compile(selector).map_err(DqlError::Selector)?;
                        let targets: Vec<(NodeId, Vec<String>)> = net
                            .nodes()
                            .filter_map(|n| sel.captures(&n.name).map(|c| (n.id, c)))
                            .collect();
                        for (id, caps) in targets {
                            let (name, kind) =
                                instantiate_template(template, &caps, net.num_nodes())?;
                            net.insert_after(id, &name, kind.clone())
                                .map_err(DqlError::Network)?;
                            derivation.push(format!("insert {name}"));
                            mutated = true;
                        }
                    }
                    MutationAction::Delete { selector } => {
                        let sel = Selector::compile(selector).map_err(DqlError::Selector)?;
                        let targets: Vec<NodeId> = net
                            .nodes()
                            .filter(|n| sel.is_match(&n.name))
                            .map(|n| n.id)
                            .collect();
                        for id in targets {
                            let name = net.node(id).map_err(DqlError::Network)?.name.clone();
                            net.delete_node(id).map_err(DqlError::Network)?;
                            derivation.push(format!("delete {name}"));
                            mutated = true;
                        }
                    }
                }
            }
            if !mutated {
                continue;
            }
            // Skip structurally broken results (shape inference fails).
            if net.infer_shapes().is_err() {
                continue;
            }
            let init = self.surviving_weights(&spec, &net)?;
            out.push(DerivedModel {
                source: summary.key.clone(),
                network: net,
                init,
                derivation: format!("{} [{}]", summary.key, derivation.join(", ")),
            });
        }
        Ok(out)
    }

    // ---- evaluate -----------------------------------------------------

    fn evaluate(&self, q: &EvaluateQuery) -> Result<Vec<EvalOutcome>, DqlError> {
        // Resolve the candidate models.
        let candidates: Vec<DerivedModel> = match &q.source {
            EvalSource::Named(pattern) => {
                let pred = Pred::Like(
                    Path {
                        root: "m".into(),
                        steps: vec![PathStep::Attr("name".into())],
                    },
                    pattern.clone(),
                );
                self.select(&SelectQuery {
                    alias: "m".into(),
                    pred,
                })?
                .into_iter()
                .map(|s| -> Result<DerivedModel, DqlError> {
                    let spec = s.key.to_string();
                    Ok(DerivedModel {
                        network: self.repo.get_network(&spec).map_err(DqlError::Dlv)?,
                        init: self.repo.get_weights(&spec, None).ok(),
                        source: s.key,
                        derivation: spec,
                    })
                })
                .collect::<Result<_, _>>()?
            }
            EvalSource::Nested(inner) => match self.execute(inner)? {
                QueryResult::Derived(d) => d,
                QueryResult::Versions(v) => v
                    .into_iter()
                    .map(|s| -> Result<DerivedModel, DqlError> {
                        let spec = s.key.to_string();
                        Ok(DerivedModel {
                            network: self.repo.get_network(&spec).map_err(DqlError::Dlv)?,
                            init: self.repo.get_weights(&spec, None).ok(),
                            source: s.key,
                            derivation: spec,
                        })
                    })
                    .collect::<Result<_, _>>()?,
                QueryResult::Evaluated(_) => {
                    return Err(DqlError::BadQuery("evaluate cannot nest evaluate"))
                }
            },
        };
        if candidates.is_empty() {
            return Ok(Vec::new());
        }

        // Base configuration.
        let mut base = match &q.config {
            Some(name) => self.configs.get(name).cloned().unwrap_or_default(),
            None => Hyperparams::default(),
        };
        base.layer_lr.clear();

        let iterations = match &q.keep {
            Some(KeepRule::Top { iterations, .. })
            | Some(KeepRule::Threshold { iterations, .. }) => *iterations,
            None => self.default_iterations,
        };

        // Expand the vary grid.
        let mut configs: Vec<(Hyperparams, String, String)> =
            vec![(base, String::new(), String::new())];
        for clause in &q.vary {
            configs = self.expand_vary(clause, &configs)?;
        }
        // Attach the default dataset where none was chosen.
        for c in configs.iter_mut() {
            if c.2.is_empty() {
                c.2 = self
                    .default_dataset
                    .clone()
                    .ok_or(DqlError::BadQuery("no dataset registered"))?;
            }
        }

        // Train every (model, config) combination.
        let mut outcomes = Vec::new();
        for cand in &candidates {
            // Models without an INPUT layer (pure slices) cannot be run.
            if cand.network.input_node().is_err() {
                continue;
            }
            for (hp, desc, data_name) in &configs {
                let data = self
                    .datasets
                    .get(data_name)
                    .ok_or(DqlError::UnknownDataset(data_name.clone()))?;
                // Merge warm-start weights with fresh ones.
                let fresh = Weights::init(&cand.network, 17).map_err(DqlError::Network)?;
                let mut init = Weights::new();
                for (name, m) in fresh.layers() {
                    match cand.init.as_ref().and_then(|w| w.get(name)) {
                        Some(old) if old.shape() == m.shape() => init.insert(name, old.clone()),
                        _ => init.insert(name, m.clone()),
                    }
                }
                let mut hp = hp.clone();
                // Resolve layer-lr selectors recorded as "@sel" pseudo keys.
                let pseudo: Vec<(String, f32)> = hp
                    .layer_lr
                    .iter()
                    .filter(|(k, _)| k.starts_with('@'))
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                for (k, mult) in pseudo {
                    hp.layer_lr.remove(&k);
                    let sel = Selector::compile(&k[1..]).map_err(DqlError::Selector)?;
                    for node in cand.network.nodes() {
                        if node.kind.is_parametric() && sel.is_match(&node.name) {
                            hp.layer_lr.insert(node.name.clone(), mult);
                        }
                    }
                }
                let trainer = Trainer::new(hp);
                let result = match trainer.train(&cand.network, init, data, iterations) {
                    Ok(r) => r,
                    Err(_) => continue, // incompatible data/model combo
                };
                let loss = trainer
                    .eval_loss(&cand.network, &result.weights, &data.test)
                    .unwrap_or(f32::INFINITY);
                let acc = accuracy(&cand.network, &result.weights, &data.test).unwrap_or(0.0);
                outcomes.push((
                    cand,
                    result,
                    EvalOutcome {
                        source: cand.source.clone(),
                        config: format!("{desc} data={data_name}").trim().to_string(),
                        loss,
                        accuracy: acc,
                        kept: false,
                        committed: None,
                    },
                ));
            }
        }

        // Apply the keep rule.
        let metric_of = |o: &EvalOutcome, metric: &str| -> f64 {
            match metric {
                "loss" => f64::from(o.loss),
                "accuracy" => f64::from(o.accuracy),
                _ => f64::from(o.loss),
            }
        };
        let keep_flags: Vec<bool> = match &q.keep {
            None => vec![true; outcomes.len()],
            Some(KeepRule::Top { k, metric, .. }) => {
                let mut idx: Vec<usize> = (0..outcomes.len()).collect();
                let ascending = metric == "loss";
                idx.sort_by(|&a, &b| {
                    let (x, y) = (
                        metric_of(&outcomes[a].2, metric),
                        metric_of(&outcomes[b].2, metric),
                    );
                    if ascending {
                        x.total_cmp(&y)
                    } else {
                        y.total_cmp(&x)
                    }
                });
                let mut flags = vec![false; outcomes.len()];
                for &i in idx.iter().take(*k) {
                    flags[i] = true;
                }
                flags
            }
            Some(KeepRule::Threshold {
                metric, op, value, ..
            }) => outcomes
                .iter()
                .map(|(_, _, o)| {
                    let x = metric_of(o, metric);
                    match op {
                        CmpOp::Lt => x < *value,
                        CmpOp::Le => x <= *value,
                        CmpOp::Gt => x > *value,
                        CmpOp::Ge => x >= *value,
                        CmpOp::Eq => (x - *value).abs() < 1e-12,
                        CmpOp::Ne => (x - *value).abs() >= 1e-12,
                    }
                })
                .collect(),
        };

        // Commit kept models back into the repository with lineage.
        let mut final_rows = Vec::new();
        for (i, (cand, result, mut outcome)) in outcomes.into_iter().enumerate() {
            outcome.kept = keep_flags[i];
            if outcome.kept && self.commit_kept {
                let name = format!("{}-{}-e{}", q.alias, cand.source.name, i);
                let mut req = CommitRequest::new(&name, cand.network.clone());
                req.snapshots = vec![(iterations, result.weights.clone())];
                req.log = result.log.clone();
                req.accuracy = Some(outcome.accuracy);
                req.parent = Some(cand.source.to_string());
                req.comment = format!("dql evaluate: {} ({})", cand.derivation, outcome.config);
                req.hyperparams
                    .insert("dql_config".into(), outcome.config.clone());
                let key = self.repo.commit(&req).map_err(DqlError::Dlv)?;
                outcome.committed = Some(key);
            }
            final_rows.push(outcome);
        }
        // Kept rows first, then by loss.
        final_rows.sort_by(|a, b| b.kept.cmp(&a.kept).then(a.loss.total_cmp(&b.loss)));
        Ok(final_rows)
    }

    fn expand_vary(
        &self,
        clause: &VaryClause,
        configs: &[(Hyperparams, String, String)],
    ) -> Result<Vec<(Hyperparams, String, String)>, DqlError> {
        let mut out = Vec::new();
        match clause {
            VaryClause::Grid { key, values } => {
                for (hp, desc, data) in configs {
                    for v in values {
                        let Literal::Num(n) = v else {
                            return Err(DqlError::BadQuery("numeric grid values expected"));
                        };
                        let mut hp = hp.clone();
                        match key.as_str() {
                            "base_lr" => hp.base_lr = *n as f32,
                            "momentum" => hp.momentum = *n as f32,
                            "weight_decay" => hp.weight_decay = *n as f32,
                            "batch_size" => hp.batch_size = (*n as usize).max(1),
                            "lr_gamma" => hp.lr_gamma = *n as f32,
                            _ => return Err(DqlError::BadQuery("unknown config key")),
                        }
                        out.push((
                            hp,
                            format!("{desc} {key}={n}").trim().to_string(),
                            data.clone(),
                        ));
                    }
                }
            }
            VaryClause::LayerLrAuto { selector } => {
                for (hp, desc, data) in configs {
                    for &mult in &self.auto_lr_grid {
                        let mut hp = hp.clone();
                        // Store as a pseudo key; resolved per network later.
                        hp.layer_lr.insert(format!("@{selector}"), mult);
                        out.push((
                            hp,
                            format!("{desc} lr[{selector}]={mult}").trim().to_string(),
                            data.clone(),
                        ));
                    }
                }
            }
            VaryClause::InputData { names } => {
                for (hp, desc, _) in configs {
                    for name in names {
                        out.push((hp.clone(), desc.clone(), name.clone()));
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Does a node's kind match a `has` template?
fn template_matches(tpl: &NodeTemplate, kind: &LayerKind) -> bool {
    if tpl.ty != kind.type_name() {
        return false;
    }
    match (tpl.ty.as_str(), kind) {
        ("POOL", LayerKind::Pool { kind: pk, .. }) => match tpl.args.first() {
            Some(Literal::Str(s)) => {
                (s.eq_ignore_ascii_case("max") && *pk == PoolKind::Max)
                    || (s.eq_ignore_ascii_case("avg") && *pk == PoolKind::Avg)
            }
            _ => true,
        },
        ("CONV", LayerKind::Conv { out_channels, .. }) => match tpl.args.first() {
            Some(Literal::Num(n)) => *out_channels == *n as usize,
            _ => true,
        },
        ("FULL", LayerKind::Full { out }) => match tpl.args.first() {
            Some(Literal::Num(n)) => *out == *n as usize,
            _ => true,
        },
        _ => true,
    }
}

/// Instantiate an insert template into a concrete (name, layer).
fn instantiate_template(
    tpl: &NodeTemplate,
    caps: &[String],
    uniq: usize,
) -> Result<(String, LayerKind), DqlError> {
    let str_arg = |i: usize| -> Option<String> {
        tpl.args.get(i).and_then(|l| match l {
            Literal::Str(s) => Some(substitute(s, caps)),
            _ => None,
        })
    };
    let num_arg = |i: usize| -> Option<f64> {
        tpl.args.get(i).and_then(|l| match l {
            Literal::Num(n) => Some(*n),
            _ => None,
        })
    };
    let auto_name = |prefix: &str| format!("{prefix}_dql{uniq}");
    Ok(match tpl.ty.as_str() {
        "RELU" => (
            str_arg(0).unwrap_or_else(|| auto_name("relu")),
            LayerKind::Act(Activation::ReLU),
        ),
        "SIGMOID" => (
            str_arg(0).unwrap_or_else(|| auto_name("sigmoid")),
            LayerKind::Act(Activation::Sigmoid),
        ),
        "TANH" => (
            str_arg(0).unwrap_or_else(|| auto_name("tanh")),
            LayerKind::Act(Activation::Tanh),
        ),
        "DROPOUT" => (
            str_arg(1).unwrap_or_else(|| auto_name("drop")),
            LayerKind::Dropout {
                rate: num_arg(0).unwrap_or(0.5) as f32,
            },
        ),
        "FLATTEN" => (
            str_arg(0).unwrap_or_else(|| auto_name("flatten")),
            LayerKind::Flatten,
        ),
        "POOL" => {
            let kind = match str_arg(0).as_deref() {
                Some(s) if s.eq_ignore_ascii_case("avg") => PoolKind::Avg,
                _ => PoolKind::Max,
            };
            (
                str_arg(3).unwrap_or_else(|| auto_name("pool")),
                LayerKind::Pool {
                    kind,
                    size: num_arg(1).unwrap_or(2.0) as usize,
                    stride: num_arg(2).unwrap_or(2.0) as usize,
                },
            )
        }
        "FULL" => (
            str_arg(1).unwrap_or_else(|| auto_name("fc")),
            LayerKind::Full {
                out: num_arg(0).unwrap_or(10.0) as usize,
            },
        ),
        "CONV" => (
            str_arg(4).unwrap_or_else(|| auto_name("conv")),
            LayerKind::Conv {
                out_channels: num_arg(0).unwrap_or(8.0) as usize,
                kernel: num_arg(1).unwrap_or(3.0) as usize,
                stride: num_arg(2).unwrap_or(1.0) as usize,
                pad: num_arg(3).unwrap_or(0.0) as usize,
            },
        ),
        "NORM" | "LRN" => (
            str_arg(4).unwrap_or_else(|| auto_name("norm")),
            LayerKind::Lrn {
                size: num_arg(0).unwrap_or(5.0) as usize,
                alpha: num_arg(1).unwrap_or(1e-4) as f32,
                beta: num_arg(2).unwrap_or(0.75) as f32,
                k: num_arg(3).unwrap_or(2.0) as f32,
            },
        ),
        _ => return Err(DqlError::BadQuery("unknown node template")),
    })
}
