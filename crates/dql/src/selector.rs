//! The node-selector mini-pattern language used inside `m["..."]`.
//!
//! Supported syntax (a regexp-flavoured subset sufficient for the paper's
//! queries):
//!
//! * literal characters — match themselves;
//! * `*` — matches any (possibly empty) run of characters, lazily extended
//!   with backtracking;
//! * `?` — matches exactly one character;
//! * `[a,b,c]` — alternation over comma-separated literal strings
//!   (e.g. `conv[1,3,5]`);
//! * `( ... )` — grouping (no semantic effect on matching).
//!
//! Every `*`, `?` and `[...]` is a capture; `$1`, `$2`, … in replacement
//! templates refer to them in order (the paper's `conv*($1)` ↦
//! `RELU("relu$1")` idiom).

/// One compiled pattern element.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Item {
    Lit(char),
    Star,
    One,
    Alt(Vec<String>),
}

/// A compiled selector pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    items: Vec<Item>,
    source: String,
}

/// Selector parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectorError {
    UnclosedBracket,
    UnbalancedParen,
    EmptyAlternative,
}

impl std::fmt::Display for SelectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnclosedBracket => write!(f, "unclosed '[' in selector"),
            Self::UnbalancedParen => write!(f, "unbalanced parentheses in selector"),
            Self::EmptyAlternative => write!(f, "empty alternative in selector"),
        }
    }
}

impl std::error::Error for SelectorError {}

impl Selector {
    /// Compile a pattern.
    pub fn compile(pattern: &str) -> Result<Self, SelectorError> {
        let mut items = Vec::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut depth = 0i32;
        while let Some(&ch) = chars.get(i) {
            match ch {
                '*' => items.push(Item::Star),
                '?' => items.push(Item::One),
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return Err(SelectorError::UnbalancedParen);
                    }
                }
                '[' => {
                    let rest = chars.get(i + 1..).unwrap_or_default();
                    let close = rest
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or(SelectorError::UnclosedBracket)?;
                    let body: String = rest.get(..close).unwrap_or_default().iter().collect();
                    let alts: Vec<String> = body.split(',').map(|s| s.trim().to_string()).collect();
                    if alts.iter().any(String::is_empty) {
                        return Err(SelectorError::EmptyAlternative);
                    }
                    items.push(Item::Alt(alts));
                    i += close + 1;
                }
                c => items.push(Item::Lit(c)),
            }
            i += 1;
        }
        if depth != 0 {
            return Err(SelectorError::UnbalancedParen);
        }
        Ok(Self {
            items,
            source: pattern.to_string(),
        })
    }

    pub fn source(&self) -> &str {
        &self.source
    }

    /// Match a name; on success, return the captures (one per wildcard, in
    /// pattern order).
    pub fn captures(&self, name: &str) -> Option<Vec<String>> {
        let chars: Vec<char> = name.chars().collect();
        let mut caps = Vec::new();
        if self.match_from(0, &chars, 0, &mut caps) {
            Some(caps)
        } else {
            None
        }
    }

    /// Whether the name matches.
    pub fn is_match(&self, name: &str) -> bool {
        self.captures(name).is_some()
    }

    fn match_from(
        &self,
        item_idx: usize,
        text: &[char],
        pos: usize,
        caps: &mut Vec<String>,
    ) -> bool {
        let Some(item) = self.items.get(item_idx) else {
            return pos == text.len();
        };
        match item {
            Item::Lit(c) => {
                if text.get(pos) == Some(c) {
                    self.match_from(item_idx + 1, text, pos + 1, caps)
                } else {
                    false
                }
            }
            Item::One => {
                if let Some(ch) = text.get(pos) {
                    caps.push(ch.to_string());
                    if self.match_from(item_idx + 1, text, pos + 1, caps) {
                        return true;
                    }
                    caps.pop();
                }
                false
            }
            Item::Star => {
                // Try progressively longer captures.
                for end in pos..=text.len() {
                    caps.push(text.get(pos..end).unwrap_or_default().iter().collect());
                    if self.match_from(item_idx + 1, text, end, caps) {
                        return true;
                    }
                    caps.pop();
                }
                false
            }
            Item::Alt(alts) => {
                for alt in alts {
                    let ac: Vec<char> = alt.chars().collect();
                    if text.get(pos..).unwrap_or_default().starts_with(&ac) {
                        caps.push(alt.clone());
                        if self.match_from(item_idx + 1, text, pos + ac.len(), caps) {
                            return true;
                        }
                        caps.pop();
                    }
                }
                false
            }
        }
    }
}

/// Substitute `$1`, `$2`, … in a template with captures.
pub fn substitute(template: &str, caps: &[String]) -> String {
    let mut out = String::new();
    let chars: Vec<char> = template.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '$' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            let n: usize = chars[i + 1..j]
                .iter()
                .collect::<String>()
                .parse()
                .unwrap_or(0);
            if n >= 1 && n <= caps.len() {
                out.push_str(&caps[n - 1]);
            }
            i = j;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_star() {
        let s = Selector::compile("conv*").unwrap();
        assert_eq!(s.captures("conv1"), Some(vec!["1".into()]));
        assert_eq!(s.captures("conv"), Some(vec!["".into()]));
        assert_eq!(s.captures("conv2_3"), Some(vec!["2_3".into()]));
        assert!(s.captures("pool1").is_none());
    }

    #[test]
    fn bracket_alternation() {
        // The paper's Query 1 selector.
        let s = Selector::compile("conv[1,3,5]").unwrap();
        assert!(s.is_match("conv1"));
        assert!(s.is_match("conv3"));
        assert!(s.is_match("conv5"));
        assert!(!s.is_match("conv2"));
        assert!(!s.is_match("conv15"));
        assert_eq!(s.captures("conv3"), Some(vec!["3".into()]));
    }

    #[test]
    fn grouped_star_capture() {
        // The paper's Query 3 selector: conv*($1).
        let s = Selector::compile("conv(*)").unwrap();
        assert_eq!(s.captures("conv2_1"), Some(vec!["2_1".into()]));
        let caps = s.captures("conv7").unwrap();
        assert_eq!(substitute("relu$1", &caps), "relu7");
    }

    #[test]
    fn question_mark() {
        let s = Selector::compile("ip?").unwrap();
        assert!(s.is_match("ip1"));
        assert!(!s.is_match("ip"));
        assert!(!s.is_match("ip12"));
    }

    #[test]
    fn multiple_wildcards() {
        let s = Selector::compile("*_*").unwrap();
        let caps = s.captures("conv1_2").unwrap();
        assert_eq!(caps, vec!["conv1".to_string(), "2".to_string()]);
        assert_eq!(substitute("$1-x-$2", &caps), "conv1-x-2");
    }

    #[test]
    fn errors() {
        assert_eq!(
            Selector::compile("a[b"),
            Err(SelectorError::UnclosedBracket)
        );
        assert_eq!(
            Selector::compile("a(b"),
            Err(SelectorError::UnbalancedParen)
        );
        assert_eq!(
            Selector::compile("a)b"),
            Err(SelectorError::UnbalancedParen)
        );
        assert_eq!(
            Selector::compile("x[,y]"),
            Err(SelectorError::EmptyAlternative)
        );
    }

    #[test]
    fn substitute_edge_cases() {
        assert_eq!(substitute("no refs", &["a".into()]), "no refs");
        assert_eq!(substitute("$9", &["a".into()]), ""); // out of range drops
        assert_eq!(substitute("a$1b$1c", &["X".into()]), "aXbXc");
    }
}
