//! Static semantic analysis for DQL — `dql check`.
//!
//! Type-checks a parsed query against the catalog schema (known version
//! attributes, config keys, metrics, node templates) and, when available,
//! the repository's network DAGs (layer names), WITHOUT executing anything:
//! no model is loaded, trained, or mutated. Every problem is reported as a
//! [`Diagnostic`] carrying a source [`Span`] resolved from the token
//! stream, so callers can render caret diagnostics.

use crate::ast::*;
use crate::parser::{parse, ParseError};
use crate::selector::Selector;
use crate::token::{lex_spanned, Span, Token};
use std::collections::BTreeSet;

/// Version attributes with text values (mirrors `exec::text_attr`).
pub const TEXT_ATTRS: &[&str] = &["name", "arch", "architecture", "comment"];

/// Version attributes with numeric values (mirrors `exec::num_attr`).
pub const NUM_ATTRS: &[&str] = &[
    "creation_time",
    "created",
    "accuracy",
    "params",
    "param_count",
    "id",
    "num_snapshots",
];

/// DAG traversal attributes usable after a node selector.
pub const TRAVERSAL_ATTRS: &[&str] = &["next", "prev"];

/// Hyperparameter keys accepted by `vary config.<key> in [...]`.
pub const CONFIG_KEYS: &[&str] = &[
    "base_lr",
    "momentum",
    "weight_decay",
    "batch_size",
    "lr_gamma",
];

/// Node template names accepted by `has` and `insert`.
pub const TEMPLATES: &[&str] = &[
    "RELU", "SIGMOID", "TANH", "DROPOUT", "FLATTEN", "POOL", "FULL", "CONV", "NORM", "LRN",
];

/// Metrics accepted by `keep`.
pub const METRICS: &[&str] = &["loss", "accuracy"];

/// How bad a diagnostic is. `Error` means the query is rejected: executing
/// it would fail or provably produce nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Warning => write!(f, "warning"),
            Self::Error => write!(f, "error"),
        }
    }
}

/// One analysis finding, anchored to a source range.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable machine-readable code (`Q0xx`).
    pub code: &'static str,
    pub span: Span,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// Unknown attribute in a predicate path.
pub const Q_UNKNOWN_ATTR: &str = "Q001";
/// Path root does not name a declared alias.
pub const Q_UNKNOWN_ALIAS: &str = "Q002";
/// Operand type mismatch (text attribute compared numerically, ...).
pub const Q_TYPE_MISMATCH: &str = "Q003";
/// Node selector fails to compile.
pub const Q_BAD_SELECTOR: &str = "Q004";
/// Invalid structural path (unknown traversal, selector not first).
pub const Q_BAD_PATH: &str = "Q005";
/// Unknown node template name.
pub const Q_UNKNOWN_TEMPLATE: &str = "Q006";
/// Template argument outside its domain.
pub const Q_TEMPLATE_ARG: &str = "Q007";
/// Unknown `vary config.<key>`.
pub const Q_UNKNOWN_CONFIG_KEY: &str = "Q008";
/// Non-numeric grid values.
pub const Q_BAD_GRID_VALUE: &str = "Q009";
/// Unknown `keep` metric.
pub const Q_UNKNOWN_METRIC: &str = "Q010";
/// Empty or degenerate domain (empty vary list, `top(0, ...)`).
pub const Q_EMPTY_DOMAIN: &str = "Q011";
/// `evaluate` nested inside `evaluate`.
pub const Q_NESTED_EVALUATE: &str = "Q012";
/// Selector names a layer that exists in no model version.
pub const Q_UNKNOWN_LAYER: &str = "Q013";
/// Unregistered base config.
pub const Q_UNKNOWN_CONFIG: &str = "Q014";
/// Unregistered dataset.
pub const Q_UNKNOWN_DATASET: &str = "Q015";

/// What the analyzer may check against. `None` fields disable the
/// corresponding checks (the information is unavailable, e.g. when
/// checking a query with no repository at hand).
#[derive(Debug, Clone, Default)]
pub struct AnalyzeContext {
    /// Union of layer names across all model versions.
    pub layer_names: Option<BTreeSet<String>>,
    /// Registered base-config names (`with config = "..."`).
    pub configs: Option<BTreeSet<String>>,
    /// Registered dataset names (`vary config.input_data in [...]`).
    pub datasets: Option<BTreeSet<String>>,
}

impl AnalyzeContext {
    /// Gather layer names from every version in a repository. Versions
    /// whose network fails to load are skipped (that is `fsck`'s job).
    pub fn from_repository(repo: &mh_dlv::Repository) -> Self {
        let mut layers = BTreeSet::new();
        for summary in repo.list() {
            if let Ok(net) = repo.get_network(&summary.key.to_string()) {
                for node in net.nodes() {
                    layers.insert(node.name.clone());
                }
            }
        }
        Self {
            layer_names: Some(layers),
            configs: None,
            datasets: None,
        }
    }
}

/// Parse and analyze a query without executing it.
pub fn check(src: &str, ctx: &AnalyzeContext) -> Result<Vec<Diagnostic>, ParseError> {
    let query = parse(src)?;
    Ok(analyze(&query, src, ctx))
}

/// Analyze an already-parsed query. `src` must be the text it was parsed
/// from (used to resolve diagnostic spans).
pub fn analyze(query: &Query, src: &str, ctx: &AnalyzeContext) -> Vec<Diagnostic> {
    let mut a = Analyzer {
        finder: SpanFinder::new(src),
        ctx,
        diags: Vec::new(),
    };
    a.query(query);
    a.diags
}

// ---- span resolution --------------------------------------------------

/// Locates AST fragments in the token stream. The analyzer visits the AST
/// in source order, so a forward-scanning cursor with occurrence matching
/// recovers the span of each identifier / string / number as it is
/// visited; duplicated names resolve to successive occurrences.
struct SpanFinder {
    tokens: Vec<(Token, Span)>,
    cursor: usize,
    whole: Span,
}

impl SpanFinder {
    fn new(src: &str) -> Self {
        let tokens = lex_spanned(src).unwrap_or_default();
        let whole = Span::new(0, src.chars().count());
        Self {
            tokens,
            cursor: 0,
            whole,
        }
    }

    fn locate(&mut self, pred: impl Fn(&Token) -> bool) -> Span {
        // Forward from the cursor first; wrap to the start on a miss so an
        // out-of-order visit still finds something sensible.
        for (i, (t, sp)) in self.tokens.iter().enumerate().skip(self.cursor) {
            if pred(t) {
                self.cursor = i + 1;
                return *sp;
            }
        }
        for (i, (t, sp)) in self.tokens.iter().enumerate().take(self.cursor) {
            if pred(t) {
                self.cursor = i + 1;
                return *sp;
            }
        }
        self.whole
    }

    fn ident(&mut self, name: &str) -> Span {
        self.locate(|t| matches!(t, Token::Ident(s) if s == name))
    }

    fn string(&mut self, value: &str) -> Span {
        self.locate(|t| matches!(t, Token::Str(s) if s == value))
    }

    fn number(&mut self, value: f64) -> Span {
        self.locate(|t| matches!(t, Token::Number(n) if *n == value))
    }
}

// ---- the analyzer -----------------------------------------------------

struct Analyzer<'a> {
    finder: SpanFinder,
    ctx: &'a AnalyzeContext,
    diags: Vec<Diagnostic>,
}

impl Analyzer<'_> {
    fn emit(&mut self, severity: Severity, code: &'static str, span: Span, message: String) {
        self.diags.push(Diagnostic {
            severity,
            code,
            span,
            message,
        });
    }

    fn query(&mut self, q: &Query) {
        match q {
            Query::Select(s) => self.select(s),
            Query::Slice(s) => self.slice(s),
            Query::Construct(c) => self.construct(c),
            Query::Evaluate(e) => self.evaluate(e),
        }
    }

    fn select(&mut self, q: &SelectQuery) {
        self.finder.ident(&q.alias);
        self.pred(&q.pred, &q.alias);
    }

    fn slice(&mut self, q: &SliceQuery) {
        self.finder.ident(&q.out_alias);
        self.finder.ident(&q.in_alias);
        self.pred(&q.pred, &q.in_alias);
        // `mutate out.input = in["sel"] and out.output = in["sel"]` — the
        // parser does not preserve clause order, so resolve both spans in
        // textual order via whichever string comes first.
        for sel in [&q.input_selector, &q.output_selector] {
            let span = self.finder.string(sel);
            self.selector(sel, span, Severity::Error);
        }
    }

    fn construct(&mut self, q: &ConstructQuery) {
        self.finder.ident(&q.out_alias);
        self.finder.ident(&q.in_alias);
        self.pred(&q.pred, &q.in_alias);
        for action in &q.actions {
            match action {
                MutationAction::Insert { selector, template } => {
                    let span = self.finder.string(selector);
                    self.selector(selector, span, Severity::Error);
                    self.template(template);
                }
                MutationAction::Delete { selector } => {
                    let span = self.finder.string(selector);
                    self.selector(selector, span, Severity::Error);
                }
            }
        }
    }

    fn evaluate(&mut self, q: &EvaluateQuery) {
        self.finder.ident(&q.alias);
        match &q.source {
            EvalSource::Named(_) => {}
            EvalSource::Nested(inner) => {
                if matches!(**inner, Query::Evaluate(_)) {
                    let span = self.finder.whole;
                    self.emit(
                        Severity::Error,
                        Q_NESTED_EVALUATE,
                        span,
                        "evaluate cannot nest another evaluate".into(),
                    );
                }
                self.query(inner);
            }
        }
        if let Some(name) = &q.config {
            let span = self.finder.string(name);
            if let Some(known) = &self.ctx.configs {
                if !known.contains(name) {
                    self.emit(
                        Severity::Warning,
                        Q_UNKNOWN_CONFIG,
                        span,
                        format!("config '{name}' is not registered; defaults would be used"),
                    );
                }
            }
        }
        for clause in &q.vary {
            self.vary(clause);
        }
        if let Some(rule) = &q.keep {
            self.keep(rule);
        }
    }

    fn vary(&mut self, clause: &VaryClause) {
        match clause {
            VaryClause::Grid { key, values } => {
                let span = self.finder.ident(key);
                if !CONFIG_KEYS.contains(&key.as_str()) {
                    self.emit(
                        Severity::Error,
                        Q_UNKNOWN_CONFIG_KEY,
                        span,
                        format!(
                            "unknown config key '{key}' (expected one of {})",
                            CONFIG_KEYS.join(", ")
                        ),
                    );
                }
                if values.is_empty() {
                    self.emit(
                        Severity::Error,
                        Q_EMPTY_DOMAIN,
                        span,
                        format!("vary list for '{key}' is empty; no configuration is generated"),
                    );
                }
                for v in values {
                    match v {
                        Literal::Num(n) => {
                            self.finder.number(*n);
                        }
                        Literal::Str(s) => {
                            let vspan = self.finder.string(s);
                            self.emit(
                                Severity::Error,
                                Q_BAD_GRID_VALUE,
                                vspan,
                                format!("grid value for '{key}' must be numeric, got \"{s}\""),
                            );
                        }
                        Literal::List(_) => {
                            self.emit(
                                Severity::Error,
                                Q_BAD_GRID_VALUE,
                                span,
                                format!("grid value for '{key}' must be numeric, got a list"),
                            );
                        }
                    }
                }
            }
            VaryClause::LayerLrAuto { selector } => {
                let span = self.finder.string(selector);
                self.selector(selector, span, Severity::Warning);
            }
            VaryClause::InputData { names } => {
                if names.is_empty() {
                    let span = self.finder.ident("input_data");
                    self.emit(
                        Severity::Error,
                        Q_EMPTY_DOMAIN,
                        span,
                        "input_data list is empty; no configuration is generated".into(),
                    );
                }
                for name in names {
                    let span = self.finder.string(name);
                    if let Some(known) = &self.ctx.datasets {
                        if !known.contains(name) {
                            self.emit(
                                Severity::Error,
                                Q_UNKNOWN_DATASET,
                                span,
                                format!("dataset '{name}' is not registered"),
                            );
                        }
                    }
                }
            }
        }
    }

    fn keep(&mut self, rule: &KeepRule) {
        let (metric, iterations) = match rule {
            KeepRule::Top {
                k,
                metric,
                iterations,
            } => {
                if *k == 0 {
                    let span = self.finder.number(0.0);
                    self.emit(
                        Severity::Error,
                        Q_EMPTY_DOMAIN,
                        span,
                        "top(0, ...) keeps nothing".into(),
                    );
                }
                (metric, *iterations)
            }
            KeepRule::Threshold {
                metric, iterations, ..
            } => (metric, *iterations),
        };
        let span = self.finder.string(metric);
        if !METRICS.contains(&metric.as_str()) {
            self.emit(
                Severity::Error,
                Q_UNKNOWN_METRIC,
                span,
                format!(
                    "unknown metric '{metric}' (expected one of {})",
                    METRICS.join(", ")
                ),
            );
        }
        if iterations == 0 {
            self.emit(
                Severity::Warning,
                Q_EMPTY_DOMAIN,
                span,
                "keep rule trains for 0 iterations".into(),
            );
        }
    }

    // ---- predicates ---------------------------------------------------

    fn pred(&mut self, p: &Pred, alias: &str) {
        match p {
            Pred::True => {}
            // Children are visited left-to-right, which matches source
            // order for the parser's left-nested trees.
            Pred::And(a, b) | Pred::Or(a, b) => {
                self.pred(a, alias);
                self.pred(b, alias);
            }
            Pred::Not(a) => self.pred(a, alias),
            Pred::Like(path, _) => {
                let spans = self.path_spans(path);
                if !self.check_root(path, alias, spans.root) {
                    return;
                }
                match path.attr_only() {
                    Some(attr) if TEXT_ATTRS.contains(&attr) => {}
                    Some(attr) if NUM_ATTRS.contains(&attr) => {
                        self.emit(
                            Severity::Error,
                            Q_TYPE_MISMATCH,
                            spans.step(0),
                            format!("'like' needs a text attribute, but '{attr}' is numeric"),
                        );
                    }
                    Some(attr) => self.unknown_attr(attr, spans.step(0)),
                    None => {
                        self.emit(
                            Severity::Error,
                            Q_BAD_PATH,
                            spans.root,
                            "'like' needs a single text attribute (e.g. m.name)".into(),
                        );
                    }
                }
            }
            Pred::Cmp(path, _, lit) => {
                let spans = self.path_spans(path);
                if !self.check_root(path, alias, spans.root) {
                    return;
                }
                match path.attr_only() {
                    Some(attr) if NUM_ATTRS.contains(&attr) => {}
                    Some(attr) if TEXT_ATTRS.contains(&attr) => {
                        self.emit(
                            Severity::Error,
                            Q_TYPE_MISMATCH,
                            spans.step(0),
                            format!(
                                "text attribute '{attr}' cannot be compared numerically; use 'like'"
                            ),
                        );
                    }
                    Some(attr) => self.unknown_attr(attr, spans.step(0)),
                    None => {
                        self.emit(
                            Severity::Error,
                            Q_BAD_PATH,
                            spans.root,
                            "comparison needs a single numeric attribute (e.g. m.accuracy)".into(),
                        );
                    }
                }
                match lit {
                    Literal::Num(_) => {}
                    Literal::Str(s) => {
                        let lspan = self.finder.string(s);
                        self.emit(
                            Severity::Error,
                            Q_TYPE_MISMATCH,
                            lspan,
                            "comparison needs a numeric literal".into(),
                        );
                    }
                    Literal::List(_) => {
                        self.emit(
                            Severity::Error,
                            Q_TYPE_MISMATCH,
                            spans.root,
                            "comparison needs a numeric literal, got a list".into(),
                        );
                    }
                }
            }
            Pred::Has(path, tpl) => {
                let spans = self.path_spans(path);
                if !self.check_root(path, alias, spans.root) {
                    return;
                }
                let mut saw_selector = false;
                for (i, step) in path.steps.iter().enumerate() {
                    match step {
                        PathStep::Selector(sel) => {
                            if i != 0 {
                                self.emit(
                                    Severity::Error,
                                    Q_BAD_PATH,
                                    spans.step(i),
                                    "node selector must come first in a structural path".into(),
                                );
                            }
                            saw_selector = true;
                            self.selector(sel, spans.step(i), Severity::Warning);
                        }
                        PathStep::Attr(a) => {
                            if !TRAVERSAL_ATTRS.contains(&a.as_str()) {
                                self.emit(
                                    Severity::Error,
                                    Q_BAD_PATH,
                                    spans.step(i),
                                    format!(
                                        "unknown traversal '{a}' (expected {})",
                                        TRAVERSAL_ATTRS.join(" or ")
                                    ),
                                );
                            }
                        }
                    }
                }
                if !saw_selector {
                    self.emit(
                        Severity::Warning,
                        Q_BAD_PATH,
                        spans.root,
                        "'has' path selects no nodes (no [\"selector\"] step); it never matches"
                            .into(),
                    );
                }
                self.template(tpl);
            }
        }
    }

    fn check_root(&mut self, path: &Path, alias: &str, span: Span) -> bool {
        if path.root != alias {
            self.emit(
                Severity::Error,
                Q_UNKNOWN_ALIAS,
                span,
                format!(
                    "unknown alias '{}' (the query declares '{alias}')",
                    path.root
                ),
            );
            return false;
        }
        true
    }

    fn unknown_attr(&mut self, attr: &str, span: Span) {
        let known: Vec<&str> = TEXT_ATTRS.iter().chain(NUM_ATTRS).copied().collect();
        self.emit(
            Severity::Error,
            Q_UNKNOWN_ATTR,
            span,
            format!(
                "unknown attribute '{attr}' (expected one of {})",
                known.join(", ")
            ),
        );
    }

    /// Compile-check a node selector and (when layer names are known) warn
    /// or error if it cannot match any layer of any version.
    fn selector(&mut self, sel: &str, span: Span, missing_severity: Severity) {
        let compiled = match Selector::compile(sel) {
            Ok(c) => c,
            Err(e) => {
                self.emit(
                    Severity::Error,
                    Q_BAD_SELECTOR,
                    span,
                    format!("bad selector: {e}"),
                );
                return;
            }
        };
        if let Some(layers) = &self.ctx.layer_names {
            if !layers.iter().any(|l| compiled.is_match(l)) {
                self.emit(
                    missing_severity,
                    Q_UNKNOWN_LAYER,
                    span,
                    format!("selector \"{sel}\" matches no layer in any model version"),
                );
            }
        }
    }

    fn template(&mut self, tpl: &NodeTemplate) {
        let span = self.finder.ident(&tpl.ty);
        if !TEMPLATES.contains(&tpl.ty.as_str()) {
            self.emit(
                Severity::Error,
                Q_UNKNOWN_TEMPLATE,
                span,
                format!(
                    "unknown node template '{}' (expected one of {})",
                    tpl.ty,
                    TEMPLATES.join(", ")
                ),
            );
            return;
        }
        if tpl.ty == "POOL" {
            if let Some(Literal::Str(kind)) = tpl.args.first() {
                if !kind.eq_ignore_ascii_case("max") && !kind.eq_ignore_ascii_case("avg") {
                    let aspan = self.finder.string(kind);
                    self.emit(
                        Severity::Error,
                        Q_TEMPLATE_ARG,
                        aspan,
                        format!("POOL kind must be \"MAX\" or \"AVG\", got \"{kind}\""),
                    );
                }
            }
        }
        if matches!(tpl.ty.as_str(), "FULL" | "CONV") {
            if let Some(Literal::Str(s)) = tpl.args.first() {
                let aspan = self.finder.string(s);
                self.emit(
                    Severity::Warning,
                    Q_TEMPLATE_ARG,
                    aspan,
                    format!("{} expects a numeric size as its first argument", tpl.ty),
                );
            }
        }
        if let Some(Literal::Num(rate)) = tpl.args.first() {
            if tpl.ty == "DROPOUT" && !(0.0..1.0).contains(rate) {
                let aspan = self.finder.number(*rate);
                self.emit(
                    Severity::Error,
                    Q_TEMPLATE_ARG,
                    aspan,
                    format!("DROPOUT rate must be in [0, 1), got {rate}"),
                );
            }
        }
    }

    // ---- path span helper ---------------------------------------------

    fn path_spans(&mut self, path: &Path) -> PathSpans {
        let root = self.finder.ident(&path.root);
        let steps = path
            .steps
            .iter()
            .map(|s| match s {
                PathStep::Attr(a) => self.finder.ident(a),
                PathStep::Selector(sel) => self.finder.string(sel),
            })
            .collect();
        PathSpans { root, steps }
    }
}

struct PathSpans {
    root: Span,
    steps: Vec<Span>,
}

impl PathSpans {
    /// Span of step `i`, falling back to the root span.
    fn step(&self, i: usize) -> Span {
        self.steps.get(i).copied().unwrap_or(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn errs(src: &str) -> Vec<Diagnostic> {
        check(src, &AnalyzeContext::default()).unwrap()
    }

    fn with_layers(src: &str, layers: &[&str]) -> Vec<Diagnostic> {
        let ctx = AnalyzeContext {
            layer_names: Some(layers.iter().map(|s| s.to_string()).collect()),
            ..Default::default()
        };
        check(src, &ctx).unwrap()
    }

    #[test]
    fn clean_queries_produce_no_diagnostics() {
        for q in [
            r#"select m1 where m1.name like "alexnet%" and m1.accuracy >= 0.5"#,
            r#"select m1 where m1["conv*"].next has POOL("MAX")"#,
            r#"construct m2 from m1 mutate m1["conv1"].insert = RELU("r$1")"#,
            r#"evaluate m from "x%" vary config.base_lr in [0.1, 0.01] keep top(5, m["loss"], 100)"#,
        ] {
            assert_eq!(errs(q), vec![], "query: {q}");
        }
    }

    #[test]
    fn unknown_attribute_is_rejected_with_span() {
        let src = r#"select m1 where m1.flavor > 3"#;
        let d = errs(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Q_UNKNOWN_ATTR);
        assert_eq!(d[0].severity, Severity::Error);
        // The span covers exactly the attribute name.
        assert_eq!(&src[d[0].span.start..d[0].span.end], "flavor");
    }

    #[test]
    fn unknown_alias_is_rejected() {
        let d = errs(r#"select m1 where m2.accuracy > 0.5"#);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Q_UNKNOWN_ALIAS);
    }

    #[test]
    fn type_mismatches_are_rejected() {
        // like on a numeric attribute.
        let d = errs(r#"select m1 where m1.accuracy like "0.9%""#);
        assert!(d.iter().any(|d| d.code == Q_TYPE_MISMATCH), "{d:?}");
        // numeric comparison on a text attribute.
        let src = r#"select m1 where m1.name > 3"#;
        let d = errs(src);
        assert!(d.iter().any(|d| d.code == Q_TYPE_MISMATCH));
        // string literal in a numeric comparison.
        let d = errs(r#"select m1 where m1.accuracy > "high""#);
        assert!(d.iter().any(|d| d.code == Q_TYPE_MISMATCH));
    }

    #[test]
    fn bad_traversal_and_selector_order() {
        let d = errs(r#"select m1 where m1["conv*"].sideways has RELU"#);
        assert!(d.iter().any(|d| d.code == Q_BAD_PATH), "{d:?}");
    }

    #[test]
    fn unknown_template_and_bad_args() {
        let d = errs(r#"select m1 where m1["conv*"] has WIBBLE"#);
        assert!(d.iter().any(|d| d.code == Q_UNKNOWN_TEMPLATE));
        let src = r#"select m1 where m1["conv*"] has POOL("MEDIAN")"#;
        let d = errs(src);
        assert!(d.iter().any(|d| d.code == Q_TEMPLATE_ARG), "{d:?}");
        let span = d.iter().find(|d| d.code == Q_TEMPLATE_ARG).unwrap().span;
        assert_eq!(&src[span.start..span.end], "\"MEDIAN\"");
        let d = errs(r#"construct m2 from m1 mutate m1["fc*"].insert = DROPOUT(1.5)"#);
        assert!(d.iter().any(|d| d.code == Q_TEMPLATE_ARG));
    }

    #[test]
    fn vary_domain_errors() {
        let d = errs(r#"evaluate m from "x%" vary config.learning_speed in [0.1]"#);
        assert!(d.iter().any(|d| d.code == Q_UNKNOWN_CONFIG_KEY));
        let d = errs(r#"evaluate m from "x%" vary config.base_lr in []"#);
        assert!(d.iter().any(|d| d.code == Q_EMPTY_DOMAIN));
        let d = errs(r#"evaluate m from "x%" vary config.base_lr in ["fast"]"#);
        assert!(d.iter().any(|d| d.code == Q_BAD_GRID_VALUE));
    }

    #[test]
    fn keep_domain_errors() {
        let d = errs(r#"evaluate m from "x%" keep top(5, m["f1"], 100)"#);
        assert!(d.iter().any(|d| d.code == Q_UNKNOWN_METRIC));
        let d = errs(r#"evaluate m from "x%" keep top(0, m["loss"], 100)"#);
        assert!(d.iter().any(|d| d.code == Q_EMPTY_DOMAIN));
    }

    #[test]
    fn nested_evaluate_is_rejected() {
        let d = errs(r#"evaluate m from (evaluate n from "x%") keep top(1, m["loss"], 10)"#);
        assert!(d.iter().any(|d| d.code == Q_NESTED_EVALUATE));
    }

    #[test]
    fn unknown_layers_flagged_when_networks_known() {
        let layers = ["conv1", "relu1", "fc2"];
        // Slice endpoints that exist nowhere: error.
        let d = with_layers(
            r#"slice m2 from m1 mutate m2.input = m1["conv9"] and m2.output = m1["fc2"]"#,
            &layers,
        );
        assert_eq!(d.iter().filter(|d| d.code == Q_UNKNOWN_LAYER).count(), 1);
        assert_eq!(d[0].severity, Severity::Error);
        // Wildcards that do match: clean.
        let d = with_layers(
            r#"slice m2 from m1 mutate m2.input = m1["conv*"] and m2.output = m1["fc*"]"#,
            &layers,
        );
        assert_eq!(d, vec![]);
        // `has` with a missing layer only warns (a future model may match).
        let d = with_layers(r#"select m1 where m1["pool9"] has RELU"#, &layers);
        assert!(d
            .iter()
            .any(|d| d.code == Q_UNKNOWN_LAYER && d.severity == Severity::Warning));
    }

    #[test]
    fn dataset_and_config_registration_checks() {
        let ctx = AnalyzeContext {
            layer_names: None,
            configs: Some(["base".to_string()].into()),
            datasets: Some(["train-a".to_string()].into()),
        };
        let d = check(
            r#"evaluate m from "x%" with config = "missing" vary config.input_data in ["train-b"]"#,
            &ctx,
        )
        .unwrap();
        assert!(d
            .iter()
            .any(|d| d.code == Q_UNKNOWN_CONFIG && d.severity == Severity::Warning));
        assert!(d
            .iter()
            .any(|d| d.code == Q_UNKNOWN_DATASET && d.severity == Severity::Error));
        let d = check(
            r#"evaluate m from "x%" with config = "base" vary config.input_data in ["train-a"]"#,
            &ctx,
        )
        .unwrap();
        assert_eq!(d, vec![]);
    }

    #[test]
    fn bad_selector_syntax_is_rejected() {
        // An unclosed capture group fails selector compilation.
        let d = errs(r#"select m1 where m1["conv*($1"] has RELU"#);
        assert!(
            d.iter()
                .any(|d| d.code == Q_BAD_SELECTOR || d.code == Q_BAD_PATH),
            "{d:?}"
        );
    }
}
