//! # mh-dql
//!
//! DQL — the SQL-inspired domain-specific language for model exploration
//! and enumeration (§III-B of the ModelHub paper). Four query forms:
//!
//! * `select` — filter model versions by metadata and structural
//!   conditions (`m["conv[1,3,5]"].next has POOL("MAX")`);
//! * `slice` — extract a reusable sub-network between two layers;
//! * `construct … mutate` — derive new architectures by inserting or
//!   deleting layers at selector-matched positions;
//! * `evaluate … with / vary / keep` — enumerate (model × hyperparameter)
//!   combinations, train them, and keep the top-k / thresholded winners,
//!   committing them back into the repository with lineage.
//!
//! ```no_run
//! use mh_dql::Executor;
//! # fn demo(repo: &mh_dlv::Repository) -> Result<(), mh_dql::DqlError> {
//! let exec = Executor::new(repo);
//! let result = exec.run(r#"select m1 where m1.name like "alexnet%""#)?;
//! # let _ = result; Ok(())
//! # }
//! ```

pub mod analyze;
pub mod ast;
pub mod exec;
pub mod optimizer;
pub mod parser;
pub mod selector;
pub mod token;

pub use analyze::{AnalyzeContext, Diagnostic, Severity};
pub use ast::{Query, SelectQuery};
pub use exec::{DerivedModel, EvalOutcome, Executor, QueryResult};
pub use optimizer::optimize;
pub use parser::{parse, ParseError};
pub use selector::{substitute, Selector, SelectorError};

/// Errors from DQL parsing or execution.
#[derive(Debug)]
pub enum DqlError {
    Parse(ParseError),
    Selector(SelectorError),
    Dlv(mh_dlv::DlvError),
    Network(mh_dnn::NetworkError),
    UnknownDataset(String),
    BadQuery(&'static str),
}

impl std::fmt::Display for DqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "parse error: {e}"),
            Self::Selector(e) => write!(f, "selector error: {e}"),
            Self::Dlv(e) => write!(f, "repository error: {e}"),
            Self::Network(e) => write!(f, "network error: {e}"),
            Self::UnknownDataset(d) => write!(f, "unknown dataset '{d}'"),
            Self::BadQuery(m) => write!(f, "bad query: {m}"),
        }
    }
}

impl std::error::Error for DqlError {}
