//! LSB-first bit-level reader and writer used by the Huffman coder.
//!
//! Bits are packed into bytes least-significant-bit first, matching the
//! DEFLATE convention: the first bit written becomes bit 0 of byte 0.

use crate::CompressError;

/// Accumulates bits LSB-first into a byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Pending bits, low bits first.
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `flush_acc`).
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with a capacity hint for the underlying byte buffer.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Write the low `n` bits of `value` (n <= 57 so the accumulator never
    /// overflows before the flush below).
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits supports at most 57 bits per call");
        debug_assert!(
            n == 64 || value < (1u64 << n),
            "value does not fit in n bits"
        );
        self.acc |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.buf.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Number of complete bytes plus any partial byte currently buffered.
    pub fn byte_len(&self) -> usize {
        self.buf.len() + usize::from(self.nbits > 0)
    }

    /// Pad the final partial byte with zero bits and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push((self.acc & 0xff) as u8);
        }
        self.buf
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 {
            let Some(&b) = self.data.get(self.pos) else {
                break;
            };
            self.acc |= u64::from(b) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read exactly `n` bits; errors if the stream is exhausted.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CompressError> {
        debug_assert!(n <= 57);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(CompressError::UnexpectedEof);
            }
        }
        if n == 0 {
            return Ok(0);
        }
        let v = self.acc & ((1u64 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Peek up to `n` bits without consuming; missing bits read as zero.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        if self.nbits < n {
            self.refill();
        }
        if n == 0 {
            0
        } else {
            self.acc & ((1u64 << n) - 1)
        }
    }

    /// Consume `n` bits previously peeked. `n` must not exceed the number of
    /// bits actually available.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<(), CompressError> {
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(CompressError::UnexpectedEof);
            }
        }
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Total bits remaining (including buffered ones).
    pub fn bits_remaining(&self) -> usize {
        (self.data.len() - self.pos) * 8 + self.nbits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let values: Vec<(u64, u32)> = vec![
            (0b1, 1),
            (0b10, 2),
            (0b101, 3),
            (0x7f, 7),
            (0xff, 8),
            (0x1234, 16),
            (0xdead_beef, 32),
            (0x1f_ffff_ffff, 37),
            (0, 0),
            (1, 1),
        ];
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v, "width {n}");
        }
    }

    #[test]
    fn eof_detected() {
        let bytes = [0xffu8];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert!(matches!(r.read_bits(1), Err(CompressError::UnexpectedEof)));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011_0110, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(4), 0b0110);
        assert_eq!(r.peek_bits(4), 0b0110);
        r.consume(4).unwrap();
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
    }

    #[test]
    fn partial_final_byte_is_zero_padded() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b11]);
    }
}
