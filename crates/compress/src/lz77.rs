//! LZ77 tokenization with a hash-chain match finder.
//!
//! Produces a stream of literals and (length, distance) matches using the
//! DEFLATE parameters: a 32 KiB window, match lengths 3..=258. Higher
//! compression levels enable lazy matching and longer hash chains.

/// Sliding-window size in bytes.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum encodable match length.
pub const MIN_MATCH: usize = 3;
/// Maximum encodable match length.
pub const MAX_MATCH: usize = 258;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `dist` bytes back.
    Match {
        len: u16,
        dist: u16,
    },
}

/// Effort knobs derived from the compression level.
#[derive(Debug, Clone, Copy)]
pub struct MatcherConfig {
    /// Maximum hash-chain positions examined per match attempt.
    pub max_chain: usize,
    /// Stop searching once a match at least this long is found.
    pub good_enough: usize,
    /// Defer emitting a match by one byte if the next position matches longer.
    pub lazy: bool,
}

impl MatcherConfig {
    pub fn fast() -> Self {
        Self {
            max_chain: 8,
            good_enough: 32,
            lazy: false,
        }
    }
    pub fn default_level() -> Self {
        Self {
            max_chain: 64,
            good_enough: 128,
            lazy: true,
        }
    }
    pub fn best() -> Self {
        Self {
            max_chain: 1024,
            good_enough: MAX_MATCH,
            lazy: true,
        }
    }
}

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    let v =
        u32::from(data[pos]) | (u32::from(data[pos + 1]) << 8) | (u32::from(data[pos + 2]) << 16);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

const SIMD_UNKNOWN: u8 = 0;
// On x86_64 this level is unreachable (SSE2 is baseline), so the const is
// referenced only on other targets.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
const SIMD_SCALAR: u8 = 1;
#[cfg(target_arch = "x86_64")]
const SIMD_SSE2: u8 = 2;
#[cfg(target_arch = "x86_64")]
const SIMD_AVX2: u8 = 3;

static SIMD_LEVEL: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(SIMD_UNKNOWN);

/// Runtime-detected vector width for the match finder, cached per
/// process: AVX2 (32-byte compares), the x86_64 SSE2 baseline (16-byte),
/// or the scalar 8-bytes-at-a-time fallback on other architectures.
fn simd_level() -> u8 {
    let l = SIMD_LEVEL.load(std::sync::atomic::Ordering::Relaxed);
    if l != SIMD_UNKNOWN {
        return l;
    }
    #[cfg(target_arch = "x86_64")]
    let detected = if std::arch::is_x86_feature_detected!("avx2") {
        SIMD_AVX2
    } else {
        SIMD_SSE2
    };
    #[cfg(not(target_arch = "x86_64"))]
    let detected = SIMD_SCALAR;
    SIMD_LEVEL.store(detected, std::sync::atomic::Ordering::Relaxed);
    detected
}

/// Longest common prefix of `data[a..]` and `data[b..]`, capped at
/// MAX_MATCH. `a < b` always holds (candidates sit earlier in the
/// window), so every read below ends at or before `b + max <= data.len()`.
///
/// The hottest loop in archival: every hash-chain candidate funnels
/// through here, so the compare width is runtime-dispatched. All three
/// widths return the identical length (exact byte-prefix semantics — no
/// floats), pinned by the equivalence proptests in `simd_match_tests`.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize) -> usize {
    let max = (data.len() - b).min(MAX_MATCH);
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 presence established by runtime detection.
        SIMD_AVX2 => unsafe { match_len_avx2(data, a, b, max) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SIMD_SSE2 => unsafe { match_len_sse2(data, a, b, max) },
        _ => match_len_tail(data, a, b, max, 0),
    }
}

/// Scalar compare from offset `l`: 8 bytes at a time, then bytewise.
/// Also the tail loop for the vector paths.
#[inline]
fn match_len_tail(data: &[u8], a: usize, b: usize, max: usize, mut l: usize) -> usize {
    while l + 8 <= max {
        let x = u64::from_le_bytes(data[a + l..a + l + 8].try_into().expect("fixed-size chunk"));
        let y = u64::from_le_bytes(data[b + l..b + l + 8].try_into().expect("fixed-size chunk"));
        let xor = x ^ y;
        if xor != 0 {
            return l + (xor.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < max && data[a + l] == data[b + l] {
        l += 1;
    }
    l
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// mh-audit: trusted(total: loads bounded by l+16 <= max <= len-b with a < b; equivalence proptests in simd_match_tests)
unsafe fn match_len_sse2(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    use std::arch::x86_64::*;
    let p = data.as_ptr();
    let mut l = 0usize;
    while l + 16 <= max {
        // SAFETY: l + 16 <= max = min(len - b, MAX_MATCH) and a < b, so
        // both 16-byte loads end at or before data.len().
        let x = _mm_loadu_si128(p.add(a + l).cast());
        let y = _mm_loadu_si128(p.add(b + l).cast());
        let mask = _mm_movemask_epi8(_mm_cmpeq_epi8(x, y)) as u32;
        if mask != 0xFFFF {
            return l + (!mask).trailing_zeros() as usize;
        }
        l += 16;
    }
    match_len_tail(data, a, b, max, l)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// mh-audit: trusted(total: loads bounded by l+32 <= max <= len-b with a < b; equivalence proptests in simd_match_tests)
unsafe fn match_len_avx2(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    use std::arch::x86_64::*;
    let p = data.as_ptr();
    let mut l = 0usize;
    while l + 32 <= max {
        // SAFETY: l + 32 <= max = min(len - b, MAX_MATCH) and a < b, so
        // both 32-byte loads end at or before data.len().
        let x = _mm256_loadu_si256(p.add(a + l).cast());
        let y = _mm256_loadu_si256(p.add(b + l).cast());
        let mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, y)) as u32;
        if mask != u32::MAX {
            return l + (!mask).trailing_zeros() as usize;
        }
        l += 32;
    }
    match_len_tail(data, a, b, max, l)
}

/// Reusable hash-chain buffers so repeated tokenizations (e.g. one per
/// byte plane during archival) do not reallocate the `head`/`prev` tables.
#[derive(Debug, Default)]
pub struct MatcherScratch {
    head: Vec<i32>,
    prev: Vec<i32>,
}

impl MatcherScratch {
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, len: usize) {
        self.head.clear();
        self.head.resize(HASH_SIZE, -1);
        self.prev.clear();
        self.prev.resize(len, -1);
    }
}

/// Hash-chain match finder over the whole input buffer.
struct Matcher<'a, 's> {
    data: &'a [u8],
    head: &'s mut Vec<i32>,
    prev: &'s mut Vec<i32>,
    cfg: MatcherConfig,
}

impl<'a, 's> Matcher<'a, 's> {
    fn new(data: &'a [u8], cfg: MatcherConfig, scratch: &'s mut MatcherScratch) -> Self {
        scratch.reset(data.len());
        Self {
            data,
            head: &mut scratch.head,
            prev: &mut scratch.prev,
            cfg,
        }
    }

    /// Insert position `pos` into the hash chains (requires pos+2 < len).
    #[inline]
    fn insert(&mut self, pos: usize) {
        if pos + MIN_MATCH > self.data.len() {
            return;
        }
        let h = hash3(self.data, pos);
        self.prev[pos] = self.head[h];
        self.head[h] = pos as i32;
    }

    /// Best match at `pos` looking back through the chain, or None.
    fn find(&self, pos: usize) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > self.data.len() {
            return None;
        }
        let h = hash3(self.data, pos);
        let mut cand = self.head[h];
        let min_pos = pos.saturating_sub(WINDOW_SIZE) as i64;
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = self.cfg.max_chain;
        while cand >= 0 && i64::from(cand) >= min_pos && chain > 0 {
            let c = cand as usize;
            debug_assert!(c < pos);
            let l = match_len(self.data, c, pos);
            if l > best_len {
                best_len = l;
                best_dist = pos - c;
                if l >= self.cfg.good_enough {
                    break;
                }
            }
            cand = self.prev[c];
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Tokenize `data` into an LZ77 token stream.
pub fn tokenize(data: &[u8], cfg: MatcherConfig) -> Vec<Token> {
    let mut scratch = MatcherScratch::new();
    let mut out = Vec::new();
    tokenize_into(data, cfg, &mut scratch, &mut out);
    out
}

/// [`tokenize`] writing into a reusable token buffer with reusable
/// hash-chain state. `out` is cleared first.
pub fn tokenize_into(
    data: &[u8],
    cfg: MatcherConfig,
    scratch: &mut MatcherScratch,
    out: &mut Vec<Token>,
) {
    out.clear();
    out.reserve(data.len() / 2 + 16);
    let mut m = Matcher::new(data, cfg, scratch);
    let mut pos = 0usize;
    while pos < data.len() {
        let found = m.find(pos);
        match found {
            None => {
                out.push(Token::Literal(data[pos]));
                m.insert(pos);
                pos += 1;
            }
            Some((mut len, mut dist)) => {
                // Lazy matching: peek one byte ahead; if strictly longer,
                // emit a literal now and take the later match. Track which
                // positions already entered the dictionary so no position is
                // inserted twice (a double insert creates a hash-chain
                // self-loop).
                let mut insert_from = pos;
                if cfg.lazy && len < cfg.good_enough && pos + 1 < data.len() {
                    m.insert(pos);
                    insert_from = pos + 1;
                    if let Some((l2, d2)) = m.find(pos + 1) {
                        if l2 > len {
                            out.push(Token::Literal(data[pos]));
                            pos += 1;
                            len = l2;
                            dist = d2;
                        }
                    }
                }
                out.push(Token::Match {
                    len: len as u16,
                    dist: dist as u16,
                });
                // Positions inside the match still feed the dictionary.
                let end = (pos + len).min(data.len());
                for p in insert_from..end {
                    m.insert(p);
                }
                pos = end;
            }
        }
    }
}

/// Reconstruct the original bytes from a token stream.
pub fn detokenize(tokens: &[Token], size_hint: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size_hint);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let start = out.len() - dist;
                // Overlapping copies are the point of LZ77; copy bytewise.
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], cfg: MatcherConfig) {
        let toks = tokenize(data, cfg);
        let back = detokenize(&toks, data.len());
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny() {
        for cfg in [
            MatcherConfig::fast(),
            MatcherConfig::default_level(),
            MatcherConfig::best(),
        ] {
            roundtrip(b"", cfg);
            roundtrip(b"a", cfg);
            roundtrip(b"ab", cfg);
            roundtrip(b"abc", cfg);
        }
    }

    #[test]
    fn repetitive_input_uses_matches() {
        let data: Vec<u8> = b"abcabcabcabcabcabcabcabc".to_vec();
        let toks = tokenize(&data, MatcherConfig::default_level());
        assert!(toks.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(detokenize(&toks, data.len()), data);
    }

    #[test]
    fn overlapping_match_run() {
        let data = vec![7u8; 1000];
        let toks = tokenize(&data, MatcherConfig::best());
        assert!(
            toks.len() < 30,
            "run of equal bytes should compress to few tokens, got {}",
            toks.len()
        );
        assert_eq!(detokenize(&toks, data.len()), data);
    }

    #[test]
    fn pseudo_random_roundtrip() {
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        for cfg in [
            MatcherConfig::fast(),
            MatcherConfig::default_level(),
            MatcherConfig::best(),
        ] {
            roundtrip(&data, cfg);
        }
    }

    #[test]
    fn long_distance_within_window() {
        let mut data = vec![0u8; 0];
        data.extend_from_slice(b"the quick brown fox jumps over the lazy dog");
        data.extend(std::iter::repeat_n(b'x', 20_000));
        data.extend_from_slice(b"the quick brown fox jumps over the lazy dog");
        roundtrip(&data, MatcherConfig::best());
    }
}

#[cfg(test)]
mod simd_match_tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// All compiled match_len implementations on one (data, a, b) input.
    fn assert_match_len_agrees(data: &[u8], a: usize, b: usize) {
        let max = (data.len() - b).min(MAX_MATCH);
        let want = match_len_tail(data, a, b, max, 0);
        assert_eq!(match_len(data, a, b), want, "dispatched a={a} b={b}");
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: SSE2 is baseline on x86_64.
            let got = unsafe { match_len_sse2(data, a, b, max) };
            assert_eq!(got, want, "sse2 a={a} b={b}");
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 presence just checked.
                let got = unsafe { match_len_avx2(data, a, b, max) };
                assert_eq!(got, want, "avx2 a={a} b={b}");
            }
        }
    }

    #[test]
    fn mismatch_at_every_lane_boundary() {
        // A long equal run with a single planted mismatch at offsets
        // straddling the 8/16/32-byte compare widths, plus the fully
        // equal capped-at-MAX_MATCH case.
        for planted in [
            0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 257, 258, 300,
        ] {
            let mut data = vec![0xABu8; 700];
            let b = 350usize;
            if b + planted < data.len() {
                data[b + planted] ^= 0x01;
            }
            assert_match_len_agrees(&data, 0, b);
        }
    }

    proptest! {
        #[test]
        fn match_len_equivalence_on_random_inputs(
            data in vec(0u8..4, 2..400),
            split in any::<u16>(),
        ) {
            // Low-entropy bytes make long common prefixes likely; try
            // every candidate position against a pseudo-random anchor.
            let b = 1 + (split as usize) % (data.len() - 1);
            for a in 0..b {
                assert_match_len_agrees(&data, a, b);
            }
        }
    }
}
