//! Byte-level run-length encoding.
//!
//! Useful for extremely repetitive inputs (e.g. zeroed byte planes) where it
//! beats LZ77 header overhead. Format: a sequence of `(control, ...)` where
//! control < 128 means "copy the next control+1 literal bytes" and
//! control >= 128 means "repeat the next byte control-126 times" (runs of
//! 2..=129).

use crate::CompressError;

const MAX_LITERALS: usize = 128;
const MAX_RUN: usize = 129;
const MIN_RUN: usize = 3;

/// RLE-encode `data`.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, start: usize, end: usize| {
        let mut s = start;
        while s < end {
            let n = (end - s).min(MAX_LITERALS);
            out.push((n - 1) as u8);
            out.extend_from_slice(&data[s..s + n]);
            s += n;
        }
    };

    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < MAX_RUN {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literals(&mut out, lit_start, i);
            out.push((run - 2 + 128) as u8);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, lit_start, data.len());
    out
}

/// Decode an RLE stream; `orig_len` is validated against the result.
/// Total on arbitrary input: truncation and over-length streams are
/// errors, and the initial allocation is bounded regardless of the
/// declared length.
pub fn decode(data: &[u8], orig_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(orig_len.min(crate::MAX_PREALLOC_BYTES));
    let mut i = 0usize;
    while let Some(&ctrl) = data.get(i) {
        i += 1;
        if ctrl < 128 {
            let n = ctrl as usize + 1;
            let lits = data.get(i..i + n).ok_or(CompressError::UnexpectedEof)?;
            out.extend_from_slice(lits);
            i += n;
        } else {
            let n = ctrl as usize - 128 + 2;
            let b = *data.get(i).ok_or(CompressError::UnexpectedEof)?;
            i += 1;
            out.extend(std::iter::repeat_n(b, n));
        }
        if out.len() > orig_len {
            return Err(CompressError::Corrupt("RLE output exceeds declared length"));
        }
    }
    if out.len() != orig_len {
        return Err(CompressError::Corrupt("RLE output length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let enc = encode(data);
        assert_eq!(decode(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn basic_cases() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aaa");
        roundtrip(b"aaab");
        roundtrip(b"abcabcabc");
    }

    #[test]
    fn long_runs_compress() {
        let data = vec![0u8; 100_000];
        let enc = encode(&data);
        assert!(
            enc.len() < 2000,
            "all-zero input should shrink massively: {}",
            enc.len()
        );
        assert_eq!(decode(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn literal_heavy_input_bounded_expansion() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let enc = encode(&data);
        // Worst case adds one control byte per 128 literals.
        assert!(enc.len() <= data.len() + data.len() / 128 + 16);
        roundtrip(&data);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let mut data = Vec::new();
        for i in 0..500u32 {
            data.extend(std::iter::repeat_n((i % 7) as u8, (i % 11) as usize + 1));
            data.push(255 - (i % 5) as u8);
        }
        roundtrip(&data);
    }
}
