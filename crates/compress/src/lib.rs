//! # mh-compress
//!
//! A from-scratch general-purpose lossless byte compressor, the ModelHub
//! substitute for zlib: LZ77 (32 KiB window, hash-chain match finder, lazy
//! matching) followed by canonical length-limited Huffman coding, wrapped in
//! a small self-describing container with an Adler-32 integrity check.
//!
//! The compressor also evaluates raw storage and run-length encoding and
//! keeps whichever payload is smallest, so worst-case expansion is a few
//! bytes of header.
//!
//! ```
//! use mh_compress::{compress, decompress, Level};
//! let data = b"high-order bytes of float matrices have low entropy".repeat(8);
//! let packed = compress(&data, Level::Default);
//! assert!(packed.len() < data.len());
//! assert_eq!(decompress(&packed).unwrap(), data);
//! ```

pub mod bitio;
pub mod format;
pub mod huffman;
pub mod lz77;
pub mod rle;

use format::{adler32, read_varint, write_varint, MAGIC, METHOD_LZ_HUFF, METHOD_RLE, METHOD_STORE};

/// Compression-ratio histogram buckets (original/compressed, >= 1 shrank).
const RATIO_BUCKETS: &[f64] = &[1.0, 1.5, 2.0, 3.0, 5.0, 10.0];

/// Hard ceiling on the declared decompressed size. A container claiming
/// more than this is rejected before any allocation, so a few attacker
/// bytes can never demand an arbitrarily large buffer. Matches the hub's
/// per-object cap.
pub const MAX_DECOMPRESSED_BYTES: usize = 1 << 30;

/// Initial allocation granted on the declared length alone; beyond this
/// the output buffer grows only as decoded bytes actually materialize,
/// so the worst-case resident set tracks real payload, not the header.
pub(crate) const MAX_PREALLOC_BYTES: usize = 1 << 20;

/// Pre-register this crate's metric series in the global mh-obs registry
/// so they appear (at zero) in `/metrics` before any (de)compression runs.
pub fn register_metrics() {
    let _ = mh_obs::counter!("compress_calls_total");
    let _ = mh_obs::counter!("compress_bytes_in_total");
    let _ = mh_obs::counter!("compress_bytes_out_total");
    let _ = mh_obs::counter!("compress_matchfind_us_total");
    let _ = mh_obs::histogram!("compress_ratio", RATIO_BUCKETS);
    let _ = mh_obs::counter!("decompress_calls_total");
    let _ = mh_obs::counter!("decompress_bytes_in_total");
    let _ = mh_obs::counter!("decompress_bytes_out_total");
    let _ = mh_obs::counter!("decompress_errors_total");
}

/// Errors produced while decoding a compressed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The stream ended before decoding completed.
    UnexpectedEof,
    /// Structural corruption with a static description.
    Corrupt(&'static str),
    /// Magic bytes did not match the MHZ container.
    BadMagic,
    /// Unknown method byte.
    UnknownMethod(u8),
    /// Adler-32 mismatch after decoding.
    ChecksumMismatch { expected: u32, actual: u32 },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            Self::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
            Self::BadMagic => write!(f, "not an MHZ container"),
            Self::UnknownMethod(m) => write!(f, "unknown compression method {m}"),
            Self::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#x}, got {actual:#x}"
                )
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// Compression effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// Greedy matching, short chains. Fastest.
    Fast,
    /// Lazy matching, moderate chains. Comparable to zlib level 6, which is
    /// what the paper's evaluation used.
    #[default]
    Default,
    /// Lazy matching, deep chains. Slowest, densest.
    Best,
}

impl Level {
    fn matcher(self) -> lz77::MatcherConfig {
        match self {
            Level::Fast => lz77::MatcherConfig::fast(),
            Level::Default => lz77::MatcherConfig::default_level(),
            Level::Best => lz77::MatcherConfig::best(),
        }
    }
}

/// Reusable compression state: hash-chain tables and token buffer, so hot
/// loops (per-plane compression during parallel archival) do not pay a
/// fresh multi-hundred-KiB allocation per call. One `Scratch` per worker
/// thread; see `mh_par::parallel_map_init`.
#[derive(Debug, Default)]
pub struct Scratch {
    matcher: lz77::MatcherScratch,
    tokens: Vec<lz77::Token>,
    /// Container buffer reused by [`compressed_len_with`].
    buf: Vec<u8>,
}

impl Scratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compress `data` into an MHZ container.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    compress_into(data, level, &mut scratch, &mut out);
    out
}

/// [`compress`] writing into a caller-owned output buffer (cleared first)
/// with reusable matcher state. Produces byte-identical containers to
/// [`compress`].
pub fn compress_into(data: &[u8], level: Level, scratch: &mut Scratch, out: &mut Vec<u8>) {
    // Match finding dominates compression cost; time it only when span
    // tracing is on so the disabled path stays clock-read-free.
    // mh-compress sits below mh-par in the dependency graph, so the
    // facade's now() is out of reach; this is a span-only timestamp,
    // gated off unless tracing is enabled.
    // mh-audit: allow(A104, span-only timestamp below mh-par; facade now() unreachable)
    let matchfind_start = mh_obs::enabled().then(std::time::Instant::now);
    lz77::tokenize_into(
        data,
        level.matcher(),
        &mut scratch.matcher,
        &mut scratch.tokens,
    );
    if let Some(t) = matchfind_start {
        mh_obs::counter!("compress_matchfind_us_total").add(t.elapsed().as_micros() as u64);
    }
    let lz = format::encode_tokens(&scratch.tokens);
    let rle = rle::encode(data);

    let (method, payload) = if lz.len() <= rle.len() && lz.len() < data.len() {
        (METHOD_LZ_HUFF, lz.as_slice())
    } else if rle.len() < data.len() {
        (METHOD_RLE, rle.as_slice())
    } else {
        (METHOD_STORE, data)
    };

    out.clear();
    out.reserve(payload.len() + 16);
    out.extend_from_slice(&MAGIC);
    out.push(method);
    write_varint(out, data.len() as u64);
    out.extend_from_slice(&adler32(data).to_le_bytes());
    out.extend_from_slice(payload);

    mh_obs::counter!("compress_calls_total").inc();
    mh_obs::counter!("compress_bytes_in_total").add(data.len() as u64);
    mh_obs::counter!("compress_bytes_out_total").add(out.len() as u64);
    if !data.is_empty() {
        mh_obs::histogram!("compress_ratio", RATIO_BUCKETS)
            .observe(data.len() as f64 / out.len() as f64);
    }
}

/// Decompress an MHZ container produced by [`compress`].
///
/// Total on arbitrary input: corrupt, truncated, or hostile containers
/// produce an error, never a panic, and never an allocation larger than
/// [`MAX_DECOMPRESSED_BYTES`].
// mh-audit: no_panic_zone
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    let out = decompress_inner(data);
    mh_obs::counter!("decompress_calls_total").inc();
    mh_obs::counter!("decompress_bytes_in_total").add(data.len() as u64);
    match &out {
        Ok(plain) => {
            mh_obs::counter!("decompress_bytes_out_total").add(plain.len() as u64);
        }
        Err(_) => mh_obs::counter!("decompress_errors_total").inc(),
    }
    out
}

fn decompress_inner(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    if data.get(..4) != Some(MAGIC.as_slice()) {
        return Err(CompressError::BadMagic);
    }
    let method = *data.get(4).ok_or(CompressError::UnexpectedEof)?;
    let mut pos = 5usize;
    let orig_len = read_varint(data, &mut pos)? as usize;
    if orig_len > MAX_DECOMPRESSED_BYTES {
        return Err(CompressError::Corrupt("declared length exceeds cap"));
    }
    let checksum_bytes = data
        .get(pos..pos.saturating_add(4))
        .ok_or(CompressError::UnexpectedEof)?;
    let expected = u32::from_le_bytes(
        checksum_bytes
            .try_into()
            .map_err(|_| CompressError::UnexpectedEof)?,
    );
    pos = pos.saturating_add(4);
    let payload = data.get(pos..).unwrap_or_default();
    let out = match method {
        METHOD_STORE => {
            if payload.len() != orig_len {
                return Err(CompressError::Corrupt("stored length mismatch"));
            }
            payload.to_vec()
        }
        METHOD_RLE => rle::decode(payload, orig_len)?,
        METHOD_LZ_HUFF => format::decode_tokens(payload, orig_len)?,
        m => return Err(CompressError::UnknownMethod(m)),
    };
    let actual = adler32(&out);
    if actual != expected {
        return Err(CompressError::ChecksumMismatch { expected, actual });
    }
    Ok(out)
}

/// Compressed size without keeping the container (used by PAS cost
/// estimation when only the footprint matters).
pub fn compressed_len(data: &[u8], level: Level) -> usize {
    compress(data, level).len()
}

/// [`compressed_len`] with reusable scratch state: the allocation-light
/// variant for tight measurement loops. Delegates to [`compress_into`] so
/// the reported size can never diverge from the real container.
pub fn compressed_len_with(data: &[u8], level: Level, scratch: &mut Scratch) -> usize {
    let mut out = std::mem::take(&mut scratch.buf);
    compress_into(data, level, scratch, &mut out);
    let n = out.len();
    scratch.buf = out;
    n
}

/// Compression ratio `original / compressed` (>= 1.0 means it shrank).
pub fn ratio(data: &[u8], level: Level) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    data.len() as f64 / compress(data, level).len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_roundtrip_all_levels() {
        let data = b"abcabcabc the quick brown fox".repeat(50);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let c = compress(&data, level);
            assert_eq!(decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn empty_input() {
        let c = compress(b"", Level::Default);
        assert_eq!(decompress(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn incompressible_input_falls_back_to_store() {
        let mut x = 0x243F6A88u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let c = compress(&data, Level::Default);
        assert!(
            c.len() <= data.len() + 16,
            "expansion bounded: {} vs {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn all_zero_uses_few_bytes() {
        let data = vec![0u8; 1 << 16];
        let c = compress(&data, Level::Default);
        assert!(c.len() < 1024, "zeros should crush: {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn checksum_catches_payload_bitflip() {
        let data = b"integrity matters for archived parameters".repeat(30);
        let mut c = compress(&data, Level::Default);
        let idx = c.len() - 3;
        c[idx] ^= 0x40;
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decompress(b"NOPE...."), Err(CompressError::BadMagic));
        assert_eq!(decompress(b""), Err(CompressError::BadMagic));
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = b"some data to compress".repeat(20);
        let c = compress(&data, Level::Default);
        for cut in [5, 8, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn scratch_reuse_is_byte_identical() {
        let inputs: Vec<Vec<u8>> = vec![
            b"abcabcabc the quick brown fox".repeat(50),
            vec![0u8; 1 << 14],
            (0..5000u32).map(|i| (i % 251) as u8).collect(),
            Vec::new(),
        ];
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for data in &inputs {
            for level in [Level::Fast, Level::Default, Level::Best] {
                compress_into(data, level, &mut scratch, &mut out);
                assert_eq!(out, compress(data, level));
                assert_eq!(compressed_len_with(data, level, &mut scratch), out.len());
            }
        }
    }

    #[test]
    fn level_ordering_on_compressible_data() {
        let data: Vec<u8> = (0..20_000u32).map(|i| ((i / 64) % 17) as u8).collect();
        let fast = compress(&data, Level::Fast).len();
        let best = compress(&data, Level::Best).len();
        assert!(
            best <= fast + 64,
            "best ({best}) should not lose to fast ({fast})"
        );
    }
}
