//! The MHZ container format.
//!
//! Layout: `magic(4) | method(1) | orig_len(varint) | checksum(4) | payload`.
//! Methods: 0 = stored, 1 = RLE, 2 = LZ77+Huffman. The compressor tries the
//! method implied by the level and falls back to whichever encoding is
//! smallest, so output is never much larger than the input.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{sorted_code_lengths, Decoder, Encoder, MAX_BITS};
use crate::lz77::{self, Token};
use crate::CompressError;

pub const MAGIC: [u8; 4] = *b"MHZ1";

pub const METHOD_STORE: u8 = 0;
pub const METHOD_RLE: u8 = 1;
pub const METHOD_LZ_HUFF: u8 = 2;

/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Size of the literal/length alphabet: 256 literals + EOB + 29 length codes.
const NUM_LITLEN: usize = 286;
const NUM_DIST: usize = 30;

/// DEFLATE length code table: (base length, extra bits) for codes 257..=285.
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// DEFLATE distance code table: (base distance, extra bits) for codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Map a match length (3..=258) to (code index 0..29, extra bits value).
#[inline]
fn length_code(len: u16) -> (usize, u16, u8) {
    debug_assert!((3..=258).contains(&len));
    // Linear scan is fine: table is tiny and this is encode-side only.
    for i in (0..29).rev() {
        if len >= LEN_BASE[i] {
            return (i, len - LEN_BASE[i], LEN_EXTRA[i]);
        }
    }
    unreachable!("length below minimum")
}

/// Map a distance (1..=32768) to (code index, extra value, extra bits).
#[inline]
fn dist_code(dist: u16) -> (usize, u16, u8) {
    debug_assert!(dist >= 1);
    for i in (0..30).rev() {
        if dist >= DIST_BASE[i] {
            return (i, dist - DIST_BASE[i], DIST_EXTRA[i]);
        }
    }
    unreachable!("distance below minimum")
}

/// Unsigned LEB128.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

// mh-audit: source(length decoded from attacker-controlled container header)
pub fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or(CompressError::UnexpectedEof)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(CompressError::Corrupt("varint too long"));
        }
    }
}

/// Adler-32 checksum (the zlib integrity check).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65521;
    let (mut a, mut b) = (1u32, 0u32);
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Serialize code-length tables: each length is 4 bits (0..=15).
fn write_lengths(w: &mut BitWriter, lens: &[u8]) {
    for &l in lens {
        debug_assert!(u32::from(l) <= MAX_BITS);
        w.write_bits(u64::from(l), 4);
    }
}

fn read_lengths(r: &mut BitReader<'_>, n: usize) -> Result<Vec<u8>, CompressError> {
    let mut lens = vec![0u8; n];
    for l in lens.iter_mut() {
        *l = r.read_bits(4)? as u8;
    }
    Ok(lens)
}

/// Encode a token stream as a Huffman-coded payload.
pub fn encode_tokens(tokens: &[Token]) -> Vec<u8> {
    // Gather frequencies.
    let mut lit_freq = vec![0u64; NUM_LITLEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    for t in tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lc, _, _) = length_code(len);
                lit_freq[257 + lc] += 1;
                let (dc, _, _) = dist_code(dist);
                dist_freq[dc] += 1;
            }
        }
    }
    lit_freq[EOB] += 1;
    // Guarantee at least one distance symbol so the table is decodable.
    if dist_freq.iter().all(|&f| f == 0) {
        dist_freq[0] = 1;
    }
    let lit_lens = sorted_code_lengths(&lit_freq, MAX_BITS);
    let dist_lens = sorted_code_lengths(&dist_freq, MAX_BITS);
    let lit_enc = Encoder::from_lengths(&lit_lens).expect("fresh lengths are valid");
    let dist_enc = Encoder::from_lengths(&dist_lens).expect("fresh lengths are valid");

    let mut w = BitWriter::with_capacity(tokens.len());
    write_lengths(&mut w, &lit_lens);
    write_lengths(&mut w, &dist_lens);
    for t in tokens {
        match *t {
            Token::Literal(b) => lit_enc.write(&mut w, b as usize),
            Token::Match { len, dist } => {
                let (lc, lextra, lbits) = length_code(len);
                lit_enc.write(&mut w, 257 + lc);
                if lbits > 0 {
                    w.write_bits(u64::from(lextra), u32::from(lbits));
                }
                let (dc, dextra, dbits) = dist_code(dist);
                dist_enc.write(&mut w, dc);
                if dbits > 0 {
                    w.write_bits(u64::from(dextra), u32::from(dbits));
                }
            }
        }
    }
    lit_enc.write(&mut w, EOB);
    w.finish()
}

/// Decode a Huffman payload back into raw bytes (`orig_len` is a capacity
/// hint and final-size check).
pub fn decode_tokens(payload: &[u8], orig_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut r = BitReader::new(payload);
    let lit_lens = read_lengths(&mut r, NUM_LITLEN)?;
    let dist_lens = read_lengths(&mut r, NUM_DIST)?;
    let lit_dec = Decoder::from_lengths(&lit_lens)?;
    let dist_dec = Decoder::from_lengths(&dist_lens)?;
    let mut out: Vec<u8> = Vec::with_capacity(orig_len.min(crate::MAX_PREALLOC_BYTES));
    loop {
        let sym = lit_dec.read(&mut r)?;
        if sym < 256 {
            out.push(sym as u8);
        } else if sym == EOB {
            break;
        } else {
            let lc = sym.wrapping_sub(257);
            let (lbase, lbits) = match (LEN_BASE.get(lc), LEN_EXTRA.get(lc)) {
                (Some(&b), Some(&e)) => (b, e),
                _ => return Err(CompressError::Corrupt("invalid length code")),
            };
            let extra = if lbits > 0 {
                r.read_bits(u32::from(lbits))? as u16
            } else {
                0
            };
            let len = usize::from(lbase) + usize::from(extra);
            let dc = dist_dec.read(&mut r)?;
            let (dbase, dbits) = match (DIST_BASE.get(dc), DIST_EXTRA.get(dc)) {
                (Some(&b), Some(&e)) => (b, e),
                _ => return Err(CompressError::Corrupt("invalid distance code")),
            };
            let dextra = if dbits > 0 {
                r.read_bits(u32::from(dbits))? as u16
            } else {
                0
            };
            let dist = usize::from(dbase) + usize::from(dextra);
            let Some(start) = out.len().checked_sub(dist) else {
                return Err(CompressError::Corrupt("distance exceeds output"));
            };
            for i in 0..len {
                // `start + i < out.len()` holds because dist >= 1 and the
                // push below grows `out` every iteration; `get` keeps the
                // invariant checked rather than assumed.
                let b = out
                    .get(start + i)
                    .copied()
                    .ok_or(CompressError::Corrupt("back-reference out of range"))?;
                out.push(b);
            }
        }
        if out.len() > orig_len {
            return Err(CompressError::Corrupt("output exceeds declared length"));
        }
    }
    if out.len() != orig_len {
        return Err(CompressError::Corrupt("output length mismatch"));
    }
    Ok(out)
}

/// Tokenize + entropy-code `data` at the given matcher configuration.
pub fn lz_huff_compress(data: &[u8], cfg: lz77::MatcherConfig) -> Vec<u8> {
    let tokens = lz77::tokenize(data, cfg);
    encode_tokens(&tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lz77::MatcherConfig;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn adler32_known_value() {
        // "Wikipedia" has a documented Adler-32 of 0x11E60398.
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        assert_eq!(adler32(b""), 1);
    }

    #[test]
    fn length_and_distance_codes_cover_ranges() {
        for len in 3u16..=258 {
            let (c, extra, bits) = length_code(len);
            assert_eq!(LEN_BASE[c] + extra, len);
            assert!(extra < (1 << bits) || bits == 0 && extra == 0);
        }
        for dist in 1u16..=32767 {
            let (c, extra, bits) = dist_code(dist);
            assert_eq!(DIST_BASE[c] + extra, dist);
            assert!(u32::from(extra) < (1u32 << bits) || bits == 0 && extra == 0);
        }
    }

    #[test]
    fn payload_roundtrip() {
        let data = b"hello hello hello hello world world world".repeat(20);
        let payload = lz_huff_compress(&data, MatcherConfig::default_level());
        let back = decode_tokens(&payload, data.len()).unwrap();
        assert_eq!(back, data);
        assert!(payload.len() < data.len());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let payload = lz_huff_compress(b"", MatcherConfig::fast());
        let back = decode_tokens(&payload, 0).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_payload_is_an_error_not_a_panic() {
        let data = b"some reasonably long text that compresses".repeat(10);
        let mut payload = lz_huff_compress(&data, MatcherConfig::fast());
        let mid = payload.len() / 2;
        payload[mid] ^= 0xa5;
        // Must return an error or wrong-length data, never panic.
        let _ = decode_tokens(&payload, data.len());
    }
}
