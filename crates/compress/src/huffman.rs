//! Canonical, length-limited Huffman coding.
//!
//! Code lengths are produced with the package-merge algorithm, which yields
//! optimal prefix codes under a maximum-length constraint (we use 15 bits,
//! the DEFLATE limit). Codes are then assigned canonically so the decoder
//! only needs the length table.

use crate::bitio::{BitReader, BitWriter};
use crate::CompressError;

/// Maximum code length in bits.
pub const MAX_BITS: u32 = 15;

/// Package-merge over frequencies that must already be sorted ascending.
fn code_lengths(freqs: &[u64], max_bits: u32) -> Vec<u8> {
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let active: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match active.len() {
        0 => return lengths,
        1 => {
            lengths[active[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    debug_assert!(
        (1usize << max_bits) >= active.len(),
        "max_bits too small for alphabet"
    );

    // Package-merge. A "package" is a set of original items; we only need
    // each package's total weight and, per original item, how many of the
    // first `level` coin rows it appears in. We track per-item counts via
    // item index lists; packages are small for our alphabets (<= 288), so
    // the quadratic merge cost is fine.
    #[derive(Clone)]
    struct Pkg {
        weight: u64,
        /// Count of each active item contained in this package.
        items: Vec<u32>,
    }

    let m = active.len();
    let singletons: Vec<Pkg> = active
        .iter()
        .enumerate()
        .map(|(j, &sym)| Pkg {
            weight: freqs[sym],
            items: {
                let mut v = vec![0u32; m];
                v[j] = 1;
                v
            },
        })
        .collect();

    // `prev` holds the solution row from the previous level.
    let mut prev: Vec<Pkg> = Vec::new();
    for _level in 0..max_bits {
        // Merge singletons with pairwise packages of `prev`.
        let mut paired: Vec<Pkg> = Vec::with_capacity(prev.len() / 2);
        let mut it = prev.chunks_exact(2);
        for pair in &mut it {
            let mut items = pair[0].items.clone();
            for (a, b) in items.iter_mut().zip(&pair[1].items) {
                *a += b;
            }
            paired.push(Pkg {
                weight: pair[0].weight + pair[1].weight,
                items,
            });
        }
        let mut merged: Vec<Pkg> = Vec::with_capacity(singletons.len() + paired.len());
        let (mut i, mut j) = (0, 0);
        while i < singletons.len() || j < paired.len() {
            let take_single = j >= paired.len()
                || (i < singletons.len() && singletons[i].weight <= paired[j].weight);
            if take_single {
                merged.push(singletons[i].clone());
                i += 1;
            } else {
                merged.push(paired[j].clone());
                j += 1;
            }
        }
        prev = merged;
    }

    // Take the cheapest 2m - 2 packages; each occurrence of item j adds one
    // bit to its code length.
    let mut counts = vec![0u32; m];
    for pkg in prev.iter().take(2 * m - 2) {
        for (c, k) in counts.iter_mut().zip(&pkg.items) {
            *c += k;
        }
    }
    for (j, &sym) in active.iter().enumerate() {
        debug_assert!(counts[j] >= 1 && counts[j] <= max_bits);
        lengths[sym] = counts[j] as u8;
    }
    lengths
}

/// Compute optimal length-limited code lengths for symbol frequencies.
///
/// Symbols with zero frequency get length 0 (absent from the code). If only
/// one symbol occurs it is assigned length 1 so the decoder stays a prefix
/// code.
pub fn sorted_code_lengths(freqs: &[u64], max_bits: u32) -> Vec<u8> {
    // Package-merge requires singletons sorted by weight, so sort here and
    // un-permute at the end.
    let n = freqs.len();
    let mut order: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    order.sort_by_key(|&i| freqs[i]);
    let sorted: Vec<u64> = order.iter().map(|&i| freqs[i]).collect();
    let lens = code_lengths(&sorted, max_bits);
    let mut out = vec![0u8; n];
    for (j, &sym) in order.iter().enumerate() {
        out[sym] = lens[j];
    }
    out
}

/// Canonical encoder: symbol -> (code bits, length).
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<u16>,
    lengths: Vec<u8>,
}

impl Encoder {
    /// Build from a code-length table (canonical assignment: shorter codes
    /// first, ties broken by symbol order; codes are emitted LSB-first so we
    /// store them bit-reversed).
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CompressError> {
        // Lengths arrive from attacker-controlled containers on the decode
        // path, so every table access below is `get`-based: the length
        // bound check and the array access are one operation.
        let mut bl_count = [0u32; (MAX_BITS + 1) as usize];
        for &l in lengths {
            match bl_count.get_mut(l as usize) {
                Some(c) => *c += 1,
                None => return Err(CompressError::Corrupt("code length exceeds limit")),
            }
        }
        if let Some(c0) = bl_count.get_mut(0) {
            *c0 = 0;
        }
        let mut next_code = [0u32; (MAX_BITS + 2) as usize];
        let mut code = 0u32;
        for bits in 1..=MAX_BITS as usize {
            code = (code + bl_count.get(bits - 1).copied().unwrap_or(0)) << 1;
            if let Some(nc) = next_code.get_mut(bits) {
                *nc = code;
            }
        }
        let mut codes = vec![0u16; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 {
                continue;
            }
            // l <= MAX_BITS is established by the bl_count pass above.
            let c = match next_code.get_mut(l as usize) {
                Some(nc) => {
                    let c = *nc;
                    *nc += 1;
                    c
                }
                None => return Err(CompressError::Corrupt("code length exceeds limit")),
            };
            if c >= (1 << l) {
                return Err(CompressError::Corrupt("over-subscribed code"));
            }
            // Reverse the l-bit code for LSB-first emission.
            let mut rev = 0u32;
            for b in 0..l {
                if c & (1 << b) != 0 {
                    rev |= 1 << (l - 1 - b);
                }
            }
            if let Some(slot) = codes.get_mut(sym) {
                *slot = rev as u16;
            }
        }
        Ok(Self {
            codes,
            lengths: lengths.to_vec(),
        })
    }

    #[inline]
    pub fn write(&self, w: &mut BitWriter, sym: usize) {
        let l = self.lengths[sym];
        debug_assert!(l > 0, "writing symbol with zero length: {sym}");
        w.write_bits(u64::from(self.codes[sym]), u32::from(l));
    }

    #[inline]
    pub fn length(&self, sym: usize) -> u8 {
        self.lengths[sym]
    }
}

/// Table-driven canonical decoder.
///
/// Uses a single-level lookup table of `MAX_BITS` bits: simple and fast
/// enough for archival workloads (32K entries per table).
#[derive(Debug, Clone)]
pub struct Decoder {
    /// Indexed by the next MAX_BITS input bits (LSB-first): packed
    /// (symbol << 4) | length. length == 0 marks an invalid entry.
    table: Vec<u32>,
}

impl Decoder {
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CompressError> {
        let enc = Encoder::from_lengths(lengths)?;
        let mut table = vec![0u32; 1 << MAX_BITS];
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let code = u32::from(enc.codes.get(sym).copied().unwrap_or(0));
            let step = 1u32 << l;
            let mut idx = code;
            while let Some(slot) = table.get_mut(idx as usize) {
                *slot = ((sym as u32) << 4) | u32::from(l);
                idx += step;
            }
        }
        Ok(Self { table })
    }

    /// Decode one symbol from the reader.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<usize, CompressError> {
        let bits = r.peek_bits(MAX_BITS) as usize;
        // `bits < 1 << MAX_BITS` always holds; a zero entry (also the
        // out-of-range default) decodes as "invalid code" below.
        let entry = self.table.get(bits).copied().unwrap_or(0);
        let len = entry & 0xf;
        if len == 0 {
            return Err(CompressError::Corrupt("invalid Huffman code"));
        }
        r.consume(len)?;
        Ok((entry >> 4) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(freqs: &[u64], stream: &[usize]) {
        let lens = sorted_code_lengths(freqs, MAX_BITS);
        let enc = Encoder::from_lengths(&lens).unwrap();
        let dec = Decoder::from_lengths(&lens).unwrap();
        let mut w = BitWriter::new();
        for &s in stream {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.read(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (0..100).map(|i| (i * i + 1) as u64).collect();
        let lens = sorted_code_lengths(&freqs, MAX_BITS);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
    }

    #[test]
    fn single_symbol_alphabet() {
        let mut freqs = vec![0u64; 10];
        freqs[3] = 42;
        let lens = sorted_code_lengths(&freqs, MAX_BITS);
        assert_eq!(lens[3], 1);
        roundtrip(&freqs, &[3, 3, 3, 3]);
    }

    #[test]
    fn two_symbols() {
        let freqs = vec![5, 1];
        roundtrip(&freqs, &[0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn skewed_distribution_roundtrip() {
        let mut freqs = vec![0u64; 256];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = if i < 4 { 10_000 } else { 1 + (i as u64 % 7) };
        }
        let stream: Vec<usize> = (0..2000).map(|i| (i * 37) % 256).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn length_limit_respected_under_extreme_skew() {
        // Fibonacci-like frequencies force deep trees in unlimited Huffman.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = sorted_code_lengths(&freqs, MAX_BITS);
        assert!(lens.iter().all(|&l| u32::from(l) <= MAX_BITS));
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9);
        let stream: Vec<usize> = (0..500).map(|i| i % 40).collect();
        roundtrip(&freqs, &stream);
    }
}
