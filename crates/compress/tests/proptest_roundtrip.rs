//! Property-based roundtrip tests for the compressor.

use mh_compress::{compress, decompress, Level};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let c = compress(&data, level);
            prop_assert_eq!(decompress(&c).unwrap(), data.clone());
        }
    }

    #[test]
    fn roundtrip_low_entropy(
        seed in any::<u8>(),
        runs in proptest::collection::vec((any::<u8>(), 1usize..200), 0..64)
    ) {
        let mut data = vec![seed];
        for (b, n) in runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        let c = compress(&data, Level::Default);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_structured(blocks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..32)) {
        // Repeat a small set of blocks to exercise back-references heavily.
        let mut data = Vec::new();
        for i in 0..200usize {
            data.extend_from_slice(&blocks[i % blocks.len()]);
        }
        let c = compress(&data, Level::Best);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(mut data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // With or without a valid magic prefix, arbitrary bytes must decode
        // to Ok or Err, never panic.
        let _ = decompress(&data);
        if data.len() >= 4 {
            data[..4].copy_from_slice(b"MHZ1");
            let _ = decompress(&data);
        }
    }

    #[test]
    fn compression_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(compress(&data, Level::Default), compress(&data, Level::Default));
    }
}
