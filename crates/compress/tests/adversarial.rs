//! Adversarial decoder inputs: hand-crafted containers that are
//! structurally plausible but semantically broken must all be rejected
//! without panics.

use mh_compress::format::{write_varint, METHOD_LZ_HUFF, METHOD_RLE, METHOD_STORE};
use mh_compress::huffman::{Decoder, Encoder};
use mh_compress::{compress, decompress, CompressError, Level};

fn container(method: u8, orig_len: u64, checksum: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"MHZ1");
    out.push(method);
    write_varint(&mut out, orig_len);
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn unknown_method_byte() {
    let c = container(9, 0, 0, &[]);
    assert!(matches!(
        decompress(&c),
        Err(CompressError::UnknownMethod(9))
    ));
}

#[test]
fn stored_length_lies() {
    // Claims 10 bytes, ships 3.
    let c = container(METHOD_STORE, 10, 0, b"abc");
    assert!(decompress(&c).is_err());
}

#[test]
fn rle_declares_more_than_it_decodes() {
    // A single literal control (copy 1 byte) but orig_len 100.
    let c = container(METHOD_RLE, 100, 0, &[0, b'x']);
    assert!(decompress(&c).is_err());
    // Run that overshoots the declared length.
    let c = container(METHOD_RLE, 2, 0, &[255, b'y']); // run of 129
    assert!(decompress(&c).is_err());
}

#[test]
fn huffman_payload_with_headers_only() {
    // A LZ payload that ends inside the code-length tables.
    let c = container(METHOD_LZ_HUFF, 5, 0, &[0x12, 0x34]);
    assert!(decompress(&c).is_err());
}

#[test]
fn checksum_must_match_even_for_store() {
    let c = container(METHOD_STORE, 3, 0xdeadbeef, b"abc");
    assert!(matches!(
        decompress(&c),
        Err(CompressError::ChecksumMismatch { .. })
    ));
}

#[test]
fn over_subscribed_code_lengths_rejected() {
    // Three symbols of length 1 violate Kraft; the table builder must
    // refuse rather than emit overlapping codes.
    let lens = vec![1u8, 1, 1];
    assert!(Encoder::from_lengths(&lens).is_err());
    assert!(Decoder::from_lengths(&lens).is_err());
}

#[test]
fn valid_but_incomplete_code_space_decodes_or_errors() {
    // A single symbol of length 2 leaves most of the code space invalid;
    // decoding bits that land in the hole must error, not panic.
    let lens = vec![0u8, 2];
    let dec = Decoder::from_lengths(&lens).unwrap();
    let data = [0xffu8];
    let mut r = mh_compress::bitio::BitReader::new(&data);
    // Whatever happens, no panic; either symbol 1 or an error.
    let _ = dec.read(&mut r);
}

#[test]
fn roundtrip_many_sizes_near_block_boundaries() {
    for n in [0usize, 1, 2, 3, 255, 256, 257, 4095, 4096, 4097] {
        let data: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
        for level in [Level::Fast, Level::Best] {
            let c = compress(&data, level);
            assert_eq!(decompress(&c).unwrap(), data, "n={n}");
        }
    }
}
