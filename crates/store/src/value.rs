//! Typed values and predicates for the metadata catalog.

use std::cmp::Ordering;
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Real,
    Text,
    Blob,
}

/// A dynamically-typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Real(f64),
    Text(String),
    Blob(Vec<u8>),
}

impl Value {
    pub fn type_of(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Real(_) => Some(ColumnType::Real),
            Value::Text(_) => Some(ColumnType::Text),
            Value::Blob(_) => Some(ColumnType::Blob),
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            Value::Blob(b) => Some(b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Real(_) => 1, // numerics compare together
            Value::Text(_) => 2,
            Value::Blob(_) => 3,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < numerics (Int/Real compared numerically) < Text
    /// < Blob. NaN sorts via `total_cmp`.
    fn cmp(&self, other: &Self) -> Ordering {
        let r = self.rank().cmp(&other.rank());
        if r != Ordering::Equal {
            return r;
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Blob(a), Value::Blob(b)) => a.cmp(b),
            // Mixed / real numerics.
            (a, b) => {
                let (x, y) = (
                    a.as_real().unwrap_or(f64::NEG_INFINITY),
                    b.as_real().unwrap_or(f64::NEG_INFINITY),
                );
                x.total_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Blob(b) => write!(f, "<blob {} bytes>", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Real(f64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Blob(v)
    }
}

/// SQL-LIKE pattern matching: `%` matches any run, `_` any single char.
///
/// Iterative two-pointer matcher with greedy `%` backtracking — no
/// recursion (attacker patterns cannot blow the stack) and no slicing.
// mh-audit: no_panic_zone
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Most recent `%`: (pattern index after it, text index it last absorbed to).
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        match p.get(pi) {
            Some('%') => {
                pi += 1;
                star = Some((pi, ti));
            }
            Some('_') => {
                pi += 1;
                ti += 1;
            }
            Some(c) if t.get(ti) == Some(c) => {
                pi += 1;
                ti += 1;
            }
            _ => match star {
                // Backtrack: let the last `%` absorb one more char.
                Some((sp, st)) => {
                    pi = sp;
                    ti = st + 1;
                    star = Some((sp, st + 1));
                }
                None => return false,
            },
        }
    }
    while p.get(pi) == Some(&'%') {
        pi += 1;
    }
    pi == p.len()
}

/// A row predicate over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    True,
    Eq(String, Value),
    Ne(String, Value),
    Lt(String, Value),
    Le(String, Value),
    Gt(String, Value),
    Ge(String, Value),
    Like(String, String),
    IsNull(String),
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
}

impl Predicate {
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate against a row described by a column-lookup closure.
    pub fn eval(&self, get: &dyn Fn(&str) -> Option<Value>) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => get(c).is_some_and(|x| &x == v),
            Predicate::Ne(c, v) => get(c).is_some_and(|x| &x != v),
            Predicate::Lt(c, v) => get(c).is_some_and(|x| x < *v),
            Predicate::Le(c, v) => get(c).is_some_and(|x| x <= *v),
            Predicate::Gt(c, v) => get(c).is_some_and(|x| x > *v),
            Predicate::Ge(c, v) => get(c).is_some_and(|x| x >= *v),
            Predicate::Like(c, pat) => get(c)
                .and_then(|x| x.as_text().map(|t| like_match(pat, t)))
                .unwrap_or(false),
            Predicate::IsNull(c) => get(c).is_none_or(|x| x.is_null()),
            Predicate::And(a, b) => a.eval(get) && b.eval(get),
            Predicate::Or(a, b) => a.eval(get) || b.eval(get),
            Predicate::Not(a) => !a.eval(get),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_across_types() {
        assert!(Value::Null < Value::Int(0));
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Int(1) < Value::Real(1.5));
        assert!(Value::Real(2.5) > Value::Int(2));
        assert!(Value::Int(100) < Value::Text("a".into()));
        assert!(Value::Text("abc".into()) < Value::Text("abd".into()));
        assert!(Value::Text("z".into()) < Value::Blob(vec![0]));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("alexnet_%", "alexnet_v1"));
        assert!(like_match("alexnet_%", "alexnet_")); // % matches empty
        assert!(!like_match("alexnet_%", "alexnet")); // _ needs a char
        assert!(like_match("%conv%", "my_conv_layer"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%", ""));
        assert!(like_match("exact", "exact"));
        assert!(!like_match("exact", "exac"));
    }

    #[test]
    fn predicate_eval() {
        let get = |c: &str| -> Option<Value> {
            match c {
                "name" => Some(Value::Text("alexnet-origin1".into())),
                "accuracy" => Some(Value::Real(0.57)),
                "id" => Some(Value::Int(3)),
                "note" => Some(Value::Null),
                _ => None,
            }
        };
        assert!(Predicate::Like("name".into(), "alexnet%".into()).eval(&get));
        assert!(Predicate::Gt("accuracy".into(), Value::Real(0.5)).eval(&get));
        assert!(Predicate::Eq("id".into(), Value::Int(3))
            .and(Predicate::Lt("accuracy".into(), Value::Real(0.6)))
            .eval(&get));
        assert!(Predicate::IsNull("note".into()).eval(&get));
        assert!(!Predicate::IsNull("id".into()).eval(&get));
        assert!(!Predicate::Not(Box::new(Predicate::True)).eval(&get));
        assert!(!Predicate::Eq("missing".into(), Value::Int(1)).eval(&get));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(1.5f32).as_real(), Some(1.5));
        assert_eq!(Value::Int(2).as_real(), Some(2.0));
    }
}
