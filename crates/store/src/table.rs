//! Tables: typed columns, auto-increment row ids, predicate scans, and
//! optional secondary indexes.

use crate::codec::{self, Reader};
use crate::value::{ColumnType, Predicate, Value};
use crate::StoreError;
use std::collections::{BTreeMap, BTreeSet};

/// Row identifier (auto-assigned, never reused).
pub type RowId = u64;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: &str, ty: ColumnType) -> Self {
        Self {
            name: name.to_string(),
            ty,
            nullable: true,
        }
    }

    pub fn not_null(name: &str, ty: ColumnType) -> Self {
        Self {
            name: name.to_string(),
            ty,
            nullable: false,
        }
    }
}

/// Table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Self { columns }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate a row against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<(), StoreError> {
        if row.len() != self.columns.len() {
            return Err(StoreError::SchemaViolation("row arity mismatch"));
        }
        for (v, col) in row.iter().zip(&self.columns) {
            match v.type_of() {
                None => {
                    if !col.nullable {
                        return Err(StoreError::SchemaViolation("NULL in NOT NULL column"));
                    }
                }
                Some(t) if t == col.ty => {}
                // Int is acceptable in a Real column.
                Some(ColumnType::Int) if col.ty == ColumnType::Real => {}
                Some(_) => return Err(StoreError::SchemaViolation("type mismatch")),
            }
        }
        Ok(())
    }
}

/// Aggregate functions for [`Table::aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// A row with its id.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub id: RowId,
    pub values: Vec<Value>,
}

/// A table: schema + rows + secondary indexes.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: BTreeMap<RowId, Vec<Value>>,
    next_id: RowId,
    /// Secondary indexes: column index -> value -> row ids.
    indexes: BTreeMap<usize, BTreeMap<Value, BTreeSet<RowId>>>,
}

impl Table {
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: BTreeMap::new(),
            next_id: 1,
            indexes: BTreeMap::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row, returning its new id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId, StoreError> {
        self.schema.check_row(&values)?;
        let id = self.next_id;
        self.next_id += 1;
        for (&col, index) in self.indexes.iter_mut() {
            index.entry(values[col].clone()).or_default().insert(id);
        }
        self.rows.insert(id, values);
        Ok(id)
    }

    /// Fetch one row by id.
    pub fn get(&self, id: RowId) -> Option<Row> {
        self.rows.get(&id).map(|v| Row {
            id,
            values: v.clone(),
        })
    }

    /// Read a single cell by row id and column name.
    pub fn cell(&self, id: RowId, column: &str) -> Option<Value> {
        let col = self.schema.column_index(column)?;
        self.rows.get(&id).map(|v| v[col].clone())
    }

    /// Update one column of a row.
    pub fn update(&mut self, id: RowId, column: &str, value: Value) -> Result<(), StoreError> {
        let col = self
            .schema
            .column_index(column)
            .ok_or(StoreError::NoSuchColumn)?;
        let row = self.rows.get_mut(&id).ok_or(StoreError::NoSuchRow(id))?;
        let mut candidate = row.clone();
        candidate[col] = value.clone();
        self.schema.check_row(&candidate)?;
        if let Some(index) = self.indexes.get_mut(&col) {
            if let Some(set) = index.get_mut(&row[col]) {
                set.remove(&id);
                if set.is_empty() {
                    index.remove(&row[col]);
                }
            }
            index.entry(value.clone()).or_default().insert(id);
        }
        row[col] = value;
        Ok(())
    }

    /// Delete a row; returns whether it existed.
    pub fn delete(&mut self, id: RowId) -> bool {
        if let Some(values) = self.rows.remove(&id) {
            for (&col, index) in self.indexes.iter_mut() {
                if let Some(set) = index.get_mut(&values[col]) {
                    set.remove(&id);
                    if set.is_empty() {
                        index.remove(&values[col]);
                    }
                }
            }
            true
        } else {
            false
        }
    }

    /// Create a secondary index on a column (backfills existing rows).
    pub fn create_index(&mut self, column: &str) -> Result<(), StoreError> {
        let col = self
            .schema
            .column_index(column)
            .ok_or(StoreError::NoSuchColumn)?;
        let mut index: BTreeMap<Value, BTreeSet<RowId>> = BTreeMap::new();
        for (&id, values) in &self.rows {
            let v = values
                .get(col)
                .ok_or(StoreError::Corrupt("row shorter than schema"))?;
            index.entry(v.clone()).or_default().insert(id);
        }
        self.indexes.insert(col, index);
        Ok(())
    }

    /// All rows matching a predicate. Uses an index for top-level equality
    /// predicates when available, otherwise scans.
    pub fn select(&self, pred: &Predicate) -> Vec<Row> {
        // Index fast path for Eq on an indexed column.
        if let Predicate::Eq(cname, v) = pred {
            if let Some(col) = self.schema.column_index(cname) {
                if let Some(index) = self.indexes.get(&col) {
                    return index
                        .get(v)
                        .map(|ids| {
                            ids.iter()
                                .filter_map(|&id| self.get(id))
                                .collect::<Vec<_>>()
                        })
                        .unwrap_or_default();
                }
            }
        }
        self.rows
            .iter()
            .filter(|(_, values)| {
                let get = |name: &str| -> Option<Value> {
                    self.schema
                        .column_index(name)
                        .and_then(|i| values.get(i).cloned())
                };
                pred.eval(&get)
            })
            .map(|(&id, values)| Row {
                id,
                values: values.clone(),
            })
            .collect()
    }

    /// Iterate all rows.
    pub fn scan(&self) -> impl Iterator<Item = Row> + '_ {
        self.rows.iter().map(|(&id, values)| Row {
            id,
            values: values.clone(),
        })
    }

    /// Matching rows sorted by a column (ascending or descending), with an
    /// optional limit — the ORDER BY / LIMIT convenience used by `dlv list`
    /// style queries.
    pub fn select_ordered(
        &self,
        pred: &Predicate,
        order_by: &str,
        descending: bool,
        limit: Option<usize>,
    ) -> Result<Vec<Row>, StoreError> {
        let col = self
            .schema
            .column_index(order_by)
            .ok_or(StoreError::NoSuchColumn)?;
        let mut rows = self.select(pred);
        rows.sort_by(|a, b| {
            let ord = a.values[col].cmp(&b.values[col]);
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
        if let Some(n) = limit {
            rows.truncate(n);
        }
        Ok(rows)
    }

    /// Aggregate a numeric column over matching rows. NULLs are skipped
    /// (SQL semantics); returns None when no non-NULL value matches (except
    /// Count, which is always defined).
    pub fn aggregate(
        &self,
        pred: &Predicate,
        column: &str,
        agg: Aggregate,
    ) -> Result<Option<f64>, StoreError> {
        let col = self
            .schema
            .column_index(column)
            .ok_or(StoreError::NoSuchColumn)?;
        let values: Vec<f64> = self
            .select(pred)
            .into_iter()
            .filter_map(|r| r.values[col].as_real())
            .collect();
        Ok(match agg {
            Aggregate::Count => Some(values.len() as f64),
            Aggregate::Sum => Some(values.iter().sum()),
            Aggregate::Min => values.iter().copied().reduce(f64::min),
            Aggregate::Max => values.iter().copied().reduce(f64::max),
            Aggregate::Avg => {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            }
        })
    }

    /// Serialize (schema, rows, index column list).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::write_u32(&mut out, self.schema.columns.len() as u32);
        for c in &self.schema.columns {
            codec::write_str(&mut out, &c.name);
            codec::write_column_type(&mut out, c.ty);
            out.push(u8::from(c.nullable));
        }
        codec::write_u64(&mut out, self.next_id);
        codec::write_u64(&mut out, self.rows.len() as u64);
        for (&id, values) in &self.rows {
            codec::write_u64(&mut out, id);
            for v in values {
                codec::write_value(&mut out, v);
            }
        }
        codec::write_u32(&mut out, self.indexes.len() as u32);
        for &col in self.indexes.keys() {
            codec::write_u32(&mut out, col as u32);
        }
        out
    }

    pub fn from_reader(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        // Cap preallocation from file-declared counts; the vectors still
        // grow to the real size as decoding proceeds.
        const MAX_PREALLOC: usize = 4096;
        let ncols = r.read_u32()? as usize;
        let mut columns = Vec::with_capacity(ncols.min(MAX_PREALLOC));
        for _ in 0..ncols {
            let name = r.read_str()?;
            let ty = codec::read_column_type(r)?;
            let nullable = r.read_u8()? != 0;
            columns.push(Column { name, ty, nullable });
        }
        let schema = Schema::new(columns);
        let next_id = r.read_u64()?;
        let nrows = r.read_u64()? as usize;
        let mut rows = BTreeMap::new();
        for _ in 0..nrows {
            let id = r.read_u64()?;
            let mut values = Vec::with_capacity(ncols.min(MAX_PREALLOC));
            for _ in 0..ncols {
                values.push(codec::read_value(r)?);
            }
            rows.insert(id, values);
        }
        let mut table = Table {
            schema,
            rows,
            next_id,
            indexes: BTreeMap::new(),
        };
        let nindexes = r.read_u32()? as usize;
        for _ in 0..nindexes {
            let col = r.read_u32()? as usize;
            let name = table
                .schema
                .columns
                .get(col)
                .ok_or(StoreError::Corrupt("index on unknown column"))?
                .name
                .clone();
            table.create_index(&name)?;
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models_table() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("name", ColumnType::Text),
            Column::new("accuracy", ColumnType::Real),
            Column::new("params", ColumnType::Int),
        ]);
        let mut t = Table::new(schema);
        t.insert(vec![
            "alexnet-origin1".into(),
            0.57.into(),
            61_000_000i64.into(),
        ])
        .unwrap();
        t.insert(vec![
            "alexnet-avgv1".into(),
            0.55.into(),
            61_100_000i64.into(),
        ])
        .unwrap();
        t.insert(vec!["vgg-16".into(), 0.684.into(), 138_000_000i64.into()])
            .unwrap();
        t
    }

    #[test]
    fn insert_and_get() {
        let t = models_table();
        assert_eq!(t.len(), 3);
        let r = t.get(1).unwrap();
        assert_eq!(r.values[0], Value::Text("alexnet-origin1".into()));
        assert_eq!(t.cell(3, "accuracy"), Some(Value::Real(0.684)));
        assert!(t.get(99).is_none());
    }

    #[test]
    fn schema_enforced() {
        let mut t = models_table();
        assert!(t
            .insert(vec![Value::Null, 0.1.into(), 5i64.into()])
            .is_err());
        assert!(t
            .insert(vec!["x".into(), "not a number".into(), 5i64.into()])
            .is_err());
        assert!(t.insert(vec!["x".into(), 0.5.into()]).is_err());
        // Int accepted in Real column.
        assert!(t
            .insert(vec!["y".into(), Value::Int(1), 5i64.into()])
            .is_ok());
    }

    #[test]
    fn select_with_predicates() {
        let t = models_table();
        let alex = t.select(&Predicate::Like("name".into(), "alexnet%".into()));
        assert_eq!(alex.len(), 2);
        let good = t.select(&Predicate::Gt("accuracy".into(), Value::Real(0.56)));
        assert_eq!(good.len(), 2);
        let both = t.select(
            &Predicate::Like("name".into(), "alexnet%".into())
                .and(Predicate::Gt("accuracy".into(), Value::Real(0.56))),
        );
        assert_eq!(both.len(), 1);
        assert_eq!(both[0].values[0], Value::Text("alexnet-origin1".into()));
    }

    #[test]
    fn update_and_delete() {
        let mut t = models_table();
        t.update(1, "accuracy", Value::Real(0.60)).unwrap();
        assert_eq!(t.cell(1, "accuracy"), Some(Value::Real(0.60)));
        assert!(t.update(99, "accuracy", Value::Real(0.1)).is_err());
        assert!(t.update(1, "nope", Value::Real(0.1)).is_err());
        assert!(t.delete(2));
        assert!(!t.delete(2));
        assert_eq!(t.len(), 2);
        // Row ids are not reused.
        let id = t
            .insert(vec!["new".into(), Value::Null, Value::Null])
            .unwrap();
        assert_eq!(id, 4);
    }

    #[test]
    fn index_consistency_through_mutations() {
        let mut t = models_table();
        t.create_index("name").unwrap();
        let hit = t.select(&Predicate::Eq("name".into(), "vgg-16".into()));
        assert_eq!(hit.len(), 1);
        t.update(3, "name", Value::Text("vgg-19".into())).unwrap();
        assert!(t
            .select(&Predicate::Eq("name".into(), "vgg-16".into()))
            .is_empty());
        assert_eq!(
            t.select(&Predicate::Eq("name".into(), "vgg-19".into()))
                .len(),
            1
        );
        t.delete(3);
        assert!(t
            .select(&Predicate::Eq("name".into(), "vgg-19".into()))
            .is_empty());
        // Insert after index creation is indexed too.
        t.insert(vec!["vgg-19".into(), 0.7.into(), 1i64.into()])
            .unwrap();
        assert_eq!(
            t.select(&Predicate::Eq("name".into(), "vgg-19".into()))
                .len(),
            1
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let mut t = models_table();
        t.create_index("name").unwrap();
        let bytes = t.to_bytes();
        let mut r = Reader::new(&bytes);
        let back = Table::from_reader(&mut r).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.schema(), t.schema());
        assert_eq!(
            back.select(&Predicate::Eq("name".into(), "vgg-16".into()))
                .len(),
            1
        );
        // next_id preserved: ids keep advancing, not colliding.
        let mut back = back;
        assert_eq!(
            back.insert(vec!["z".into(), Value::Null, Value::Null])
                .unwrap(),
            4
        );
    }
}

#[cfg(test)]
mod aggregate_tests {
    use super::*;
    use crate::value::{ColumnType, Predicate, Value};

    fn metrics() -> Table {
        let mut t = Table::new(Schema::new(vec![
            Column::not_null("iter", ColumnType::Int),
            Column::new("loss", ColumnType::Real),
        ]));
        for (i, l) in [(1i64, 2.0f64), (2, 1.5), (3, 1.0), (4, 0.5)] {
            t.insert(vec![Value::Int(i), Value::Real(l)]).unwrap();
        }
        t.insert(vec![Value::Int(5), Value::Null]).unwrap();
        t
    }

    #[test]
    fn aggregates() {
        let t = metrics();
        let all = Predicate::True;
        assert_eq!(
            t.aggregate(&all, "loss", Aggregate::Count).unwrap(),
            Some(4.0)
        );
        assert_eq!(
            t.aggregate(&all, "loss", Aggregate::Sum).unwrap(),
            Some(5.0)
        );
        assert_eq!(
            t.aggregate(&all, "loss", Aggregate::Min).unwrap(),
            Some(0.5)
        );
        assert_eq!(
            t.aggregate(&all, "loss", Aggregate::Max).unwrap(),
            Some(2.0)
        );
        assert_eq!(
            t.aggregate(&all, "loss", Aggregate::Avg).unwrap(),
            Some(1.25)
        );
        // Filtered.
        let late = Predicate::Ge("iter".into(), Value::Int(3));
        assert_eq!(
            t.aggregate(&late, "loss", Aggregate::Avg).unwrap(),
            Some(0.75)
        );
        // Empty match.
        let none = Predicate::Gt("iter".into(), Value::Int(99));
        assert_eq!(t.aggregate(&none, "loss", Aggregate::Avg).unwrap(), None);
        assert_eq!(
            t.aggregate(&none, "loss", Aggregate::Count).unwrap(),
            Some(0.0)
        );
        assert!(t.aggregate(&all, "nope", Aggregate::Avg).is_err());
    }

    #[test]
    fn ordered_select_with_limit() {
        let t = metrics();
        let rows = t
            .select_ordered(&Predicate::True, "loss", false, Some(2))
            .unwrap();
        // NULL sorts first ascending.
        assert!(rows[0].values[1].is_null());
        assert_eq!(rows[1].values[1], Value::Real(0.5));
        let rows = t
            .select_ordered(&Predicate::True, "loss", true, Some(1))
            .unwrap();
        assert_eq!(rows[0].values[1], Value::Real(2.0));
        assert!(t
            .select_ordered(&Predicate::True, "ghost", false, None)
            .is_err());
    }
}
