//! # mh-store
//!
//! An embedded relational-lite metadata catalog — the ModelHub substitute
//! for sqlite3. DLV keeps structured lifecycle artifacts here: model
//! versions, network nodes/edges, lineage, hyperparameters, training
//! measurements, and file manifests.
//!
//! Features: typed columns with NULLability, auto-increment row ids,
//! predicate scans with SQL-LIKE matching, secondary indexes, and atomic
//! whole-file persistence in a hand-rolled binary format.
//!
//! ```
//! use mh_store::{Database, Schema, Column, ColumnType, Predicate};
//! let mut db = Database::new();
//! db.create_table("models", Schema::new(vec![
//!     Column::not_null("name", ColumnType::Text),
//!     Column::new("accuracy", ColumnType::Real),
//! ])).unwrap();
//! let t = db.table_mut("models").unwrap();
//! t.insert(vec!["lenet-v1".into(), 0.98.into()]).unwrap();
//! let hits = t.select(&Predicate::Like("name".into(), "lenet%".into()));
//! assert_eq!(hits.len(), 1);
//! ```

pub mod codec;
pub mod db;
pub mod table;
pub mod value;

pub use db::{Catalog, Database};
pub use table::{Aggregate, Column, Row, RowId, Schema, Table};
pub use value::{like_match, ColumnType, Predicate, Value};

/// Errors from catalog operations.
#[derive(Debug)]
pub enum StoreError {
    /// Structural corruption in a persisted catalog.
    Corrupt(&'static str),
    /// Row violates the table schema.
    SchemaViolation(&'static str),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn,
    /// Unknown row id.
    NoSuchRow(RowId),
    /// Table already exists.
    TableExists(String),
    /// Underlying filesystem error.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Corrupt(m) => write!(f, "corrupt catalog: {m}"),
            Self::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            Self::NoSuchTable(t) => write!(f, "no such table '{t}'"),
            Self::NoSuchColumn => write!(f, "no such column"),
            Self::NoSuchRow(id) => write!(f, "no such row {id}"),
            Self::TableExists(t) => write!(f, "table '{t}' already exists"),
            Self::Io(e) => write!(f, "catalog io error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}
