//! The database: a named collection of tables with whole-file persistence
//! and coarse-grained thread safety (an `mh_par::sync::RwLock` wrapper).

use crate::codec::{self, Reader, MAGIC};
use crate::table::{Schema, Table};
use crate::StoreError;
use mh_par::sync::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An in-memory database of named tables.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), StoreError> {
        if self.tables.contains_key(name) {
            return Err(StoreError::TableExists(name.to_string()));
        }
        self.tables.insert(name.to_string(), Table::new(schema));
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some()
    }

    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Serialize the whole database.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        codec::write_u32(&mut out, 1); // format version
        codec::write_u32(&mut out, self.tables.len() as u32);
        for (name, table) in &self.tables {
            codec::write_str(&mut out, name);
            codec::write_bytes(&mut out, &table.to_bytes());
        }
        out
    }

    pub fn from_bytes(data: &[u8]) -> Result<Self, StoreError> {
        if data.get(..4) != Some(MAGIC.as_slice()) {
            return Err(StoreError::Corrupt("not a catalog file"));
        }
        let mut r = Reader::new(data.get(4..).unwrap_or_default());
        let version = r.read_u32()?;
        if version != 1 {
            return Err(StoreError::Corrupt("unsupported catalog version"));
        }
        let ntables = r.read_u32()? as usize;
        let mut tables = BTreeMap::new();
        for _ in 0..ntables {
            let name = r.read_str()?;
            let body = r.read_bytes()?;
            let mut tr = Reader::new(&body);
            tables.insert(name, Table::from_reader(&mut tr)?);
        }
        Ok(Self { tables })
    }

    /// Write atomically (temp file + rename).
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes()).map_err(StoreError::Io)?;
        std::fs::rename(&tmp, path).map_err(StoreError::Io)?;
        Ok(())
    }

    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let data = std::fs::read(path).map_err(StoreError::Io)?;
        Self::from_bytes(&data)
    }
}

/// A database bound to a file, safe to share across threads.
#[derive(Debug, Clone)]
pub struct Catalog {
    inner: Arc<RwLock<Database>>,
    path: PathBuf,
}

impl Catalog {
    /// Open (or create) a catalog at `path`.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let db = if path.exists() {
            Database::load(path)?
        } else {
            Database::new()
        };
        Ok(Self {
            inner: Arc::new(RwLock::new(db)),
            path: path.to_path_buf(),
        })
    }

    /// Run a read-only closure against the database.
    pub fn read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        // mh-audit: allow(R001, the reactor never touches the catalog — this edge is by-name widening of the io ".read" call, catalog reads run on worker threads)
        f(&self.inner.read())
    }

    /// Run a mutating closure, then persist to disk.
    pub fn write<R>(
        &self,
        f: impl FnOnce(&mut Database) -> Result<R, StoreError>,
    ) -> Result<R, StoreError> {
        let mut guard = self.inner.write();
        let out = f(&mut guard)?;
        // mh-audit: allow(R004, the write guard intentionally spans the persist so on-disk state can never interleave across concurrent writers)
        guard.save(&self.path)?;
        Ok(out)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::value::{ColumnType, Predicate, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("k", ColumnType::Text),
            Column::new("v", ColumnType::Int),
        ])
    }

    #[test]
    fn create_and_query() {
        let mut db = Database::new();
        db.create_table("kv", schema()).unwrap();
        assert!(db.create_table("kv", schema()).is_err());
        db.table_mut("kv")
            .unwrap()
            .insert(vec!["a".into(), 1i64.into()])
            .unwrap();
        assert_eq!(db.table("kv").unwrap().len(), 1);
        assert!(db.table("nope").is_err());
        assert!(db.drop_table("kv"));
        assert!(!db.drop_table("kv"));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut db = Database::new();
        db.create_table("a", schema()).unwrap();
        db.create_table("b", schema()).unwrap();
        db.table_mut("a")
            .unwrap()
            .insert(vec!["x".into(), 10i64.into()])
            .unwrap();
        db.table_mut("b").unwrap().create_index("k").unwrap();
        db.table_mut("b")
            .unwrap()
            .insert(vec!["y".into(), Value::Null])
            .unwrap();
        let back = Database::from_bytes(&db.to_bytes()).unwrap();
        assert_eq!(back.table_names(), vec!["a", "b"]);
        assert_eq!(back.table("a").unwrap().len(), 1);
        assert_eq!(
            back.table("b")
                .unwrap()
                .select(&Predicate::Eq("k".into(), "y".into()))
                .len(),
            1
        );
    }

    #[test]
    fn corrupt_rejected() {
        assert!(Database::from_bytes(b"garbage").is_err());
        let mut db = Database::new();
        db.create_table("a", schema()).unwrap();
        let mut bytes = db.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Database::from_bytes(&bytes).is_err());
    }

    #[test]
    fn catalog_persistence() {
        let dir = std::env::temp_dir().join(format!("mh-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.mhs");
        {
            let cat = Catalog::open(&path).unwrap();
            cat.write(|db| {
                db.create_table("t", schema())?;
                db.table_mut("t")?
                    .insert(vec!["persisted".into(), 5i64.into()])?;
                Ok(())
            })
            .unwrap();
        }
        {
            let cat = Catalog::open(&path).unwrap();
            let n = cat.read(|db| db.table("t").unwrap().len());
            assert_eq!(n, 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
