//! Binary on-disk codec for the catalog (the offline crate set has no
//! serde format crate, so the format is hand-rolled: length-prefixed,
//! tagged values with a magic header and format version).

use crate::value::{ColumnType, Value};
use crate::StoreError;

pub const MAGIC: [u8; 4] = *b"MHS1";

pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_bytes(out, s.as_bytes());
}

pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(StoreError::Corrupt("length prefix overflows"))?;
        let s = self
            .data
            .get(self.pos..end)
            .ok_or(StoreError::Corrupt("unexpected end of catalog file"))?;
        self.pos = end;
        Ok(s)
    }

    pub fn read_u8(&mut self) -> Result<u8, StoreError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or(StoreError::Corrupt("unexpected end of catalog file"))
    }

    pub fn read_u32(&mut self) -> Result<u32, StoreError> {
        let b = self
            .take(4)?
            .try_into()
            .map_err(|_| StoreError::Corrupt("unexpected end of catalog file"))?;
        Ok(u32::from_le_bytes(b))
    }

    pub fn read_u64(&mut self) -> Result<u64, StoreError> {
        let b = self
            .take(8)?
            .try_into()
            .map_err(|_| StoreError::Corrupt("unexpected end of catalog file"))?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn read_bytes(&mut self) -> Result<Vec<u8>, StoreError> {
        let n = self.read_u64()? as usize;
        if n > self.remaining() {
            return Err(StoreError::Corrupt("length prefix exceeds file size"));
        }
        Ok(self.take(n)?.to_vec())
    }

    pub fn read_str(&mut self) -> Result<String, StoreError> {
        String::from_utf8(self.read_bytes()?)
            .map_err(|_| StoreError::Corrupt("invalid utf-8 string"))
    }
}

pub fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            out.push(2);
            out.extend_from_slice(&r.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(3);
            write_str(out, s);
        }
        Value::Blob(b) => {
            out.push(4);
            write_bytes(out, b);
        }
    }
}

pub fn read_value(r: &mut Reader<'_>) -> Result<Value, StoreError> {
    let corrupt = StoreError::Corrupt("unexpected end of catalog file");
    match r.read_u8()? {
        0 => Ok(Value::Null),
        1 => {
            let b = r.take(8)?.try_into().map_err(|_| corrupt)?;
            Ok(Value::Int(i64::from_le_bytes(b)))
        }
        2 => {
            let b = r.take(8)?.try_into().map_err(|_| corrupt)?;
            Ok(Value::Real(f64::from_le_bytes(b)))
        }
        3 => Ok(Value::Text(r.read_str()?)),
        4 => Ok(Value::Blob(r.read_bytes()?)),
        _ => Err(StoreError::Corrupt("unknown value tag")),
    }
}

pub fn write_column_type(out: &mut Vec<u8>, t: ColumnType) {
    out.push(match t {
        ColumnType::Int => 1,
        ColumnType::Real => 2,
        ColumnType::Text => 3,
        ColumnType::Blob => 4,
    });
}

pub fn read_column_type(r: &mut Reader<'_>) -> Result<ColumnType, StoreError> {
    match r.read_u8()? {
        1 => Ok(ColumnType::Int),
        2 => Ok(ColumnType::Real),
        3 => Ok(ColumnType::Text),
        4 => Ok(ColumnType::Blob),
        _ => Err(StoreError::Corrupt("unknown column type tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let values = vec![
            Value::Null,
            Value::Int(-42),
            Value::Real(3.25),
            Value::Text("hello world".into()),
            Value::Blob(vec![1, 2, 3, 0, 255]),
        ];
        let mut buf = Vec::new();
        for v in &values {
            write_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &values {
            assert_eq!(&read_value(&mut r).unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_is_error() {
        let mut buf = Vec::new();
        write_value(&mut buf, &Value::Text("something".into()));
        for cut in [0, 1, 5, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(read_value(&mut r).is_err());
        }
    }

    #[test]
    fn bogus_length_prefix_rejected() {
        // Tag = Text, length = huge.
        let mut buf = vec![3u8];
        write_u64(&mut buf, u64::MAX);
        let mut r = Reader::new(&buf);
        assert!(read_value(&mut r).is_err());
    }

    #[test]
    fn column_type_roundtrip() {
        let mut buf = Vec::new();
        for t in [
            ColumnType::Int,
            ColumnType::Real,
            ColumnType::Text,
            ColumnType::Blob,
        ] {
            write_column_type(&mut buf, t);
        }
        let mut r = Reader::new(&buf);
        assert_eq!(read_column_type(&mut r).unwrap(), ColumnType::Int);
        assert_eq!(read_column_type(&mut r).unwrap(), ColumnType::Real);
        assert_eq!(read_column_type(&mut r).unwrap(), ColumnType::Text);
        assert_eq!(read_column_type(&mut r).unwrap(), ColumnType::Blob);
    }
}
