//! Oracle-based property test: a random sequence of table operations is
//! applied both to `mh_store::Table` and to a naive `BTreeMap` model; the
//! observable state must agree at every step, with and without a secondary
//! index, and across a serialization roundtrip.

use mh_store::{codec::Reader, Column, ColumnType, Predicate, Schema, Table, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { k: i64, tag: String },
    UpdateTag { victim: usize, tag: String },
    Delete { victim: usize },
    CreateIndex,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i64>(), "[a-c]{0,3}").prop_map(|(k, tag)| Op::Insert { k, tag }),
        (any::<usize>(), "[a-c]{0,3}").prop_map(|(victim, tag)| Op::UpdateTag { victim, tag }),
        any::<usize>().prop_map(|victim| Op::Delete { victim }),
        Just(Op::CreateIndex),
    ]
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::not_null("k", ColumnType::Int),
        Column::not_null("tag", ColumnType::Text),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn table_matches_btreemap_oracle(ops in proptest::collection::vec(arb_op(), 0..64)) {
        let mut table = Table::new(schema());
        let mut oracle: BTreeMap<u64, (i64, String)> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { k, tag } => {
                    let id = table
                        .insert(vec![Value::Int(k), Value::Text(tag.clone())])
                        .unwrap();
                    oracle.insert(id, (k, tag));
                }
                Op::UpdateTag { victim, tag } => {
                    let ids: Vec<u64> = oracle.keys().copied().collect();
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[victim % ids.len()];
                    table.update(id, "tag", Value::Text(tag.clone())).unwrap();
                    oracle.get_mut(&id).unwrap().1 = tag;
                }
                Op::Delete { victim } => {
                    let ids: Vec<u64> = oracle.keys().copied().collect();
                    if ids.is_empty() {
                        prop_assert!(!table.delete(9_999_999));
                        continue;
                    }
                    let id = ids[victim % ids.len()];
                    prop_assert!(table.delete(id));
                    oracle.remove(&id);
                }
                Op::CreateIndex => {
                    table.create_index("tag").unwrap();
                }
            }

            // Full-state agreement.
            prop_assert_eq!(table.len(), oracle.len());
            for (&id, (k, tag)) in &oracle {
                let row = table.get(id).expect("row exists");
                prop_assert_eq!(&row.values[0], &Value::Int(*k));
                prop_assert_eq!(&row.values[1], &Value::Text(tag.clone()));
            }
            // Query agreement on an arbitrary tag (exercises the index
            // fast path when present).
            let probe = "a".to_string();
            let expected = oracle.values().filter(|(_, t)| *t == probe).count();
            let got = table
                .select(&Predicate::Eq("tag".into(), Value::Text(probe)))
                .len();
            prop_assert_eq!(got, expected);
        }

        // Serialization roundtrip preserves everything.
        let bytes = table.to_bytes();
        let mut r = Reader::new(&bytes);
        let back = Table::from_reader(&mut r).unwrap();
        prop_assert_eq!(back.len(), oracle.len());
        for (&id, (k, tag)) in &oracle {
            let row = back.get(id).expect("row survives roundtrip");
            prop_assert_eq!(&row.values[0], &Value::Int(*k));
            prop_assert_eq!(&row.values[1], &Value::Text(tag.clone()));
        }
    }

    #[test]
    fn like_match_agrees_with_naive(pattern in "[a-b%_]{0,6}", text in "[a-b]{0,6}") {
        // Naive O(2^n) reference for LIKE.
        fn naive(p: &[u8], t: &[u8]) -> bool {
            match p.first() {
                None => t.is_empty(),
                Some(b'%') => (0..=t.len()).any(|k| naive(&p[1..], &t[k..])),
                Some(b'_') => !t.is_empty() && naive(&p[1..], &t[1..]),
                Some(&c) => t.first() == Some(&c) && naive(&p[1..], &t[1..]),
            }
        }
        prop_assert_eq!(
            mh_store::like_match(&pattern, &text),
            naive(pattern.as_bytes(), text.as_bytes())
        );
    }
}
