//! The model-checking runtime: a cooperative scheduler that runs each test
//! body many times, choosing at every synchronization point which thread
//! advances next, and systematically enumerating those choices.
//!
//! ## Execution model
//!
//! Every model thread is a real OS thread, but **exactly one is allowed to
//! run at a time** — everyone else is parked on the execution's condvar.
//! Each instrumented operation (lock, unlock, condvar wait/notify, atomic
//! access, spawn, join, yield) calls [`Exec::op_point`]: the thread
//! declares the operation it is *about to* perform, a scheduling decision
//! picks who runs next, and the thread parks until it is chosen. Because
//! only the active thread executes user code, a schedule (the sequence of
//! decisions) fully determines the execution — runs are replayable.
//!
//! ## Exploration
//!
//! [`explore`] drives a depth-first search over schedules: each execution
//! follows a replay `plan` (the decision prefix reached by backtracking)
//! and then extends it with a default policy (keep the current thread
//! running — the zero-preemption baseline). After a run, the deepest
//! decision point with an unexplored alternative is flipped and the run
//! repeats. Two prunings bound the search:
//!
//! * **Preemption bounding**: alternatives that would preempt a still
//!   runnable thread are only explored while the path's preemption count
//!   is within the budget (`preemption_bound`).
//! * **Sleep sets**: after exploring thread `t` at a decision point, `t`
//!   is put to sleep for the point's remaining branches and stays asleep
//!   until another thread executes an operation *dependent* on `t`'s
//!   pending one (same object, not both plain loads). Schedules that only
//!   commute independent operations are never re-run.
//!
//! ## Failure detection
//!
//! A failing schedule surfaces as [`Failure`]: user panics/assertions
//! (M005), deadlocks — every live thread blocked, which covers lost
//! wakeups (M001), double-locks (M002), lock-order cycles via a
//! runtime acquisition-order graph (M003), and livelocks via a bounded
//! step budget (M004). The failure carries the decision string; setting
//! `MH_MODEL_REPLAY=<string>` re-runs exactly that schedule.

use crate::lockorder::Graph;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Sleep sets and explored sets are `u64` bitmasks over thread ids.
pub(crate) const MAX_THREADS: usize = 63;

/// Panic payload used to tear down parked threads once a failure is
/// recorded. Caught (and swallowed) at each model thread's root.
pub(crate) struct Abort;

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpKind {
    Start,
    Spawn(usize),
    Join(usize),
    Lock,
    Unlock,
    RdLock,
    RdUnlock,
    CvWait,
    NotifyOne,
    NotifyAll,
    AtomicLoad,
    AtomicStore,
    AtomicRmw,
    Yield,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Op {
    pub kind: OpKind,
    /// Primary object address (lock, condvar, atomic); 0 when none.
    pub obj: usize,
    /// Secondary object (the mutex of a condvar wait); 0 when none.
    pub obj2: usize,
}

impl Op {
    pub(crate) fn new(kind: OpKind, obj: usize) -> Self {
        Op { kind, obj, obj2: 0 }
    }
}

/// Are two operations dependent (non-commuting)? Conservative: thread
/// lifecycle ops conflict with everything; otherwise ops conflict when
/// they touch a common object unless both are plain atomic loads.
fn dependent(a: &Op, b: &Op) -> bool {
    use OpKind::*;
    let wild = |k: &OpKind| matches!(k, Start | Spawn(_) | Join(_) | Yield);
    if wild(&a.kind) || wild(&b.kind) {
        return true;
    }
    let objs = |o: &Op| [o.obj, o.obj2];
    let overlap = objs(a).iter().any(|&x| x != 0 && objs(b).contains(&x));
    if !overlap {
        return false;
    }
    !(a.kind == AtomicLoad && b.kind == AtomicLoad)
}

// ---------------------------------------------------------------------------
// Failures
// ---------------------------------------------------------------------------

/// What went wrong on a failing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Every live thread is blocked (includes lost wakeups). `M001`.
    Deadlock,
    /// A thread re-acquired a lock it already holds. `M002`.
    DoubleLock,
    /// The runtime lock acquisition graph acquired a cycle. `M003`.
    LockOrderCycle,
    /// The execution exceeded the step budget without finishing. `M004`.
    Livelock,
    /// A model thread panicked (assertion failure). `M005`.
    Panic,
    /// A replay plan diverged from the recorded schedule. `M090`.
    ReplayDivergence,
    /// More threads than the checker supports. `M091`.
    TooManyThreads,
}

impl FailureKind {
    pub fn code(self) -> &'static str {
        match self {
            FailureKind::Deadlock => "M001",
            FailureKind::DoubleLock => "M002",
            FailureKind::LockOrderCycle => "M003",
            FailureKind::Livelock => "M004",
            FailureKind::Panic => "M005",
            FailureKind::ReplayDivergence => "M090",
            FailureKind::TooManyThreads => "M091",
        }
    }
}

/// A failing schedule: what happened, on which decision string, and a
/// rendered trace. `Display` produces the full replayable report.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// One-line description, e.g. `deadlock: every live thread is blocked`.
    pub message: String,
    /// The decision string, e.g. `1,0,2` — feed to `MH_MODEL_REPLAY`.
    pub schedule: String,
    /// Which execution (1-based) of the exploration failed.
    pub iteration: usize,
    /// Human-readable per-step trace plus blocked-thread summary.
    pub trace: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "mh-model [{}] {} (iteration {})",
            self.kind.code(),
            self.message,
            self.iteration
        )?;
        write!(f, "{}", self.trace)?;
        writeln!(f, "  schedule: [{}]", self.schedule)?;
        writeln!(f, "  replay with: MH_MODEL_REPLAY={}", self.schedule)
    }
}

impl std::error::Error for Failure {}

// ---------------------------------------------------------------------------
// Per-execution state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Running, or parked at an op point waiting for its turn.
    Running,
    /// Parked in a condvar wait; not schedulable until notified.
    CvWaiting(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadSlot {
    pending: Option<Op>,
    phase: Phase,
    /// Addresses of exclusively-held locks, in acquisition order.
    held: Vec<usize>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum LockState {
    Writer(usize),
    Readers(Vec<usize>),
}

/// One recorded scheduling decision (only points with > 1 alternative are
/// recorded; forced moves are silent and cost nothing to replay).
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    pub enabled: Vec<usize>,
    pub chosen: usize,
    /// True for notify_one wake-target choices (no preemption accounting).
    pub is_wake: bool,
    pub prev_active: usize,
    pub preempt_before: usize,
    pub sleep_entry: u64,
}

pub(crate) struct ExecSt {
    // Configuration for this run.
    plan: Vec<usize>,
    /// Threads put to sleep right after the last planned decision (the
    /// alternatives already explored at the branch point).
    sleep_after_plan: u64,
    max_steps: usize,
    // Dynamic state.
    threads: Vec<ThreadSlot>,
    active: usize,
    live: usize,
    choices: Vec<Choice>,
    ops: Vec<(usize, Op)>,
    sleep: u64,
    preemptions: usize,
    locks: HashMap<usize, LockState>,
    cv_waiters: HashMap<usize, VecDeque<usize>>,
    lock_graph: Graph<usize>,
    /// Display names: address -> (kind letter, per-kind index).
    objects: HashMap<usize, (char, usize)>,
    obj_counts: HashMap<char, usize>,
    failure: Option<(FailureKind, String, String)>,
    aborting: bool,
    done: bool,
}

impl ExecSt {
    fn obj_name(&mut self, kind: char, addr: usize) -> String {
        if addr == 0 {
            return String::new();
        }
        let next = self.obj_counts.entry(kind).or_insert(0);
        let (k, i) = *self.objects.entry(addr).or_insert_with(|| {
            let i = *next;
            *next += 1;
            (kind, i)
        });
        format!("{k}{i}")
    }

    fn op_label(&mut self, op: &Op) -> String {
        match op.kind {
            OpKind::Start => "start".to_string(),
            OpKind::Spawn(t) => format!("spawn(t{t})"),
            OpKind::Join(t) => format!("join(t{t})"),
            OpKind::Lock => format!("lock({})", self.obj_name('m', op.obj)),
            OpKind::Unlock => format!("unlock({})", self.obj_name('m', op.obj)),
            OpKind::RdLock => format!("read_lock({})", self.obj_name('m', op.obj)),
            OpKind::RdUnlock => format!("read_unlock({})", self.obj_name('m', op.obj)),
            OpKind::CvWait => format!(
                "wait({}, {})",
                self.obj_name('c', op.obj),
                self.obj_name('m', op.obj2)
            ),
            OpKind::NotifyOne => format!("notify_one({})", self.obj_name('c', op.obj)),
            OpKind::NotifyAll => format!("notify_all({})", self.obj_name('c', op.obj)),
            OpKind::AtomicLoad => format!("atomic_load({})", self.obj_name('a', op.obj)),
            OpKind::AtomicStore => format!("atomic_store({})", self.obj_name('a', op.obj)),
            OpKind::AtomicRmw => format!("atomic_rmw({})", self.obj_name('a', op.obj)),
            OpKind::Yield => "yield".to_string(),
        }
    }

    /// Render the executed-op trace (tail-truncated) plus, for blocking
    /// failures, one line per live thread describing what it waits on.
    fn render_trace(&mut self, blocked_summary: bool) -> String {
        let mut out = String::new();
        if blocked_summary {
            for tid in 0..self.threads.len() {
                if self.threads[tid].phase == Phase::Finished {
                    continue;
                }
                let line = match (self.threads[tid].phase, self.threads[tid].pending) {
                    (Phase::CvWaiting(cv), _) => {
                        format!("  t{tid} blocked: wait({})", self.obj_name('c', cv))
                    }
                    (_, Some(op)) => {
                        let extra = match (op.kind, self.locks.get(&op.obj)) {
                            (OpKind::Lock, Some(LockState::Writer(h))) => {
                                format!(" (held by t{h})")
                            }
                            (OpKind::Lock, Some(LockState::Readers(r))) if !r.is_empty() => {
                                format!(" (read-held by {:?})", r)
                            }
                            _ => String::new(),
                        };
                        let label = self.op_label(&op);
                        format!("  t{tid} blocked: {label}{extra}")
                    }
                    (_, None) => format!("  t{tid}: running"),
                };
                out.push_str(&line);
                out.push('\n');
            }
        }
        let total = self.ops.len();
        let start = total.saturating_sub(40);
        out.push_str(&format!("  trace ({} of {} ops):\n", total - start, total));
        let ops: Vec<(usize, Op)> = self.ops[start..].to_vec();
        for (i, (tid, op)) in ops.iter().enumerate() {
            let label = self.op_label(op);
            out.push_str(&format!("    #{:<4} t{tid} {label}\n", start + i));
        }
        out
    }

    fn fail(&mut self, kind: FailureKind, message: String, blocked_summary: bool) {
        if self.failure.is_none() {
            let trace = self.render_trace(blocked_summary);
            self.failure = Some((kind, message, trace));
        }
        self.aborting = true;
    }

    /// Is `tid`'s pending operation startable right now?
    fn enabled(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        if t.phase != Phase::Running {
            return false;
        }
        let Some(op) = t.pending else { return false };
        match op.kind {
            OpKind::Lock => !self.locks.contains_key(&op.obj),
            OpKind::RdLock => !matches!(self.locks.get(&op.obj), Some(LockState::Writer(_))),
            OpKind::Join(target) => self.threads[target].phase == Phase::Finished,
            _ => true,
        }
    }

    fn enabled_set(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.enabled(t))
            .collect()
    }

    /// Take one scheduling decision among `enabled` (threads or, for
    /// `is_wake`, notify targets) and record it when it is a real choice.
    /// Returns the pick.
    fn decide(&mut self, enabled: Vec<usize>, is_wake: bool, prefer: Option<usize>) -> usize {
        debug_assert!(!enabled.is_empty());
        if enabled.len() == 1 {
            return enabled[0];
        }
        let step = self.choices.len();
        let chosen = if step < self.plan.len() {
            let want = self.plan[step];
            if !enabled.contains(&want) {
                self.fail(
                    FailureKind::ReplayDivergence,
                    format!(
                        "replay divergence at decision {step}: planned t{want}, enabled {:?}",
                        enabled
                    ),
                    false,
                );
                enabled[0]
            } else {
                want
            }
        } else {
            // Default policy: keep the preferred (previously running)
            // thread going if possible, avoiding sleeping threads; fall
            // back to the first enabled one.
            let awake = |t: &usize| self.sleep & (1u64 << *t) == 0;
            prefer
                .filter(|p| enabled.contains(p) && awake(p))
                .or_else(|| enabled.iter().copied().find(|t| awake(t)))
                .unwrap_or(enabled[0])
        };
        let preempt_before = self.preemptions;
        if !is_wake && chosen != self.active && enabled.contains(&self.active) {
            self.preemptions += 1;
        }
        self.choices.push(Choice {
            enabled,
            chosen,
            is_wake,
            prev_active: self.active,
            preempt_before,
            sleep_entry: self.sleep,
        });
        self.sleep &= !(1u64 << chosen);
        if self.choices.len() == self.plan.len() {
            // We just took the branch-point decision: the alternatives the
            // DFS already explored there go to sleep for this branch.
            self.sleep |= self.sleep_after_plan & !(1u64 << chosen);
        }
        chosen
    }

    /// Pick the next thread to run (after the current thread declared an
    /// op, blocked in a condvar, or finished). Handles completion and
    /// deadlock. Returns false when the execution is over (done/failed).
    fn schedule(&mut self) -> bool {
        if self.aborting {
            return false;
        }
        if self.live == 0 {
            self.done = true;
            return false;
        }
        let enabled = self.enabled_set();
        if enabled.is_empty() {
            self.fail(
                FailureKind::Deadlock,
                "deadlock: every live thread is blocked".to_string(),
                true,
            );
            return false;
        }
        let prefer = Some(self.active);
        let chosen = self.decide(enabled, false, prefer);
        self.active = chosen;
        true
    }

    /// Apply the semantics of `op` (executed by `tid`) to the scheduler
    /// state: lock bookkeeping, condvar queues, trace recording, sleep-set
    /// wakeups, lock-order checking.
    fn apply(&mut self, tid: usize, op: Op) {
        if self.ops.len() >= self.max_steps {
            self.fail(
                FailureKind::Livelock,
                format!(
                    "livelock: execution exceeded {} steps without finishing \
                     (possible lost wakeup or spin loop)",
                    self.max_steps
                ),
                true,
            );
            return;
        }
        self.ops.push((tid, op));
        // Wake sleeping threads whose pending op depends on this one.
        if self.sleep != 0 {
            for u in 0..self.threads.len() {
                if self.sleep & (1u64 << u) == 0 || u == tid {
                    continue;
                }
                if let Some(p) = self.threads[u].pending {
                    if dependent(&op, &p) {
                        self.sleep &= !(1u64 << u);
                    }
                }
            }
        }
        match op.kind {
            OpKind::Lock => {
                // Lock-order: an edge held -> acquired; a cycle means two
                // code paths acquire the same locks in opposite orders.
                let held = self.threads[tid].held.clone();
                for h in held {
                    if let Some(cycle) = self.lock_graph.add_edge(h, op.obj) {
                        let names: Vec<String> =
                            cycle.iter().map(|&a| self.obj_name('m', a)).collect();
                        self.fail(
                            FailureKind::LockOrderCycle,
                            format!("lock-order cycle: {}", names.join(" -> ")),
                            false,
                        );
                        return;
                    }
                }
                self.locks.insert(op.obj, LockState::Writer(tid));
                self.threads[tid].held.push(op.obj);
            }
            OpKind::Unlock => {
                self.locks.remove(&op.obj);
                self.threads[tid].held.retain(|&a| a != op.obj);
            }
            OpKind::RdLock => {
                match self
                    .locks
                    .entry(op.obj)
                    .or_insert_with(|| LockState::Readers(Vec::new()))
                {
                    LockState::Readers(r) => r.push(tid),
                    LockState::Writer(_) => {}
                }
            }
            OpKind::RdUnlock => {
                let empty = match self.locks.get_mut(&op.obj) {
                    Some(LockState::Readers(r)) => {
                        if let Some(i) = r.iter().position(|&t| t == tid) {
                            r.remove(i);
                        }
                        r.is_empty()
                    }
                    _ => false,
                };
                if empty {
                    self.locks.remove(&op.obj);
                }
            }
            OpKind::CvWait => {
                // Atomically release the mutex and join the wait queue.
                self.locks.remove(&op.obj2);
                self.threads[tid].held.retain(|&a| a != op.obj2);
                self.cv_waiters.entry(op.obj).or_default().push_back(tid);
                self.threads[tid].phase = Phase::CvWaiting(op.obj);
                // What the thread will do once notified: reacquire.
                self.threads[tid].pending = Some(Op::new(OpKind::Lock, op.obj2));
            }
            OpKind::NotifyOne => {
                let waiters: Vec<usize> = self
                    .cv_waiters
                    .get(&op.obj)
                    .map(|q| q.iter().copied().collect())
                    .unwrap_or_default();
                if !waiters.is_empty() {
                    // Which waiter wakes is itself nondeterministic: a
                    // recorded decision, explored like a thread choice.
                    let woken = self.decide(waiters, true, None);
                    if let Some(q) = self.cv_waiters.get_mut(&op.obj) {
                        q.retain(|&t| t != woken);
                    }
                    self.threads[woken].phase = Phase::Running;
                }
            }
            OpKind::NotifyAll => {
                if let Some(q) = self.cv_waiters.remove(&op.obj) {
                    for t in q {
                        self.threads[t].phase = Phase::Running;
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// The shared execution object and thread-local context
// ---------------------------------------------------------------------------

pub(crate) struct Exec {
    m: StdMutex<ExecSt>,
    cv: StdCondvar,
}

struct Ctx {
    exec: Arc<Exec>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Is the calling OS thread a model thread inside an active execution?
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn with_ctx<R>(f: impl FnOnce(&Arc<Exec>, usize) -> R) -> Option<R> {
    CTX.with(|c| {
        let b = c.borrow();
        b.as_ref().map(|ctx| f(&ctx.exec, ctx.tid))
    })
}

fn lock_st(exec: &Exec) -> StdMutexGuard<'_, ExecSt> {
    exec.m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Exec {
    fn new(cfg: &Config, plan: Vec<usize>, sleep_after_plan: u64) -> Self {
        Exec {
            m: StdMutex::new(ExecSt {
                plan,
                sleep_after_plan,
                max_steps: cfg.max_steps,
                threads: vec![ThreadSlot {
                    pending: Some(Op::new(OpKind::Start, 0)),
                    phase: Phase::Running,
                    held: Vec::new(),
                }],
                active: 0,
                live: 1,
                choices: Vec::new(),
                ops: Vec::new(),
                sleep: 0,
                preemptions: 0,
                locks: HashMap::new(),
                cv_waiters: HashMap::new(),
                lock_graph: Graph::new(),
                objects: HashMap::new(),
                obj_counts: HashMap::new(),
                failure: None,
                aborting: false,
                done: false,
            }),
            cv: StdCondvar::new(),
        }
    }

    /// Park until this thread is the active one. On abort: panic with
    /// [`Abort`] so the thread unwinds — unless it is already unwinding,
    /// in which case it returns and the caller skips all bookkeeping.
    fn wait_turn<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, ExecSt>,
        tid: usize,
    ) -> StdMutexGuard<'a, ExecSt> {
        loop {
            if st.aborting {
                if std::thread::panicking() {
                    return st;
                }
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == tid && st.threads[tid].phase == Phase::Running {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The core handshake: declare `op`, let the scheduler pick who runs,
    /// park until chosen, then apply the op's semantics. On return the
    /// calling thread is active and may perform the op's data part.
    fn op_point(&self, tid: usize, op: Op) {
        let mut st = lock_st(self);
        if st.aborting {
            if std::thread::panicking() {
                return;
            }
            drop(st);
            std::panic::panic_any(Abort);
        }
        // Immediate-error checks on the declaration itself.
        if let OpKind::Lock = op.kind {
            let self_held = match st.locks.get(&op.obj) {
                Some(LockState::Writer(h)) => *h == tid,
                Some(LockState::Readers(r)) => r.contains(&tid),
                None => false,
            };
            if self_held {
                let name = st.obj_name('m', op.obj);
                st.fail(
                    FailureKind::DoubleLock,
                    format!("double lock: t{tid} acquired {name} while already holding it"),
                    false,
                );
                drop(st);
                std::panic::panic_any(Abort);
            }
        }
        st.threads[tid].pending = Some(op);
        if !st.schedule() {
            self.cv.notify_all();
            st = self.wait_turn(st, tid); // aborts or (done) never returns here
            drop(st);
            return;
        }
        self.cv.notify_all();
        st = self.wait_turn(st, tid);
        if st.aborting {
            return;
        }
        if let Some(op) = st.threads[tid].pending.take() {
            st.apply(tid, op);
            if st.aborting {
                drop(st);
                if !std::thread::panicking() {
                    self.cv.notify_all();
                    std::panic::panic_any(Abort);
                }
            }
        }
    }

    fn finish(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = lock_st(self);
        st.threads[tid].phase = Phase::Finished;
        st.threads[tid].pending = None;
        st.live -= 1;
        if let Some(msg) = panic_msg {
            st.fail(FailureKind::Panic, format!("panic: {msg}"), false);
        }
        if !st.aborting {
            st.schedule();
        }
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Public (crate-internal) instrumentation entry points
// ---------------------------------------------------------------------------

/// A no-effect scheduling point (atomics, yields). No-op outside a model
/// execution.
pub(crate) fn point(op: Op) {
    let _ = with_ctx(|exec, tid| exec.op_point(tid, op));
}

pub(crate) fn lock(addr: usize) {
    point(Op::new(OpKind::Lock, addr));
}

pub(crate) fn unlock(addr: usize) {
    point(Op::new(OpKind::Unlock, addr));
}

pub(crate) fn rd_lock(addr: usize) {
    point(Op::new(OpKind::RdLock, addr));
}

pub(crate) fn rd_unlock(addr: usize) {
    point(Op::new(OpKind::RdUnlock, addr));
}

pub(crate) fn notify(addr: usize, all: bool) {
    let kind = if all {
        OpKind::NotifyAll
    } else {
        OpKind::NotifyOne
    };
    point(Op::new(kind, addr));
}

/// Condvar wait: release the mutex and block until notified, then
/// reacquire. Two park episodes within one logical operation.
pub(crate) fn cv_wait(cv: usize, mutex: usize) {
    let ran = with_ctx(|exec, tid| {
        // Phase 1: the wait itself (always startable). After `apply` runs
        // we are in CvWaiting and scheduled out.
        exec.op_point(
            tid,
            Op {
                kind: OpKind::CvWait,
                obj: cv,
                obj2: mutex,
            },
        );
        // We are active but now CvWaiting: hand control to someone else
        // and park until notified *and* chosen (with the mutex free).
        let mut st = lock_st(exec);
        if !st.aborting {
            st.schedule();
        }
        exec.cv.notify_all();
        st = exec.wait_turn(st, tid);
        if st.aborting {
            return;
        }
        // Phase 2: the reacquisition (pending was set to Lock(mutex)).
        if let Some(op) = st.threads[tid].pending.take() {
            st.apply(tid, op);
        }
    });
    debug_assert!(ran.is_some(), "cv_wait outside a model execution");
}

/// Result slot + completion flag shared between a spawned model thread and
/// its join handle.
pub(crate) struct ThreadDone {
    done: StdMutex<bool>,
    cv: StdCondvar,
    pub(crate) panic_payload: StdMutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ThreadDone {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ThreadDone {
            done: StdMutex::new(false),
            cv: StdCondvar::new(),
            panic_payload: StdMutex::new(None),
        })
    }

    pub(crate) fn set(&self) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    /// Raw (non-scheduler) wait for thread completion; only for teardown
    /// and fallback joins.
    pub(crate) fn wait(&self) {
        let mut g = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn thread_main(exec: Arc<Exec>, tid: usize, main: Box<dyn FnOnce() + Send>, done: Arc<ThreadDone>) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            tid,
        })
    });
    let result = catch_unwind(AssertUnwindSafe(|| {
        // First turn: consume the Start op.
        {
            let st = lock_st(&exec);
            let mut st = exec.wait_turn(st, tid);
            if !st.aborting {
                if let Some(op) = st.threads[tid].pending.take() {
                    st.apply(tid, op);
                }
            }
        }
        main();
    }));
    let panic_msg = match result {
        Ok(()) => None,
        Err(p) => {
            if p.downcast_ref::<Abort>().is_some() {
                None
            } else {
                let msg = panic_message(p.as_ref());
                *done.panic_payload.lock().unwrap_or_else(|e| e.into_inner()) = Some(p);
                Some(msg)
            }
        }
    };
    exec.finish(tid, panic_msg);
    CTX.with(|c| *c.borrow_mut() = None);
    done.set();
}

/// Spawn a model thread running `main`. Must be called from a model
/// thread; the spawn itself is a scheduling point. Returns the child's
/// tid and completion flag.
pub(crate) fn model_spawn(main: Box<dyn FnOnce() + Send>) -> (usize, Arc<ThreadDone>) {
    with_ctx(|exec, tid| {
        let done = ThreadDone::new();
        let child = {
            let mut st = lock_st(exec);
            if st.aborting {
                drop(st);
                std::panic::panic_any(Abort);
            }
            let child = st.threads.len();
            if child >= MAX_THREADS {
                st.fail(
                    FailureKind::TooManyThreads,
                    format!("more than {MAX_THREADS} threads in one execution"),
                    false,
                );
                drop(st);
                std::panic::panic_any(Abort);
            }
            st.threads.push(ThreadSlot {
                pending: Some(Op::new(OpKind::Start, 0)),
                phase: Phase::Running,
                held: Vec::new(),
            });
            st.live += 1;
            child
        };
        let exec2 = Arc::clone(exec);
        let done2 = Arc::clone(&done);
        std::thread::Builder::new()
            .name(format!("mh-model-t{child}"))
            .stack_size(256 * 1024)
            .spawn(move || thread_main(exec2, child, main, done2))
            .expect("spawning a model thread");
        exec.op_point(tid, Op::new(OpKind::Spawn(child), 0));
        (child, done)
    })
    .expect("model_spawn outside a model execution")
}

/// Join a model thread through the scheduler (blocks until the target is
/// finished, as a schedulable decision).
pub(crate) fn model_join(target: usize) {
    let ran = with_ctx(|exec, tid| exec.op_point(tid, Op::new(OpKind::Join(target), 0)));
    debug_assert!(ran.is_some(), "model_join outside a model execution");
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

pub(crate) struct Config {
    pub preemption_bound: Option<usize>,
    pub max_iterations: usize,
    pub max_steps: usize,
}

/// Aggregate statistics of one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Executions run.
    pub iterations: usize,
    /// Total recorded scheduling decisions across all executions.
    pub decisions: u64,
    /// True when the (bounded) schedule tree was exhausted; false when the
    /// iteration budget ran out first.
    pub complete: bool,
}

struct RunOutcome {
    choices: Vec<Choice>,
    failure: Option<(FailureKind, String, String)>,
}

/// Serializes explorations process-wide: model runs may interleave on
/// shared global objects (metric registries, thread-count overrides), and
/// two concurrent executions exploring the same global mutex would both
/// believe they own it.
fn run_serializer() -> &'static StdMutex<()> {
    static LOCK: std::sync::OnceLock<StdMutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
}

fn run_one<F>(cfg: &Config, plan: Vec<usize>, sleep_after_plan: u64, f: Arc<F>) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Exec::new(cfg, plan, sleep_after_plan));
    let done = ThreadDone::new();
    let exec2 = Arc::clone(&exec);
    let done2 = Arc::clone(&done);
    let root = std::thread::Builder::new()
        .name("mh-model-t0".to_string())
        .stack_size(512 * 1024)
        .spawn(move || thread_main(exec2, 0, Box::new(move || f()), done2))
        .expect("spawning the model root thread");
    // Wait for every model thread to finish (normal completion or abort
    // teardown both drive `live` to zero).
    {
        let mut st = lock_st(&exec);
        while st.live > 0 {
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = root.join();
    let mut st = lock_st(&exec);
    RunOutcome {
        choices: st.choices.clone(),
        failure: st.failure.take(),
    }
}

struct PathNode {
    enabled: Vec<usize>,
    chosen: usize,
    explored: u64,
    is_wake: bool,
    prev_active: usize,
    preempt_before: usize,
    sleep_entry: u64,
}

fn schedule_string(choices: &[Choice]) -> String {
    choices
        .iter()
        .map(|c| c.chosen.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse a decision string (`"0,1,2"`); empty string means empty plan.
pub(crate) fn parse_schedule(s: &str) -> Result<Vec<usize>, String> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad decision {p:?} in schedule {s:?}"))
        })
        .collect()
}

fn make_failure(
    pf: (FailureKind, String, String),
    choices: &[Choice],
    iteration: usize,
) -> Failure {
    Failure {
        kind: pf.0,
        message: pf.1,
        trace: pf.2,
        schedule: schedule_string(choices),
        iteration,
    }
}

/// Run a single execution following `plan` exactly (decisions beyond the
/// plan use the default policy). Used for `MH_MODEL_REPLAY`.
pub(crate) fn replay<F>(cfg: &Config, plan: Vec<usize>, f: Arc<F>) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = run_serializer().lock().unwrap_or_else(|e| e.into_inner());
    let out = run_one(cfg, plan, 0, f);
    let decisions = out.choices.len() as u64;
    match out.failure {
        Some(pf) => Err(make_failure(pf, &out.choices, 1)),
        None => Ok(Stats {
            iterations: 1,
            decisions,
            complete: false,
        }),
    }
}

/// Exhaustively (up to the preemption bound and iteration budget) explore
/// the schedules of `f`, returning the first failure found.
pub(crate) fn explore<F>(cfg: &Config, f: Arc<F>) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        !in_model(),
        "nested model checking: check() called from inside a model execution"
    );
    let _serial = run_serializer().lock().unwrap_or_else(|e| e.into_inner());
    let mut path: Vec<PathNode> = Vec::new();
    let mut stats = Stats {
        iterations: 0,
        decisions: 0,
        complete: false,
    };
    loop {
        stats.iterations += 1;
        let plan: Vec<usize> = path.iter().map(|n| n.chosen).collect();
        let sleep_after_plan = path
            .last()
            .map(|n| n.explored & !(1u64 << n.chosen))
            .unwrap_or(0);
        let out = run_one(cfg, plan, sleep_after_plan, Arc::clone(&f));
        stats.decisions += out.choices.len() as u64;
        if let Some(pf) = out.failure {
            return Err(make_failure(pf, &out.choices, stats.iterations));
        }
        for c in out.choices.iter().skip(path.len()) {
            path.push(PathNode {
                enabled: c.enabled.clone(),
                chosen: c.chosen,
                explored: 1u64 << c.chosen,
                is_wake: c.is_wake,
                prev_active: c.prev_active,
                preempt_before: c.preempt_before,
                sleep_entry: c.sleep_entry,
            });
        }
        // Depth-first backtrack to the deepest point with an unexplored,
        // non-sleeping, within-budget alternative.
        loop {
            let Some(node) = path.last_mut() else {
                stats.complete = true;
                return Ok(stats);
            };
            let mut next = None;
            for &t in &node.enabled {
                let bit = 1u64 << t;
                if node.explored & bit != 0 {
                    continue;
                }
                if !node.is_wake && node.sleep_entry & bit != 0 {
                    // Sleeping: covered by a sibling branch.
                    node.explored |= bit;
                    continue;
                }
                if !node.is_wake {
                    if let Some(bound) = cfg.preemption_bound {
                        let cost = usize::from(
                            t != node.prev_active && node.enabled.contains(&node.prev_active),
                        );
                        if node.preempt_before + cost > bound {
                            node.explored |= bit;
                            continue;
                        }
                    }
                }
                next = Some(t);
                break;
            }
            match next {
                Some(t) => {
                    node.explored |= 1u64 << t;
                    node.chosen = t;
                    break;
                }
                None => {
                    path.pop();
                }
            }
        }
        if stats.iterations >= cfg.max_iterations {
            return Ok(stats);
        }
    }
}
