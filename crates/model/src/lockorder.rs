//! Lock-order tracking: a directed graph of "held A while acquiring B"
//! edges with cycle detection. A cycle means two code paths acquire the
//! same locks in opposite orders — a latent deadlock even if no schedule
//! explored so far actually deadlocked (finding code `M003`).
//!
//! Two users:
//! * the model checker keeps a per-execution [`Graph`] keyed by lock
//!   address;
//! * [`debug_acquire`]/[`debug_release`] implement a cheap **always-on
//!   detector for plain debug builds**, keyed by each lock's *creation
//!   site* (file/line/column), so ordinary `cargo test` runs flag
//!   inversions between lock classes without any model feature. Edges
//!   between two locks of the same class are skipped (many instances of
//!   one class are routinely nested, e.g. two different queues).

use std::collections::HashMap;
use std::hash::Hash;

/// A small directed graph with incremental cycle detection.
pub struct Graph<K: Eq + Hash + Clone> {
    edges: HashMap<K, Vec<K>>,
}

impl<K: Eq + Hash + Clone> Default for Graph<K> {
    fn default() -> Self {
        Graph::new()
    }
}

impl<K: Eq + Hash + Clone> Graph<K> {
    pub fn new() -> Self {
        Graph {
            edges: HashMap::new(),
        }
    }

    /// Add the edge `from -> to`. If this closes a cycle, return the
    /// cycle as a node path starting and ending at `from` (the edge is
    /// still recorded). Duplicate edges are ignored.
    pub fn add_edge(&mut self, from: K, to: K) -> Option<Vec<K>> {
        if from == to {
            // Self-edges are the double-lock case, reported separately.
            return None;
        }
        let out = self.edges.entry(from.clone()).or_default();
        if out.contains(&to) {
            return None;
        }
        out.push(to.clone());
        // A cycle through the new edge exists iff `from` is reachable
        // from `to`.
        let path = self.find_path(&to, &from)?;
        let mut cycle = Vec::with_capacity(path.len() + 2);
        cycle.push(from.clone());
        cycle.extend(path);
        cycle.push(from);
        Some(cycle)
    }

    /// DFS for a path `start ⇝ goal`; returns the node sequence from
    /// `start` to `goal` inclusive.
    fn find_path(&self, start: &K, goal: &K) -> Option<Vec<K>> {
        let mut stack = vec![(start.clone(), vec![start.clone()])];
        let mut seen = std::collections::HashSet::new();
        seen.insert(start.clone());
        while let Some((node, path)) = stack.pop() {
            if &node == goal {
                return Some(path);
            }
            if let Some(next) = self.edges.get(&node) {
                for n in next {
                    if seen.insert(n.clone()) {
                        let mut p = path.clone();
                        p.push(n.clone());
                        stack.push((n.clone(), p));
                    }
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Debug-build global detector
// ---------------------------------------------------------------------------

/// A lock's class: its creation site.
pub type LockClass = (&'static str, u32, u32);

#[doc(hidden)]
pub fn class_of(loc: &'static std::panic::Location<'static>) -> LockClass {
    (loc.file(), loc.line(), loc.column())
}

struct DebugState {
    graph: Graph<LockClass>,
}

fn debug_state() -> &'static std::sync::Mutex<DebugState> {
    static STATE: std::sync::OnceLock<std::sync::Mutex<DebugState>> = std::sync::OnceLock::new();
    STATE.get_or_init(|| {
        std::sync::Mutex::new(DebugState {
            graph: Graph::new(),
        })
    })
}

thread_local! {
    static HELD: std::cell::RefCell<Vec<LockClass>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn fmt_class(c: &LockClass) -> String {
    format!("{}:{}:{}", c.0, c.1, c.2)
}

/// Record that the calling thread is acquiring a lock of class `class`
/// while (possibly) holding others. Panics with an `M003` report when the
/// cross-class acquisition graph acquires a cycle. Intended to be called
/// only in debug builds (the facade compiles the calls out in release).
pub fn debug_acquire(class: LockClass) {
    let cycle = HELD.with(|h| {
        let held = h.borrow();
        if held.is_empty() {
            return None;
        }
        let mut st = debug_state().lock().unwrap_or_else(|e| e.into_inner());
        for held_class in held.iter() {
            if *held_class == class {
                continue;
            }
            if let Some(cycle) = st.graph.add_edge(*held_class, class) {
                return Some(cycle);
            }
        }
        None
    });
    HELD.with(|h| h.borrow_mut().push(class));
    if let Some(cycle) = cycle {
        let names: Vec<String> = cycle.iter().map(fmt_class).collect();
        panic!(
            "mh-model [M003] lock-order cycle between lock classes: {}\n\
             (locks created at these sites are acquired in conflicting orders; \
             a schedule interleaving these paths can deadlock)",
            names.join(" -> ")
        );
    }
}

/// Record that the calling thread released a lock of class `class`.
pub fn debug_release(class: LockClass) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(i) = held.iter().rposition(|c| *c == class) {
            held.remove(i);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_on_consistent_order() {
        let mut g: Graph<u32> = Graph::new();
        assert!(g.add_edge(1, 2).is_none());
        assert!(g.add_edge(2, 3).is_none());
        assert!(g.add_edge(1, 3).is_none());
        // Duplicate edges are fine.
        assert!(g.add_edge(1, 2).is_none());
    }

    #[test]
    fn two_cycle_detected_with_path() {
        let mut g: Graph<u32> = Graph::new();
        assert!(g.add_edge(1, 2).is_none());
        let cycle = g.add_edge(2, 1).expect("A/B-B/A must cycle");
        assert_eq!(cycle.first(), Some(&2));
        assert_eq!(cycle.last(), Some(&2));
        assert!(cycle.contains(&1));
    }

    #[test]
    fn three_cycle_detected() {
        let mut g: Graph<u32> = Graph::new();
        assert!(g.add_edge(1, 2).is_none());
        assert!(g.add_edge(2, 3).is_none());
        assert!(g.add_edge(3, 1).is_some());
    }

    #[test]
    fn self_edge_ignored() {
        let mut g: Graph<u32> = Graph::new();
        assert!(g.add_edge(1, 1).is_none());
        assert!(g.add_edge(1, 1).is_none());
    }
}
