//! # mh-model — deterministic concurrency model checking
//!
//! A loom-style model checker for the workspace's parallel core. Test
//! bodies written against the instrumented primitives in [`sync`] are run
//! many times under a cooperative scheduler that controls every
//! synchronization decision, systematically enumerating thread
//! interleavings (depth-first branch replay with a bounded-preemption
//! budget and sleep-set pruning) and reporting the first failing schedule
//! as a replayable trace.
//!
//! ```no_run
//! use mh_model::sync::{Mutex, Condvar};
//! use mh_model::sync::thread;
//! use std::sync::Arc;
//!
//! mh_model::check(|| {
//!     let m = Arc::new(Mutex::new(0u32));
//!     let m2 = Arc::clone(&m);
//!     let h = thread::spawn(move || *m2.lock() += 1);
//!     *m.lock() += 1;
//!     h.join().unwrap();
//!     assert_eq!(*m.lock(), 2);
//! });
//! ```
//!
//! On failure, [`check`] panics with a report like:
//!
//! ```text
//! mh-model [M001] deadlock: every live thread is blocked (iteration 4)
//!   t0 blocked: lock(m1) (held by t1)
//!   t1 blocked: lock(m0) (held by t0)
//!   trace (6 of 6 ops): ...
//!   schedule: [1,0]
//!   replay with: MH_MODEL_REPLAY=1,0
//! ```
//!
//! Setting `MH_MODEL_REPLAY=<schedule>` makes [`check`] run exactly that
//! schedule once instead of exploring — the failing interleaving is
//! deterministic and debuggable. Finding codes: `M001` deadlock (covers
//! lost wakeups), `M002` double lock, `M003` lock-order cycle, `M004`
//! livelock (step budget), `M005` panic/assertion failure.
//!
//! The crate is dependency-free and sits at the bottom of the workspace
//! graph: `mh_par::sync` re-exports [`sync`] as the workspace facade
//! under the `model` feature, and [`lockorder`] powers a cheap always-on
//! deadlock-potential detector in plain debug builds.

pub mod lockorder;
mod rt;
pub mod sync;

pub use rt::{Failure, FailureKind, Stats};

/// Exploration configuration. The defaults (preemption bound 2, 100k
/// executions, 20k steps per execution) explore the schedule spaces of
/// the workspace's real tests exhaustively; `Stats::complete` reports
/// whether the (bounded) tree was in fact exhausted.
#[derive(Debug, Clone)]
pub struct Builder {
    preemption_bound: Option<usize>,
    max_iterations: usize,
    max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(2),
            max_iterations: 100_000,
            max_steps: 20_000,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Builder::default()
    }

    /// Maximum forced preemptions per schedule (context switches away
    /// from a still-runnable thread). Most real concurrency bugs need
    /// very few; raising this grows the search space combinatorially.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Remove the preemption bound (full DFS modulo sleep sets).
    pub fn unbounded(mut self) -> Self {
        self.preemption_bound = None;
        self
    }

    /// Cap the number of executions (schedules) explored.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Cap the number of synchronization operations per execution;
    /// exceeding it is reported as a livelock (`M004`) — this is what
    /// turns a lost-wakeup *hang* into a finite failure.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n.max(1);
        self
    }

    fn config(&self) -> rt::Config {
        rt::Config {
            preemption_bound: self.preemption_bound,
            max_iterations: self.max_iterations,
            max_steps: self.max_steps,
        }
    }

    /// Explore `f`'s schedules; return statistics or the first failure.
    /// Honors `MH_MODEL_REPLAY` (a decision string from a previous
    /// failure report): when set, runs exactly that schedule once.
    pub fn try_check<F>(&self, f: F) -> Result<Stats, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        if let Ok(plan) = std::env::var("MH_MODEL_REPLAY") {
            return self.try_replay(&plan, f);
        }
        rt::explore(&self.config(), std::sync::Arc::new(f))
    }

    /// Like [`Builder::try_check`], but panic with the full replayable
    /// report on failure.
    pub fn check<F>(&self, f: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.try_check(f) {
            Ok(stats) => stats,
            Err(failure) => panic!("{failure}"),
        }
    }

    /// Run exactly one execution following `schedule` (a decision string
    /// like `"1,0,2"`; decisions beyond it fall back to the default
    /// run-to-completion policy).
    pub fn try_replay<F>(&self, schedule: &str, f: F) -> Result<Stats, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let plan = match rt::parse_schedule(schedule) {
            Ok(p) => p,
            Err(msg) => panic!("MH_MODEL_REPLAY: {msg}"),
        };
        rt::replay(&self.config(), plan, std::sync::Arc::new(f))
    }

    /// Like [`Builder::try_replay`], but panic with the report on failure.
    pub fn replay<F>(&self, schedule: &str, f: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.try_replay(schedule, f) {
            Ok(stats) => stats,
            Err(failure) => panic!("{failure}"),
        }
    }
}

/// Model-check `f` with default settings, panicking on the first failing
/// schedule. See [`Builder`] for knobs and [`Builder::try_check`] for a
/// non-panicking variant.
pub fn check<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{thread, Condvar, Mutex, RwLock};
    use super::*;
    use std::sync::Arc;

    #[test]
    fn correct_counter_explores_completely() {
        let stats = Builder::new()
            .try_check(|| {
                let n = Arc::new(Mutex::new(0u32));
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let n2 = Arc::clone(&n);
                    handles.push(thread::spawn(move || {
                        *n2.lock() += 1;
                    }));
                }
                for h in handles {
                    h.join().expect("worker");
                }
                assert_eq!(*n.lock(), 2);
            })
            .expect("no failure in a correct program");
        assert!(
            stats.complete,
            "schedule tree should be exhausted: {stats:?}"
        );
        assert!(stats.iterations > 1, "must explore >1 schedule: {stats:?}");
    }

    #[test]
    fn racy_nonatomic_increment_is_caught() {
        // Classic lost update: load, then store load+1. Needs one
        // preemption between the two to fail.
        let failure = Builder::new()
            .try_check(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let n2 = Arc::clone(&n);
                    handles.push(thread::spawn(move || {
                        let v = n2.load(Ordering::SeqCst);
                        n2.store(v + 1, Ordering::SeqCst);
                    }));
                }
                for h in handles {
                    h.join().expect("worker");
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            })
            .expect_err("the race must be found");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert_eq!(failure.kind.code(), "M005");
        assert!(failure.message.contains("lost update"), "{failure}");
        assert!(!failure.schedule.is_empty(), "{failure}");
    }

    #[test]
    fn failing_schedule_replays_deterministically() {
        fn body() {
            let n = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let n2 = Arc::clone(&n);
                handles.push(thread::spawn(move || {
                    let v = n2.load(Ordering::SeqCst);
                    n2.store(v + 1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().expect("worker");
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        }
        let failure = Builder::new().try_check(body).expect_err("race found");
        // Replaying the reported decision string reproduces the failure
        // in a single execution.
        let replayed = Builder::new()
            .try_replay(&failure.schedule, body)
            .expect_err("replay reproduces");
        assert_eq!(replayed.kind, failure.kind);
        assert_eq!(replayed.schedule, failure.schedule);
        assert_eq!(replayed.iteration, 1);
        // And the failure report tells the user how to do exactly that.
        let report = failure.to_string();
        assert!(report.contains("MH_MODEL_REPLAY="), "{report}");
        assert!(report.contains("[M005]"), "{report}");
    }

    #[test]
    fn ab_ba_deadlock_is_caught() {
        let failure = Builder::new()
            .try_check(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = thread::spawn(move || {
                    let _g1 = b2.lock();
                    let _g2 = a2.lock();
                });
                {
                    let _g1 = a.lock();
                    let _g2 = b.lock();
                }
                let _ = h.join();
            })
            .expect_err("AB/BA must fail");
        // Depending on which schedule is reached first this surfaces as a
        // lock-order cycle (one thread ran to completion, graph closed)
        // or a true deadlock (both stuck halfway).
        assert!(
            matches!(
                failure.kind,
                FailureKind::Deadlock | FailureKind::LockOrderCycle
            ),
            "{failure}"
        );
    }

    #[test]
    fn sequential_ab_ba_flags_lock_order_cycle() {
        // The threads never overlap (join between them), so no schedule
        // deadlocks — only the lock-order graph can see the hazard.
        let failure = Builder::new()
            .try_check(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _g1 = a2.lock();
                    let _g2 = b2.lock();
                })
                .join()
                .expect("first");
                thread::spawn(move || {
                    let _g1 = b.lock();
                    let _g2 = a.lock();
                })
                .join()
                .expect("second");
            })
            .expect_err("cycle must be flagged");
        assert_eq!(failure.kind, FailureKind::LockOrderCycle, "{failure}");
        assert_eq!(failure.kind.code(), "M003");
        assert!(failure.message.contains("lock-order cycle"), "{failure}");
        assert_eq!(failure.iteration, 1, "found on the first execution");
    }

    #[test]
    fn double_lock_is_caught() {
        let failure = Builder::new()
            .try_check(|| {
                let m = Arc::new(Mutex::new(0u32));
                let _g1 = m.lock();
                let _g2 = m.lock();
            })
            .expect_err("double lock must fail");
        assert_eq!(failure.kind, FailureKind::DoubleLock, "{failure}");
        assert_eq!(failure.kind.code(), "M002");
    }

    #[test]
    fn lost_wakeup_is_caught_as_deadlock() {
        // Buggy pattern: check the flag *outside* the lock, then wait.
        // Schedule: waiter sees flag==false; signaler sets it and
        // notifies (nobody waiting yet); waiter then waits forever.
        let failure = Builder::new()
            .try_check(|| {
                let flag = Arc::new(AtomicBool::new(false));
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                let (flag2, pair2) = (Arc::clone(&flag), Arc::clone(&pair));
                let waiter = thread::spawn(move || {
                    if !flag2.load(Ordering::SeqCst) {
                        let g = pair2.0.lock();
                        let _g = pair2.1.wait(g);
                    }
                });
                flag.store(true, Ordering::SeqCst);
                pair.1.notify_one();
                let _ = waiter.join();
            })
            .expect_err("lost wakeup must be found");
        assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
        assert_eq!(failure.kind.code(), "M001");
        assert!(failure.trace.contains("blocked"), "{failure}");
    }

    #[test]
    fn correct_condvar_handoff_has_no_deadlock() {
        let stats = Builder::new()
            .try_check(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let pair2 = Arc::clone(&pair);
                let waiter = thread::spawn(move || {
                    let mut g = pair2.0.lock();
                    while !*g {
                        g = pair2.1.wait(g);
                    }
                });
                {
                    let mut g = pair.0.lock();
                    *g = true;
                }
                pair.1.notify_one();
                waiter.join().expect("waiter");
            })
            .expect("correct handoff never deadlocks");
        assert!(stats.complete, "{stats:?}");
    }

    #[test]
    fn livelock_spin_hits_step_budget() {
        let failure = Builder::new()
            .max_steps(200)
            .try_check(|| {
                let flag = Arc::new(AtomicBool::new(false));
                // Nobody ever sets the flag: an unbounded spin.
                let flag2 = Arc::clone(&flag);
                let h = thread::spawn(move || {
                    while !flag2.load(Ordering::SeqCst) {
                        thread::yield_now();
                    }
                });
                let _ = h.join();
            })
            .expect_err("spin must hit the budget");
        assert_eq!(failure.kind, FailureKind::Livelock, "{failure}");
        assert_eq!(failure.kind.code(), "M004");
    }

    #[test]
    fn scoped_threads_and_rwlock_work_under_the_model() {
        let stats = Builder::new()
            .try_check(|| {
                let l = RwLock::new(1u32);
                let total = AtomicUsize::new(0);
                thread::scope(|s| {
                    let h1 = s.spawn(|| {
                        total.fetch_add(*l.read() as usize, Ordering::SeqCst);
                    });
                    let h2 = s.spawn(|| {
                        *l.write() += 1;
                    });
                    h1.join().expect("reader");
                    h2.join().expect("writer");
                });
                let seen = total.load(Ordering::SeqCst);
                assert!(seen == 1 || seen == 2, "reader saw {seen}");
                assert_eq!(*l.read(), 2);
            })
            .expect("no failure");
        assert!(stats.complete, "{stats:?}");
    }

    #[test]
    fn escaped_worker_panic_is_reported_not_hung() {
        // A panic that escapes a spawned closure fails the whole model
        // run (M005) instead of deadlocking the owner's join.
        let failure = Builder::new()
            .try_check(|| {
                let m = Arc::new(Mutex::new(0u32));
                thread::scope(|s| {
                    let m2 = Arc::clone(&m);
                    let h = s.spawn(move || {
                        let _g = m2.lock();
                        panic!("worker exploded");
                    });
                    let _ = h.join();
                });
            })
            .expect_err("the escaped panic is the failure");
        assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
        assert!(failure.message.contains("worker exploded"), "{failure}");
        assert!(!failure.trace.is_empty(), "{failure}");
    }

    #[test]
    fn caught_worker_panic_keeps_executing() {
        // The parallel_map pattern: the worker catches its own panic
        // (releasing locks during the unwind) and reports it as data.
        // The model run completes — no failure, locks stay consistent.
        let stats = Builder::new()
            .try_check(|| {
                let m = Arc::new(Mutex::new(0u32));
                let ok = thread::scope(|s| {
                    let m2 = Arc::clone(&m);
                    let h = s.spawn(move || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let _g = m2.lock();
                            panic!("caught inside the worker");
                        }))
                        .is_err()
                    });
                    h.join().expect("worker itself completed")
                });
                assert!(ok, "the panic was observed as data");
                // The lock was released during the worker's unwind.
                *m.lock() += 1;
                assert_eq!(*m.lock(), 1);
            })
            .expect("a caught panic is not a model failure");
        assert!(stats.complete, "{stats:?}");
    }

    #[test]
    fn primitives_work_outside_a_model_run() {
        // The graceful-fallback path: same types, no checker.
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        let n = Arc::new(AtomicUsize::new(0));
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (n2, pair2) = (Arc::clone(&n), Arc::clone(&pair));
        let h = thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
            let mut g = pair2.0.lock();
            *g = true;
            drop(g);
            pair2.1.notify_one();
            7u32
        });
        {
            let mut g = pair.0.lock();
            while !*g {
                g = pair.1.wait(g);
            }
        }
        assert_eq!(h.join().expect("thread"), 7);
        assert_eq!(n.load(Ordering::SeqCst), 1);
        let sum: u32 = thread::scope(|s| {
            let a = s.spawn(|| 1u32);
            let b = s.spawn(|| 2u32);
            a.join().expect("a") + b.join().expect("b")
        });
        assert_eq!(sum, 3);
    }

    #[test]
    fn notify_one_wake_order_is_explored() {
        // Two waiters, one token: with notify_one the checker must
        // explore both wake orders; whichever waiter wins, the other is
        // woken by the winner's chained notify. Completing without
        // deadlock across all schedules is the assertion.
        let stats = Builder::new()
            .try_check(|| {
                let state = Arc::new((Mutex::new(2u32), Condvar::new()));
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let st = Arc::clone(&state);
                    handles.push(thread::spawn(move || {
                        let mut g = st.0.lock();
                        while *g == 0 {
                            g = st.1.wait(g);
                        }
                        *g -= 1;
                        drop(g);
                        st.1.notify_one();
                    }));
                }
                for h in handles {
                    h.join().expect("waiter");
                }
                assert_eq!(*state.0.lock(), 0);
            })
            .expect("no deadlock in any wake order");
        assert!(stats.iterations >= 1, "{stats:?}");
    }
}
