//! Instrumented synchronization primitives.
//!
//! These types present the same API as the workspace sync facade
//! (`mh_par::sync`) but report every operation to the model-checking
//! runtime ([`crate::rt`]) as a scheduling point. Outside a model
//! execution they **gracefully fall back** to real (spin-based)
//! primitives, so a `--features model` build remains fully functional:
//! global statics (metric registries, thread-count overrides) and
//! ordinary tests keep working, and only code running under
//! [`crate::check`] pays the instrumentation.
//!
//! Model-mode lock operations additionally mirror the raw spin flag:
//! logical exclusivity is enforced by the scheduler, but a model
//! execution can share a global object (e.g. the process-wide metric
//! registry) with concurrently running *non-model* test threads, and the
//! mirrored flag keeps the two worlds mutually exclusive. (The model
//! thread holds the scheduler turn while it spins, and fallback holders
//! make real progress on other cores, so this cannot stall the model.)

use crate::rt::{self, Op, OpKind};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool as RawBool, AtomicU64 as RawU64, AtomicUsize as RawUsize};

pub use std::sync::atomic::Ordering;

/// The current wall-clock instant. Lives on the facade so application
/// code never names `Instant::now()` directly (the sync-facade lint
/// forbids it outside the facade and mh-obs); the model checker itself
/// never consults wall time for scheduling decisions.
pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}

/// Which backend this crate's primitives report. The facade surfaces
/// this through `modelhub fsck --version`.
pub const BACKEND: &str = "model";

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock. Model executions schedule around it; outside
/// a model run it is a spin lock.
pub struct Mutex<T: ?Sized> {
    raw: RawBool,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds as std::sync::Mutex — exclusive access to the inner
// value is enforced by the raw flag (fallback) and the scheduler (model).
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            raw: RawBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const _ as *const () as usize
    }

    fn raw_acquire(&self) {
        while self
            .raw
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::thread::yield_now();
        }
    }

    /// Acquire the lock, blocking (or, under the model, scheduling) until
    /// it is available. No poisoning: panics simply release the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let model = rt::in_model();
        if model {
            rt::lock(self.addr());
        }
        self.raw_acquire();
        MutexGuard {
            m: self,
            model,
            _not_send: PhantomData,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: &mut self means no guards are alive.
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    m: &'a Mutex<T>,
    model: bool,
    /// Guards must stay on the locking thread (like std's).
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock.
        unsafe { &*self.m.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock exclusively.
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.model {
            rt::unlock(self.m.addr());
        }
        self.m.raw.store(false, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable paired with [`Mutex`]. The fallback
/// implementation is an epoch counter: `wait` releases the mutex and
/// spins until any notification bumps the epoch (so a fallback
/// `notify_one` may wake several waiters — a permitted spurious wakeup;
/// condition loops re-check as usual). Under the model, waits and the
/// choice of which waiter `notify_one` wakes are explicit scheduling
/// decisions.
pub struct Condvar {
    epoch: RawU64,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            epoch: RawU64::new(0),
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Atomically release the guard's mutex and wait for a notification,
    /// then reacquire before returning. May wake spuriously.
    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let m = guard.m;
        if guard.model {
            // The logical release happens inside cv_wait; do not run the
            // guard's Drop (that would record a spurious unlock).
            std::mem::forget(guard);
            m.raw.store(false, Ordering::Release);
            rt::cv_wait(self.addr(), m.addr());
            m.raw_acquire();
            MutexGuard {
                m,
                model: true,
                _not_send: PhantomData,
            }
        } else {
            let before = self.epoch.load(Ordering::SeqCst);
            drop(guard);
            while self.epoch.load(Ordering::SeqCst) == before {
                std::thread::yield_now();
            }
            m.lock()
        }
    }

    pub fn notify_one(&self) {
        if rt::in_model() {
            rt::notify(self.addr(), false);
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    pub fn notify_all(&self) {
        if rt::in_model() {
            rt::notify(self.addr(), true);
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

const WRITER: usize = usize::MAX;

/// A reader-writer lock (parking_lot-style API: `read`/`write` return
/// guards directly, no poisoning).
pub struct RwLock<T: ?Sized> {
    /// 0 = free, usize::MAX = write-locked, n = n readers (fallback).
    raw: RawUsize,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            raw: RawUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn addr(&self) -> usize {
        self as *const _ as *const () as usize
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = rt::in_model();
        if model {
            rt::rd_lock(self.addr());
        }
        loop {
            let s = self.raw.load(Ordering::Relaxed);
            if s != WRITER
                && self
                    .raw
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            std::thread::yield_now();
        }
        RwLockReadGuard {
            l: self,
            model,
            _not_send: PhantomData,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = rt::in_model();
        if model {
            rt::lock(self.addr());
        }
        while self
            .raw
            .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::thread::yield_now();
        }
        RwLockWriteGuard {
            l: self,
            model,
            _not_send: PhantomData,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: &mut self means no guards are alive.
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    l: &'a RwLock<T>,
    model: bool,
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds a read lock.
        unsafe { &*self.l.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.model {
            rt::rd_unlock(self.l.addr());
        }
        self.l.raw.fetch_sub(1, Ordering::Release);
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    l: &'a RwLock<T>,
    model: bool,
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the write lock.
        unsafe { &*self.l.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the write lock exclusively.
        unsafe { &mut *self.l.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.model {
            rt::unlock(self.l.addr());
        }
        self.l.raw.store(0, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Instrumented atomics live in `sync::atomic`, mirroring
/// `std::sync::atomic`. Data operations execute on real std atomics (so
/// fallback and model threads may share them safely); under the model,
/// every access is additionally a scheduling point.
pub mod atomic {
    use super::*;

    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_common {
        ($name:ident, $std:ty, $prim:ty) => {
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    $name {
                        inner: <$std>::new(v),
                    }
                }

                fn point(&self, kind: OpKind) {
                    rt::point(Op::new(kind, self as *const _ as usize));
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    self.point(OpKind::AtomicLoad);
                    self.inner.load(order)
                }

                pub fn store(&self, v: $prim, order: Ordering) {
                    self.point(OpKind::AtomicStore);
                    self.inner.store(v, order)
                }

                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    self.point(OpKind::AtomicRmw);
                    self.inner.swap(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.point(OpKind::AtomicRmw);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.point(OpKind::AtomicRmw);
                    self.inner
                        .compare_exchange_weak(current, new, success, failure)
                }

                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$prim, $prim>
                where
                    F: FnMut($prim) -> Option<$prim>,
                {
                    self.point(OpKind::AtomicRmw);
                    self.inner.fetch_update(set_order, fetch_order, f)
                }

                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }

                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    $name::new(<$prim>::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // Debug printing must not perturb the schedule: read
                    // the raw value without a scheduling point.
                    write!(f, "{:?}", self.inner)
                }
            }
        };
    }

    macro_rules! atomic_int_ops {
        ($name:ident, $prim:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    self.point(OpKind::AtomicRmw);
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    self.point(OpKind::AtomicRmw);
                    self.inner.fetch_sub(v, order)
                }

                pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                    self.point(OpKind::AtomicRmw);
                    self.inner.fetch_and(v, order)
                }

                pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                    self.point(OpKind::AtomicRmw);
                    self.inner.fetch_or(v, order)
                }

                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    self.point(OpKind::AtomicRmw);
                    self.inner.fetch_max(v, order)
                }

                pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                    self.point(OpKind::AtomicRmw);
                    self.inner.fetch_min(v, order)
                }
            }
        };
    }

    atomic_common!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    atomic_common!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic_common!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    atomic_common!(AtomicI64, std::sync::atomic::AtomicI64, i64);
    atomic_common!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    atomic_int_ops!(AtomicUsize, usize);
    atomic_int_ops!(AtomicU64, u64);
    atomic_int_ops!(AtomicU32, u32);
    atomic_int_ops!(AtomicI64, i64);

    impl AtomicBool {
        pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
            self.point(OpKind::AtomicRmw);
            self.inner.fetch_and(v, order)
        }

        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            self.point(OpKind::AtomicRmw);
            self.inner.fetch_or(v, order)
        }
    }
}

pub use atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize};

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Thread spawn/join/scope with the `std::thread` API shape. Inside a
/// model execution, spawned threads join the execution as model threads
/// (spawn and join are scheduling points); outside, real OS threads are
/// used.
pub mod thread {
    use super::*;
    use crate::rt::ThreadDone;
    use std::cell::RefCell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicBool as RawFlag;
    use std::sync::{Arc, Mutex as StdMutex};

    pub use std::thread::Result;

    #[derive(Clone, Copy)]
    enum Target {
        Model(usize),
        Real,
    }

    struct Raw {
        done: Arc<ThreadDone>,
        target: Target,
    }

    fn spawn_erased(main: Box<dyn FnOnce() + Send + 'static>) -> Raw {
        if rt::in_model() {
            let (tid, done) = rt::model_spawn(main);
            Raw {
                done,
                target: Target::Model(tid),
            }
        } else {
            let done = ThreadDone::new();
            let done2 = Arc::clone(&done);
            std::thread::Builder::new()
                .spawn(move || {
                    if let Err(p) = catch_unwind(AssertUnwindSafe(main)) {
                        *done2
                            .panic_payload
                            .lock()
                            .unwrap_or_else(|e| e.into_inner()) = Some(p);
                    }
                    done2.set();
                })
                .expect("spawning a thread");
            Raw {
                done,
                target: Target::Real,
            }
        }
    }

    impl Raw {
        /// Wait for the thread to finish: through the scheduler when this
        /// is a model thread inside a live execution (op_point returns
        /// early under abort), then always on the completion flag.
        fn join_blocking(&self) {
            if let Target::Model(tid) = self.target {
                if rt::in_model() {
                    rt::model_join(tid);
                }
            }
            self.done.wait();
        }

        fn take_result<T>(&self, slot: &StdMutex<Option<T>>) -> Result<T> {
            if let Some(p) = self
                .done
                .panic_payload
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                return Err(p);
            }
            match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some(v) => Ok(v),
                // Only reachable when the model runtime tore the thread
                // down mid-run (the execution already failed).
                None => Err(Box::new("thread aborted by model teardown")),
            }
        }
    }

    pub struct JoinHandle<T> {
        raw: Raw,
        slot: Arc<StdMutex<Option<T>>>,
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("JoinHandle").finish_non_exhaustive()
        }
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> Result<T> {
            self.raw.join_blocking();
            self.raw.take_result(&self.slot)
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let slot2 = Arc::clone(&slot);
        let raw = spawn_erased(Box::new(move || {
            let v = f();
            *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
        }));
        JoinHandle { raw, slot }
    }

    /// A scheduling point with no effect (fallback: a real yield).
    pub fn yield_now() {
        if rt::in_model() {
            rt::point(Op::new(OpKind::Yield, 0));
        } else {
            std::thread::yield_now();
        }
    }

    /// Scoped threads (the `std::thread::scope` API shape). Unlike std's,
    /// `spawn` needs `&'scope self` *and* the scope object is not `Sync`
    /// — children cannot themselves spawn onto the scope.
    /// Per-child state the scope must join on exit: completion signal,
    /// scheduler target, and the child's joined flag.
    type ScopedChild = (Arc<ThreadDone>, Target, Arc<RawFlag>);

    pub struct Scope<'scope, 'env: 'scope> {
        handles: RefCell<Vec<ScopedChild>>,
        phantom: PhantomData<&'scope mut &'env ()>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        raw: Raw,
        slot: Arc<StdMutex<Option<T>>>,
        joined: Arc<RawFlag>,
        phantom: PhantomData<&'scope ()>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T> {
            self.joined.store(true, Ordering::SeqCst);
            self.raw.join_blocking();
            self.raw.take_result(&self.slot)
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let slot2 = Arc::clone(&slot);
            let closure: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                let v = f();
                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            });
            // SAFETY: the closure (and everything it borrows, which lives
            // at least 'env) is joined before `scope` returns — both on
            // the normal path and during unwinding — so extending the
            // lifetime to 'static never outlives the borrowed data.
            let closure: Box<dyn FnOnce() + Send + 'static> =
                unsafe { std::mem::transmute(closure) };
            let raw = spawn_erased(closure);
            let joined = Arc::new(RawFlag::new(false));
            self.handles.borrow_mut().push((
                Arc::clone(&raw.done),
                raw.target,
                Arc::clone(&joined),
            ));
            ScopedJoinHandle {
                raw,
                slot,
                joined,
                phantom: PhantomData,
            }
        }
    }

    /// Run `f` with a scope allowing non-`'static` spawns; all children
    /// are joined (explicitly or implicitly) before this returns.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let sc = Scope {
            handles: RefCell::new(Vec::new()),
            phantom: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&sc)));
        let handles = std::mem::take(&mut *sc.handles.borrow_mut());
        for (done, target, joined) in handles {
            if joined.load(Ordering::SeqCst) {
                continue;
            }
            if let Target::Model(tid) = target {
                if rt::in_model() {
                    rt::model_join(tid);
                }
            }
            done.wait();
        }
        match result {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    }
}
