//! DNN substrate benchmarks: exact forward, interval forward (the
//! progressive-query inner loop), and one SGD step.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mh_dnn::backward::backward;
use mh_dnn::{forward, interval_forward, zoo, IntervalWeights, Weights};
use mh_tensor::{SegmentedMatrix, Tensor3};

fn bench_dnn(c: &mut Criterion) {
    let mut g = c.benchmark_group("dnn");
    g.sample_size(20);
    for (name, net) in [
        ("lenet_s", zoo::lenet_s(10)),
        ("alexnet_s", zoo::alexnet_s(10)),
        ("vgg_s", zoo::vgg_s(10)),
    ] {
        let w = Weights::init(&net, 1).unwrap();
        let x = Tensor3::from_vec(
            1,
            16,
            16,
            (0..256).map(|i| (i as f32 * 0.1).sin()).collect(),
        );
        g.bench_with_input(BenchmarkId::new("forward", name), &net, |b, net| {
            b.iter(|| forward(net, &w, &x).unwrap())
        });
        let mut iw = IntervalWeights::default();
        for (lname, m) in w.layers() {
            let (lo, hi) = SegmentedMatrix::from_matrix(m).bounds(2);
            iw.insert(lname, lo, hi);
        }
        g.bench_with_input(
            BenchmarkId::new("interval-forward-2B", name),
            &net,
            |b, net| b.iter(|| interval_forward(net, &iw, &x).unwrap()),
        );
        g.bench_with_input(BenchmarkId::new("backward", name), &net, |b, net| {
            b.iter(|| backward(net, &w, &x, 3).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dnn);
criterion_main!(benches);
