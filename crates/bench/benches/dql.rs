//! DQL benchmarks: parsing and select-query execution over a populated
//! repository.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use criterion::{criterion_group, criterion_main, Criterion};
use mh_dlv::{CommitRequest, Repository};
use mh_dnn::{zoo, Weights};
use mh_dql::{parse, Executor};

fn populated_repo(n: usize) -> (Repository, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("mh-bench-dql-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let repo = Repository::init(&dir).unwrap();
    let net = zoo::lenet_s(5);
    let w = Weights::init(&net, 1).unwrap();
    for i in 0..n {
        let mut req = CommitRequest::new(&format!("model-{i:03}"), net.clone());
        req.snapshots = vec![(0, w.clone())];
        req.accuracy = Some(0.5 + (i as f32) / (2 * n) as f32);
        repo.commit(&req).unwrap();
    }
    (repo, dir)
}

fn bench_dql(c: &mut Criterion) {
    let q1 = r#"select m1 where m1.name like "model-0%" and m1.accuracy > 0.55 and m1["conv[1,2]"].next has RELU"#;
    c.bench_function("dql-parse", |b| b.iter(|| parse(q1).unwrap()));

    let (repo, dir) = populated_repo(40);
    let exec = Executor::new(&repo);
    let mut g = c.benchmark_group("dql-exec");
    g.sample_size(10);
    g.bench_function("select-metadata", |b| {
        b.iter(|| exec.run(r#"select m1 where m1.accuracy > 0.6"#).unwrap())
    });
    g.bench_function("select-structural", |b| b.iter(|| exec.run(q1).unwrap()));
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_dql);
criterion_main!(benches);
