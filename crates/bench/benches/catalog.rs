//! Metadata catalog benchmarks: inserts, indexed and unindexed selects,
//! and persistence roundtrips.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use criterion::{criterion_group, criterion_main, Criterion};
use mh_store::{Column, ColumnType, Database, Predicate, Schema, Value};

fn populated(n: usize, indexed: bool) -> Database {
    let mut db = Database::new();
    db.create_table(
        "metric",
        Schema::new(vec![
            Column::not_null("mv", ColumnType::Int),
            Column::not_null("iteration", ColumnType::Int),
            Column::not_null("key", ColumnType::Text),
            Column::new("value", ColumnType::Real),
        ]),
    )
    .unwrap();
    if indexed {
        db.table_mut("metric").unwrap().create_index("mv").unwrap();
    }
    let t = db.table_mut("metric").unwrap();
    for i in 0..n {
        t.insert(vec![
            Value::Int((i % 50) as i64),
            Value::Int(i as i64),
            Value::Text("loss".into()),
            Value::Real((i as f64 * 0.7).sin().abs()),
        ])
        .unwrap();
    }
    db
}

fn bench_catalog(c: &mut Criterion) {
    let mut g = c.benchmark_group("catalog");
    g.sample_size(20);
    g.bench_function("insert-5k", |b| b.iter(|| populated(5000, false)));

    let flat = populated(5000, false);
    let indexed = populated(5000, true);
    g.bench_function("select-scan", |b| {
        b.iter(|| {
            flat.table("metric")
                .unwrap()
                .select(&Predicate::Eq("mv".into(), Value::Int(7)))
        })
    });
    g.bench_function("select-indexed", |b| {
        b.iter(|| {
            indexed
                .table("metric")
                .unwrap()
                .select(&Predicate::Eq("mv".into(), Value::Int(7)))
        })
    });
    g.bench_function("serialize-roundtrip", |b| {
        b.iter(|| Database::from_bytes(&flat.to_bytes()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_catalog);
criterion_main!(benches);
