//! Segment store benchmarks: plan materialization and full / partial /
//! parallel snapshot retrieval.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use criterion::{criterion_group, criterion_main, Criterion};
use mh_compress::Level;
use mh_delta::DeltaOp;
use mh_dnn::{zoo, Weights};
use mh_pas::{solver, CostModel, GraphBuilder, SegmentStore, VertexId};
use std::path::PathBuf;

fn setup() -> (
    mh_pas::StorageGraph,
    mh_pas::StoragePlan,
    std::collections::BTreeMap<VertexId, mh_tensor::Matrix>,
    Vec<Vec<VertexId>>,
) {
    let net = zoo::alexnet_s(6);
    let base = Weights::init(&net, 3).unwrap();
    let mut builder = GraphBuilder::new(CostModel::default());
    let mut groups = Vec::new();
    let mut indices = Vec::new();
    for i in 0..4usize {
        let w: Weights = base
            .layers()
            .map(|(n, m)| (n.clone(), m.map(|x| x + i as f32 * 1e-4)))
            .collect();
        builder.add_snapshot("chain", i, &w);
        groups.push(builder.snapshot_members("chain", i).unwrap());
        indices.push(i);
    }
    builder.link_version_chain("chain", &indices);
    let (graph, matrices) = builder.finish();
    let plan = solver::mst(&graph).unwrap();
    (graph, plan, matrices, groups)
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-bench-seg-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn bench_segstore(c: &mut Criterion) {
    let (graph, plan, matrices, groups) = setup();
    let mut g = c.benchmark_group("segstore");
    g.sample_size(10);

    g.bench_function("create", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let dir = temp_dir(&format!("create{i}"));
            i += 1;
            let s = SegmentStore::create(&dir, &graph, &plan, &matrices, DeltaOp::Sub, Level::Fast)
                .unwrap();
            let bytes = s.bytes_on_disk();
            std::fs::remove_dir_all(&dir).ok();
            bytes
        })
    });

    let dir = temp_dir("retrieval");
    let store =
        SegmentStore::create(&dir, &graph, &plan, &matrices, DeltaOp::Sub, Level::Fast).unwrap();
    let last_group = groups.last().unwrap().clone();
    g.bench_function("recreate-snapshot-full", |b| {
        b.iter(|| store.recreate_group(&last_group).unwrap())
    });
    g.bench_function("recreate-snapshot-parallel", |b| {
        b.iter(|| store.recreate_group_parallel(&last_group).unwrap())
    });
    g.bench_function("recreate-snapshot-1byte-bounds", |b| {
        b.iter(|| {
            for &v in &last_group {
                store.recreate_bounds(v, 1).unwrap();
            }
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_segstore);
criterion_main!(benches);
