//! Delta operator micro-benchmarks: compute and apply over close and
//! unrelated matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mh_delta::{Delta, DeltaOp};
use mh_tensor::Matrix;

fn matrices() -> (Matrix, Matrix, Matrix) {
    let base = Matrix::from_fn(256, 257, |r, c| ((r * 257 + c) as f32 * 0.137).sin() * 0.3);
    let close = base.map(|x| x + 1e-4);
    let far = Matrix::from_fn(256, 257, |r, c| ((r * 257 + c) as f32 * 1.7).cos() * 2.0);
    (base, close, far)
}

fn bench_delta(c: &mut Criterion) {
    let (base, close, far) = matrices();
    let bytes = (base.len() * 4) as u64;

    let mut g = c.benchmark_group("delta-compute");
    g.throughput(Throughput::Bytes(bytes));
    for op in [DeltaOp::Sub, DeltaOp::Xor] {
        g.bench_with_input(BenchmarkId::new(op.name(), "close"), &close, |b, t| {
            b.iter(|| Delta::compute(&base, t, op))
        });
        g.bench_with_input(BenchmarkId::new(op.name(), "far"), &far, |b, t| {
            b.iter(|| Delta::compute(&base, t, op))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("delta-apply");
    g.throughput(Throughput::Bytes(bytes));
    for op in [DeltaOp::Sub, DeltaOp::Xor] {
        let d = Delta::compute(&base, &close, op);
        g.bench_with_input(BenchmarkId::new(op.name(), "apply"), &d, |b, d| {
            b.iter(|| d.apply(&base))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
