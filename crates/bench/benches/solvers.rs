//! Archival solver scalability on synthetic storage graphs (the RD-style
//! scaling axis of §V): random version chains with materialize and delta
//! options, growing vertex counts.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mh_pas::{apply_alpha_budgets, solver, EdgeKind, RetrievalScheme, StorageGraph, NULL_VERTEX};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random SD-like graph: `versions` chains of `snaps` snapshots, each with
/// `layers` matrices; delta edges along chains plus cross-version links.
fn synthetic_graph(versions: usize, snaps: usize, layers: usize, seed: u64) -> StorageGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = StorageGraph::new();
    let mut prev_snapshot: Vec<Vec<usize>> = Vec::new();
    let mut first_of_version: Vec<Vec<usize>> = Vec::new();
    for v in 0..versions {
        let mut prev: Option<Vec<usize>> = None;
        for s in 0..snaps {
            let mut members = Vec::new();
            for l in 0..layers {
                let size = 1000.0 * (1.0 + l as f64);
                let vid = g.add_vertex(&format!("v{v}/s{s}/l{l}"));
                g.add_edge(NULL_VERTEX, vid, EdgeKind::Materialize, size, size * 0.5);
                if let Some(p) = &prev {
                    // Chain delta: 5-20% of materialized size.
                    let frac = rng.gen_range(0.05..0.20);
                    g.add_delta_pair(p[l], vid, size * frac, size * 0.5 * frac + 10.0);
                }
                members.push(vid);
            }
            if s == 0 {
                first_of_version.push(members.clone());
            }
            g.add_snapshot(&format!("v{v}/s{s}"), members.clone(), f64::INFINITY);
            prev = Some(members);
        }
        prev_snapshot.push(prev.unwrap());
    }
    // Cross-version fine-tuning deltas from version 0's latest snapshot.
    #[allow(clippy::needless_range_loop)]
    for v in 1..versions {
        for l in 0..layers {
            let size = 1000.0 * (1.0 + l as f64);
            let frac = rng.gen_range(0.2..0.5);
            g.add_delta_pair(
                prev_snapshot[0][l],
                first_of_version[v][l],
                size * frac,
                size * 0.5 * frac + 10.0,
            );
        }
    }
    g
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    for (versions, snaps) in [(4usize, 4usize), (8, 6), (12, 10)] {
        let mut g = synthetic_graph(versions, snaps, 4, 7);
        apply_alpha_budgets(&mut g, 1.5, RetrievalScheme::Independent).unwrap();
        let n = g.num_vertices() - 1;
        group.bench_with_input(BenchmarkId::new("mst", n), &g, |b, g| {
            b.iter(|| solver::mst(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("spt", n), &g, |b, g| {
            b.iter(|| solver::spt(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("last", n), &g, |b, g| {
            b.iter(|| solver::last(g, 0.5).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pas-mt", n), &g, |b, g| {
            b.iter(|| solver::pas_mt(g, RetrievalScheme::Independent).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pas-pt", n), &g, |b, g| {
            b.iter(|| solver::pas_pt(g, RetrievalScheme::Independent).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
