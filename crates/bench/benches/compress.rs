//! Compressor micro-benchmarks: throughput on the payloads PAS actually
//! stores — high-order byte planes (low entropy) and low-order planes
//! (near-random) of trained weight matrices.

#![allow(clippy::unwrap_used)] // test/bench/demo code: panics are failures
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mh_compress::{compress, decompress, Level};
use mh_dnn::{zoo, Weights};
use mh_tensor::SegmentedMatrix;

fn plane_data(plane: usize) -> Vec<u8> {
    let net = zoo::vgg_s(10);
    let w = Weights::init(&net, 42).unwrap();
    let mut out = Vec::new();
    for (_, m) in w.layers() {
        out.extend_from_slice(SegmentedMatrix::from_matrix(m).plane(plane));
    }
    out
}

fn bench_compress(c: &mut Criterion) {
    let high = plane_data(0);
    let low = plane_data(3);
    let mut g = c.benchmark_group("compress");
    g.sample_size(20);
    for (name, data) in [("plane0-high", &high), ("plane3-low", &low)] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        for (lname, level) in [("fast", Level::Fast), ("default", Level::Default)] {
            g.bench_with_input(
                BenchmarkId::new(format!("{name}/{lname}"), data.len()),
                data,
                |b, d| b.iter(|| compress(d, level)),
            );
        }
    }
    g.finish();

    let mut g = c.benchmark_group("decompress");
    g.sample_size(20);
    for (name, data) in [("plane0-high", &high), ("plane3-low", &low)] {
        let packed = compress(data, Level::Default);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new(name, data.len()), &packed, |b, p| {
            b.iter(|| decompress(p).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
