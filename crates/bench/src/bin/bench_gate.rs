//! `bench_gate` — CI perf-regression gate over bench reports.
//!
//! ```text
//! bench_gate <report.json> [--baseline tools/bench_baseline.json] [--tolerance 0.30]
//! ```
//!
//! Dispatches on the report's `schema` field: `bench-pas-v1`
//! (`BENCH_pas.json`, pair with `tools/bench_baseline.json`) checks
//! hardware-clamped stage speedups and bit-identical stores;
//! `bench-hub-v1` (`BENCH_hub.json`, pair with
//! `tools/bench_baseline_hub.json`) checks the reactor's concurrency
//! headroom, latency-under-load, cache hit rate, and 503 backpressure.
//! Exits 0 when every check passes; exits 1 with one line per violation
//! otherwise. See `crates/bench/src/gate.rs` for the threshold semantics.

use mh_bench::gate;
use std::process::ExitCode;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("usage: bench_gate <report.json> [--baseline <file>] [--tolerance 0.30]")?;
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| "tools/bench_baseline.json".to_string());
    let tolerance: f64 = match flag_value(&args, "--tolerance") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid --tolerance: {raw}"))?,
        None => 0.30,
    };
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
    }

    let read = |p: &str| -> Result<gate::Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        gate::parse(&text).map_err(|e| format!("parsing {p}: {e}"))
    };
    let current = read(report_path)?;
    let baseline = read(&baseline_path)?;

    let outcome = gate::check_any(&current, &baseline, tolerance);
    if outcome.passed() {
        println!(
            "bench_gate: ok — {} stages within {:.0}% of baseline expectations",
            outcome.stages_checked,
            tolerance * 100.0
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &outcome.violations {
            eprintln!("bench_gate: FAIL {v}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::from(2)
        }
    }
}
