//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro [all|table1|fig6a|fig6b|table4|fig6c|table5|fig6d|ablations|pas] [--quick]`
//!
//! `--quick` shrinks training lengths and workload sizes so the full suite
//! finishes in well under a minute; without it the defaults match the
//! numbers recorded in EXPERIMENTS.md.

use mh_bench::experiments::*;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    // Workload knobs.
    let train_iters = if quick { 6 } else { 24 };
    let (sd_versions, sd_snapshots) = if quick { (3, 2) } else { (6, 4) };
    let (t5_snapshots, t5_iters) = if quick { (3, 3) } else { (6, 6) };
    let fig6d_iters = if quick { 8 } else { 80 };

    let run_one = |name: &str| -> std::io::Result<()> {
        println!("\n### {name} ###");
        match name {
            "table1" => table1::run(),
            "fig6a" => fig6a::run(train_iters),
            "fig6b" => fig6b::run(train_iters),
            "table4" => table4::run(train_iters),
            "fig6c" => fig6c::run(sd_versions, sd_snapshots),
            "table5" => table5::run(t5_snapshots, t5_iters),
            "fig6d" => fig6d::run(4, fig6d_iters),
            "ablations" => ablations::run(train_iters),
            "pas" => pas::run(quick),
            "rd" => rd::run(),
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        }
    };

    if what == "all" {
        for name in [
            "table1",
            "fig6a",
            "fig6b",
            "table4",
            "fig6c",
            "table5",
            "fig6d",
            "rd",
            "ablations",
            "pas",
        ] {
            run_one(name)?;
        }
    } else {
        run_one(what)?;
    }
    println!("\nresults written under results/");
    Ok(())
}
