//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro [all|table1|fig6a|fig6b|table4|fig6c|table5|fig6d|ablations|pas] [--quick]`
//!
//! `--quick` shrinks training lengths and workload sizes so the full suite
//! finishes in well under a minute; without it the defaults match the
//! numbers recorded in EXPERIMENTS.md.
//!
//! The same experiments are reachable as `modelhub repro <name>`, where
//! they compose with `modelhub prof` and `--trace`.

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let run_one = |name: &str| -> std::io::Result<()> {
        println!("\n### {name} ###");
        mh_bench::run_experiment(name, quick)
    };

    if what == "all" {
        for name in mh_bench::EXPERIMENTS {
            run_one(name)?;
        }
    } else if let Err(e) = run_one(what) {
        if e.kind() == std::io::ErrorKind::InvalidInput {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return Err(e);
    }
    println!("\nresults written under results/");
    Ok(())
}
