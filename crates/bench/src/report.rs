//! Reporting utilities: aligned text tables on stdout plus CSV files under
//! `results/`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table that also serializes to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print to stdout and persist both renderings under `results/`.
    pub fn emit(&self, results_dir: &Path, stem: &str) -> std::io::Result<()> {
        println!("{}", self.render());
        std::fs::create_dir_all(results_dir)?;
        std::fs::write(results_dir.join(format!("{stem}.txt")), self.render())?;
        std::fs::write(results_dir.join(format!("{stem}.csv")), self.to_csv())?;
        Ok(())
    }
}

/// Default results directory (repo-relative `results/`).
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Format a byte count humanely.
pub fn human_bytes(n: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut x = n as f64;
    let mut u = 0;
    while x >= 1024.0 && u < UNITS.len() - 1 {
        x /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{n} B")
    } else {
        format!("{x:.1} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-name"));
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["has,comma".into()]);
        assert!(t.to_csv().contains("\"has,comma\""));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
