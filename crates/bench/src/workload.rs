//! Shared workload construction for the experiments: trained model
//! families, fine-tuned pairs, and checkpoint chains, all deterministic per
//! seed.

use mh_dnn::{
    fine_tune_setup, synth_dataset, zoo, Dataset, Hyperparams, Network, SynthConfig, TrainResult,
    Trainer, Weights,
};

/// A trained model with its data.
pub struct TrainedModel {
    pub name: &'static str,
    pub network: Network,
    pub result: TrainResult,
    pub data: Dataset,
}

pub fn dataset(classes: usize, seed: u64) -> Dataset {
    synth_dataset(&SynthConfig {
        num_classes: classes,
        train_per_class: 12,
        test_per_class: 5,
        noise: 0.1,
        seed,
        ..Default::default()
    })
}

fn train(
    name: &'static str,
    network: Network,
    data: Dataset,
    seed: u64,
    iters: usize,
    snapshot_every: usize,
) -> TrainedModel {
    let trainer = Trainer {
        hp: Hyperparams {
            base_lr: 0.06,
            ..Default::default()
        },
        snapshot_every,
    };
    let init = Weights::init(&network, seed).expect("valid zoo network");
    let result = trainer
        .train(&network, init, &data, iters)
        .expect("training succeeds");
    TrainedModel {
        name,
        network,
        result,
        data,
    }
}

/// The three "real-world" models of §V-A, scaled: LeNet-, AlexNet- and
/// VGG-style networks trained on synthetic vision data.
pub fn three_models(classes: usize, iters: usize) -> Vec<TrainedModel> {
    vec![
        train(
            "lenet",
            zoo::lenet_s(classes),
            dataset(classes, 101),
            11,
            iters,
            0,
        ),
        train(
            "alexnet",
            zoo::alexnet_s(classes),
            dataset(classes, 102),
            12,
            iters,
            0,
        ),
        train(
            "vgg",
            zoo::vgg_s(classes),
            dataset(classes, 103),
            13,
            iters,
            0,
        ),
    ]
}

/// Fig 6(b) scenario: two *retrained* models — same architecture, different
/// initialization — whose parameters are uncorrelated.
pub fn similar_pair(iters: usize) -> (Weights, Weights) {
    let a = train("a", zoo::lenet_s(5), dataset(5, 201), 21, iters, 0);
    let b = train("b", zoo::lenet_s(5), dataset(5, 201), 99, iters, 0);
    (a.result.weights, b.result.weights)
}

/// Fig 6(b) scenario: a base model and its fine-tuned descendant (shared
/// feature layers, replaced head, brief fine-tuning).
pub fn finetuned_pair(iters: usize) -> (Weights, Weights) {
    let base = train("base", zoo::lenet_s(5), dataset(5, 301), 31, iters, 0);
    let (ft_net, ft_init) =
        fine_tune_setup(&base.network, &base.result.weights, 4, 77).expect("fine-tune");
    let trainer = Trainer::new(Hyperparams {
        base_lr: 0.01,
        ..Default::default()
    });
    let ft = trainer
        .train(&ft_net, ft_init, &dataset(4, 302), iters / 2)
        .expect("fine-tune training");
    // Compare over shared layers only: drop the replaced head from both.
    let shared_a: Weights = base
        .result
        .weights
        .layers()
        .filter(|(n, _)| ft.weights.get(n).is_some())
        .map(|(n, m)| (n.clone(), m.clone()))
        .collect();
    let shared_b: Weights = ft
        .weights
        .layers()
        .filter(|(n, _)| base.result.weights.get(n).is_some())
        .map(|(n, m)| (n.clone(), m.clone()))
        .collect();
    (shared_a, shared_b)
}

/// Fig 6(b) scenario: adjacent checkpoints of a single training run.
pub fn snapshot_pair(iters: usize) -> (Weights, Weights) {
    let m = train(
        "snaps",
        zoo::lenet_s(5),
        dataset(5, 401),
        41,
        iters,
        iters / 2,
    );
    let snaps = &m.result.snapshots;
    assert!(snaps.len() >= 2);
    (
        snaps[snaps.len() - 2].1.clone(),
        snaps[snaps.len() - 1].1.clone(),
    )
}

/// One trained model with a checkpoint chain (for archival experiments).
pub fn checkpointed_model(snapshots: usize, iters_each: usize) -> TrainedModel {
    train(
        "chain",
        zoo::lenet_s(5),
        dataset(5, 501),
        51,
        snapshots * iters_each,
        iters_each,
    )
}
