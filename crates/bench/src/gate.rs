//! CI perf-regression gate for `BENCH_pas.json`.
//!
//! Compares a freshly measured report against the checked-in baseline
//! (`tools/bench_baseline.json`) and fails on regression. The speedup
//! expectations are hardware-aware: a baseline records the speedup each
//! stage *should* reach given enough cores (`expected_speedup`), and the
//! gate clamps that by what the measuring machine can physically deliver —
//! on a single hardware thread no parallel speedup is possible, so only
//! the pool-overhead bound is enforced there, while a multi-core CI runner
//! enforces the real expectation. Concretely, a stage passes when
//!
//! ```text
//! speedup >= (1 - tolerance) * min(expected_speedup, scale(hw))
//! scale(hw) = 1.0        if hw == 1   (overhead bound only)
//!           = 0.75 * hw  otherwise    (imperfect scaling allowed)
//! ```
//!
//! The gate also requires `bit_identical: true` — a store that differs by
//! thread count is a correctness regression no timing can excuse.
//!
//! The JSON parser below is deliberately minimal (objects, arrays,
//! strings, numbers, bools, null — no escapes beyond `\"` and `\\`): the
//! workspace is offline and the gated documents are machine-written by
//! [`crate::experiments::pas`].

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    skip_ws(b, pos);
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => match b.get(*pos) {
                Some(b'"') => {
                    out.push('"');
                    *pos += 1;
                }
                Some(b'\\') => {
                    out.push('\\');
                    *pos += 1;
                }
                _ => return Err(format!("unsupported escape at byte {pos}")),
            },
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

/// What the gate concluded.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Human-readable violations; empty means the gate passes.
    pub violations: Vec<String>,
    /// Stages actually compared against the baseline.
    pub stages_checked: usize,
}

impl GateOutcome {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The speedup a machine with `hw` hardware threads can be held to.
fn hardware_scale(hw: f64) -> f64 {
    if hw <= 1.0 {
        1.0
    } else {
        0.75 * hw
    }
}

/// Compare a measured report against the baseline with a relative
/// `tolerance` (0.30 = 30%). Structural problems (wrong schema, missing
/// stages) are violations too, so a truncated report cannot pass.
pub fn check_report(current: &Json, baseline: &Json, tolerance: f64) -> GateOutcome {
    let mut violations = Vec::new();
    let mut stages_checked = 0;

    if current.get("schema").and_then(Json::as_str) != Some("bench-pas-v1") {
        violations.push("report schema is not bench-pas-v1".to_string());
    }
    if baseline.get("schema").and_then(Json::as_str) != Some("bench-pas-baseline-v1") {
        violations.push("baseline schema is not bench-pas-baseline-v1".to_string());
    }
    if current.get("bit_identical").and_then(Json::as_bool) != Some(true) {
        violations
            .push("bit_identical is not true: parallel store diverged from serial".to_string());
    }
    let hw = current
        .get("hardware_threads")
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    let par = current
        .get("parallel_threads")
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    // Never expect more than the benchmark's own thread count either.
    let scale = hardware_scale(hw.min(par));

    let stages = current.get("stages").and_then(Json::as_arr).unwrap_or(&[]);
    for expected in baseline.get("stages").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(name) = expected.get("name").and_then(Json::as_str) else {
            violations.push("baseline stage without a name".to_string());
            continue;
        };
        let Some(stage) = stages
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        else {
            violations.push(format!("stage {name} missing from report"));
            continue;
        };
        let expected_speedup = expected
            .get("expected_speedup")
            .and_then(Json::as_f64)
            .unwrap_or(1.0);
        let speedup = stage.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
        let threshold = (1.0 - tolerance) * expected_speedup.min(scale);
        stages_checked += 1;
        if speedup < threshold {
            violations.push(format!(
                "stage {name}: speedup {speedup:.3} below threshold {threshold:.3} \
                 (expected {expected_speedup:.2}, hw scale {scale:.2}, tolerance {tolerance:.0}%)",
                tolerance = tolerance * 100.0
            ));
        }
    }
    if stages_checked == 0 {
        violations.push("baseline defines no stages to check".to_string());
    }
    GateOutcome {
        violations,
        stages_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = include_str!("../../../tools/bench_baseline.json");
    const REGRESSED: &str = include_str!("../../../tools/bench_regressed_fixture.json");

    fn good_report(hw: usize) -> String {
        format!(
            r#"{{
  "schema": "bench-pas-v1",
  "mode": "quick",
  "hardware_threads": {hw},
  "parallel_threads": 4,
  "bit_identical": true,
  "stages": [
    {{"name": "solver_repair", "bytes": 1, "serial_ms": 10.0, "parallel_ms": 10.0, "speedup": 1.0, "serial_mb_s": 1.0, "parallel_mb_s": 1.0}},
    {{"name": "archival_build", "bytes": 1, "serial_ms": 100.0, "parallel_ms": 45.0, "speedup": 2.222, "serial_mb_s": 1.0, "parallel_mb_s": 2.2}},
    {{"name": "segment_retrieval", "bytes": 1, "serial_ms": 100.0, "parallel_ms": 60.0, "speedup": 1.667, "serial_mb_s": 1.0, "parallel_mb_s": 1.7}},
    {{"name": "progressive_eval", "bytes": 1, "serial_ms": 10.0, "parallel_ms": 9.5, "speedup": 1.053, "serial_mb_s": 1.0, "parallel_mb_s": 1.1}}
  ]
}}"#
        )
    }

    #[test]
    fn parser_handles_the_report_shape() {
        let v = parse(&good_report(4)).expect("parse");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("bench-pas-v1"));
        assert_eq!(v.get("bit_identical").and_then(Json::as_bool), Some(true));
        let stages = v.get("stages").and_then(Json::as_arr).expect("stages");
        assert_eq!(stages.len(), 4);
        assert_eq!(stages[1].get("speedup").and_then(Json::as_f64), Some(2.222));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn gate_passes_healthy_multicore_report() {
        let current = parse(&good_report(4)).expect("report");
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
        assert_eq!(outcome.stages_checked, 4);
    }

    #[test]
    fn gate_on_one_hardware_thread_enforces_only_overhead_bound() {
        // hw=1: speedup ~1.0 everywhere must pass, heavy slowdown must not.
        let mut report = good_report(1);
        report = report
            .replace("\"speedup\": 2.222", "\"speedup\": 0.95")
            .replace("\"speedup\": 1.667", "\"speedup\": 0.90");
        let current = parse(&report).expect("report");
        let baseline = parse(BASELINE).expect("baseline");
        assert!(check_report(&current, &baseline, 0.30).passed());

        let regressed = report.replace("\"speedup\": 0.95", "\"speedup\": 0.40");
        let current = parse(&regressed).expect("report");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(
            !outcome.passed(),
            "0.4x on 1 thread is pool overhead gone bad"
        );
    }

    #[test]
    fn gate_fails_on_regressed_fixture() {
        let current = parse(REGRESSED).expect("fixture");
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(
            !outcome.passed(),
            "the regressed fixture must fail the gate"
        );
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.contains("archival_build")),
            "violations: {:?}",
            outcome.violations
        );
    }

    #[test]
    fn gate_fails_on_nonidentical_store_and_missing_stage() {
        let report = good_report(4).replace("\"bit_identical\": true", "\"bit_identical\": false");
        let current = parse(&report).expect("report");
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.contains("bit_identical")));

        let truncated = parse(
            r#"{"schema": "bench-pas-v1", "hardware_threads": 4, "parallel_threads": 4, "bit_identical": true, "stages": []}"#,
        )
        .expect("truncated");
        let outcome = check_report(&truncated, &baseline, 0.30);
        assert!(
            outcome.violations.iter().any(|v| v.contains("missing")),
            "truncated reports must fail structurally"
        );
    }
}
