//! CI perf-regression gate for `BENCH_pas.json`.
//!
//! Compares a freshly measured report against the checked-in baseline
//! (`tools/bench_baseline.json`) and fails on regression. The speedup
//! expectations are hardware-aware: a baseline records the speedup each
//! stage *should* reach given enough cores (`expected_speedup`), and the
//! gate clamps that by what the measuring machine can physically deliver —
//! on a single hardware thread no parallel speedup is possible, so only
//! the pool-overhead bound is enforced there, while a multi-core CI runner
//! enforces the real expectation. Concretely, a stage passes when
//!
//! ```text
//! speedup >= (1 - tolerance) * min(expected_speedup, scale(hw))
//! scale(hw) = 1.0        if hw == 1   (overhead bound only)
//!           = 0.75 * hw  otherwise    (imperfect scaling allowed)
//! ```
//!
//! The gate also requires `bit_identical: true` — a store that differs by
//! thread count is a correctness regression no timing can excuse.
//!
//! The JSON parser below is deliberately minimal (objects, arrays,
//! strings, numbers, bools, null — no escapes beyond `\"` and `\\`): the
//! workspace is offline and the gated documents are machine-written by
//! [`crate::experiments::pas`].

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    skip_ws(b, pos);
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => match b.get(*pos) {
                Some(b'"') => {
                    out.push('"');
                    *pos += 1;
                }
                Some(b'\\') => {
                    out.push('\\');
                    *pos += 1;
                }
                _ => return Err(format!("unsupported escape at byte {pos}")),
            },
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

/// What the gate concluded.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Human-readable violations; empty means the gate passes.
    pub violations: Vec<String>,
    /// Stages actually compared against the baseline.
    pub stages_checked: usize,
}

impl GateOutcome {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The speedup a machine with `hw` hardware threads can be held to.
fn hardware_scale(hw: f64) -> f64 {
    if hw <= 1.0 {
        1.0
    } else {
        0.75 * hw
    }
}

/// Per-stage overhead floor: the parallel leg may cost at most this factor
/// of the serial leg, on ANY machine. Hardware-aware speedup clamping can
/// excuse a missing speedup on a starved runner, but it must never excuse
/// parallel losing outright to serial — that is the pool taxing the
/// workload, not the machine lacking cores.
const OVERHEAD_FACTOR: f64 = 1.10;
/// Absolute grace on the overhead floor, so sub-millisecond stages are not
/// failed on scheduler noise.
const OVERHEAD_GRACE_MS: f64 = 1.0;
/// Half-ULP of the report's 3-decimal rounding: `serial_ms`,
/// `parallel_ms`, and `speedup` are each written rounded to 0.001, so a
/// reported value may sit up to this far from the true one.
const ROUND_EPS: f64 = 0.0005;
/// Ceiling on `flightrec_overhead_pct`: the always-on flight recorder may
/// cost at most this much of the fully-disarmed serial build. Machine
/// independent — it is a ratio of two runs on the same box.
const FLIGHTREC_OVERHEAD_MAX_PCT: f64 = 3.0;

/// Compare a measured report against the baseline with a relative
/// `tolerance` (0.30 = 30%). Structural problems (wrong schema, missing
/// stages) are violations too, so a truncated report cannot pass.
///
/// Beyond the hardware-clamped speedup expectation, every stage must
/// satisfy two machine-independent checks:
/// * the overhead floor: `parallel_ms <= 1.10 * serial_ms + 1 ms`, and
/// * speedup consistency: the reported `speedup` must equal
///   `serial_ms / parallel_ms` within the 3-decimal rounding interval —
///   a report whose headline number disagrees with its own timings fails,
///   it is not merely suspicious.
pub fn check_report(current: &Json, baseline: &Json, tolerance: f64) -> GateOutcome {
    let mut violations = Vec::new();
    let mut stages_checked = 0;

    if current.get("schema").and_then(Json::as_str) != Some("bench-pas-v1") {
        violations.push("report schema is not bench-pas-v1".to_string());
    }
    if baseline.get("schema").and_then(Json::as_str) != Some("bench-pas-baseline-v1") {
        violations.push("baseline schema is not bench-pas-baseline-v1".to_string());
    }
    if current.get("bit_identical").and_then(Json::as_bool) != Some(true) {
        violations
            .push("bit_identical is not true: parallel store diverged from serial".to_string());
    }
    // Flight-recorder overhead: the leg is null under ambient tracing and
    // absent in pre-flightrec reports, so only a present number is gated.
    if let Some(pct) = current.get("flightrec_overhead_pct").and_then(Json::as_f64) {
        if pct > FLIGHTREC_OVERHEAD_MAX_PCT {
            violations.push(format!(
                "flightrec_overhead_pct {pct:.3} exceeds the \
                 {FLIGHTREC_OVERHEAD_MAX_PCT:.1}% always-on budget"
            ));
        }
    }
    let hw = current
        .get("hardware_threads")
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    // Prefer the width the parallel legs actually ran at; older reports
    // only record the requested width, which hw.min() clamps to the same
    // effective value.
    let par = current
        .get("parallel_threads_effective")
        .or_else(|| current.get("parallel_threads"))
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    // Never expect more than the benchmark's own thread count either.
    let scale = hardware_scale(hw.min(par));

    let stages = current.get("stages").and_then(Json::as_arr).unwrap_or(&[]);
    for expected in baseline.get("stages").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(name) = expected.get("name").and_then(Json::as_str) else {
            violations.push("baseline stage without a name".to_string());
            continue;
        };
        let Some(stage) = stages
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        else {
            violations.push(format!("stage {name} missing from report"));
            continue;
        };
        let expected_speedup = expected
            .get("expected_speedup")
            .and_then(Json::as_f64)
            .unwrap_or(1.0);
        let speedup = stage.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
        let threshold = (1.0 - tolerance) * expected_speedup.min(scale);
        stages_checked += 1;
        if speedup < threshold {
            violations.push(format!(
                "stage {name}: speedup {speedup:.3} below threshold {threshold:.3} \
                 (expected {expected_speedup:.2}, hw scale {scale:.2}, tolerance {tolerance:.0}%)",
                tolerance = tolerance * 100.0
            ));
        }
        match (
            stage.get("serial_ms").and_then(Json::as_f64),
            stage.get("parallel_ms").and_then(Json::as_f64),
        ) {
            (Some(s), Some(p)) => {
                let floor = OVERHEAD_FACTOR * s + OVERHEAD_GRACE_MS;
                if p > floor {
                    violations.push(format!(
                        "stage {name}: parallel {p:.3} ms exceeds the overhead floor \
                         {floor:.3} ms ({OVERHEAD_FACTOR:.2} x serial {s:.3} ms + \
                         {OVERHEAD_GRACE_MS:.0} ms grace) — parallel must never lose \
                         to serial, regardless of core count"
                    ));
                }
                // Interval of true ratios compatible with the rounded
                // serial/parallel values, widened by the speedup's own
                // rounding half-ULP.
                let lo = (s - ROUND_EPS) / (p + ROUND_EPS);
                let hi = if p - ROUND_EPS <= 0.0 {
                    f64::INFINITY
                } else {
                    (s + ROUND_EPS) / (p - ROUND_EPS)
                };
                if speedup < lo - ROUND_EPS || speedup > hi + ROUND_EPS {
                    violations.push(format!(
                        "stage {name}: reported speedup {speedup:.3} is inconsistent \
                         with serial {s:.3} ms / parallel {p:.3} ms \
                         (rounding admits [{lo:.4}, {hi:.4}])"
                    ));
                }
            }
            _ => violations.push(format!(
                "stage {name}: serial_ms/parallel_ms missing — the overhead floor \
                 cannot be checked"
            )),
        }
    }
    if stages_checked == 0 {
        violations.push("baseline defines no stages to check".to_string());
    }
    GateOutcome {
        violations,
        stages_checked,
    }
}

/// Compare a `bench-hub-v1` load-test report (from `repro hub`) against
/// the hub baseline. The checks mirror the reactor's acceptance criteria:
///
/// - `concurrency_ratio` (held connections / pool width) must meet the
///   baseline's `min_concurrency_ratio` with **no** tolerance — it is a
///   structural property of the reactor, not a timing.
/// - `connections_peak` must cover every held connection.
/// - `saturated_503` must be true: the over-cap connection got
///   backpressure, not a queue slot.
/// - `p99_ratio` (damped loaded/idle p99) must stay under the baseline's
///   `max_p99_ratio`, widened by the tolerance — probing through the held
///   load must cost ~nothing.
/// - `cache_hit_rate` must reach the baseline's `min_cache_hit_rate`,
///   shrunk by the tolerance.
/// - `conns_per_sec` must reach the baseline's `min_conns_per_sec`,
///   shrunk by the tolerance and halved on single-thread machines (the
///   reactor and the load generator share one core there).
pub fn check_hub_report(current: &Json, baseline: &Json, tolerance: f64) -> GateOutcome {
    let mut violations = Vec::new();
    let mut checks = 0;

    if current.get("schema").and_then(Json::as_str) != Some("bench-hub-v1") {
        violations.push("report schema is not bench-hub-v1".to_string());
    }
    if baseline.get("schema").and_then(Json::as_str) != Some("bench-hub-baseline-v1") {
        violations.push("baseline schema is not bench-hub-baseline-v1".to_string());
    }
    let num = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_f64);

    // Structural: concurrency headroom, peak coverage, backpressure.
    let min_ratio = num(baseline, "min_concurrency_ratio").unwrap_or(4.0);
    let ratio = num(current, "concurrency_ratio").unwrap_or(0.0);
    checks += 1;
    if ratio < min_ratio {
        violations.push(format!(
            "concurrency_ratio {ratio:.1} below required {min_ratio:.1} \
             (held connections per pool thread)"
        ));
    }
    let held = num(current, "held_connections").unwrap_or(f64::INFINITY);
    let peak = num(current, "connections_peak").unwrap_or(0.0);
    checks += 1;
    if peak < held {
        violations.push(format!(
            "connections_peak {peak:.0} below held_connections {held:.0}: \
             the server never held the full load concurrently"
        ));
    }
    checks += 1;
    if current.get("saturated_503").and_then(Json::as_bool) != Some(true) {
        violations.push(
            "saturated_503 is not true: over-cap connections must get 503 + Retry-After"
                .to_string(),
        );
    }

    // Timing: latency under load, cache, throughput (tolerance-widened).
    let max_p99 = num(baseline, "max_p99_ratio").unwrap_or(1.5);
    let p99_ratio = num(current, "p99_ratio").unwrap_or(f64::INFINITY);
    let p99_limit = max_p99 * (1.0 + tolerance);
    checks += 1;
    if p99_ratio > p99_limit {
        violations.push(format!(
            "p99_ratio {p99_ratio:.3} above limit {p99_limit:.3} \
             (loaded p99 must stay near the idle baseline)"
        ));
    }
    let min_hit = num(baseline, "min_cache_hit_rate").unwrap_or(0.3);
    let hit_rate = num(current, "cache_hit_rate").unwrap_or(0.0);
    let hit_floor = (1.0 - tolerance) * min_hit;
    checks += 1;
    if hit_rate < hit_floor {
        violations.push(format!(
            "cache_hit_rate {hit_rate:.3} below floor {hit_floor:.3}"
        ));
    }
    let hw = num(current, "hardware_threads").unwrap_or(1.0);
    let hw_clamp = if hw <= 1.0 { 0.5 } else { 1.0 };
    let min_cps = num(baseline, "min_conns_per_sec").unwrap_or(50.0);
    let cps = num(current, "conns_per_sec").unwrap_or(0.0);
    let cps_floor = (1.0 - tolerance) * min_cps * hw_clamp;
    checks += 1;
    if cps < cps_floor {
        violations.push(format!(
            "conns_per_sec {cps:.1} below floor {cps_floor:.1} \
             (hw clamp {hw_clamp:.2})"
        ));
    }

    GateOutcome {
        violations,
        stages_checked: checks,
    }
}

/// Dispatch on the report's `schema` field: `bench-pas-v1` reports go to
/// [`check_report`], `bench-hub-v1` reports to [`check_hub_report`]. An
/// unknown schema is a violation, so a garbled report cannot pass.
pub fn check_any(current: &Json, baseline: &Json, tolerance: f64) -> GateOutcome {
    match current.get("schema").and_then(Json::as_str) {
        Some("bench-pas-v1") => check_report(current, baseline, tolerance),
        Some("bench-hub-v1") => check_hub_report(current, baseline, tolerance),
        other => GateOutcome {
            violations: vec![format!("unrecognized report schema {other:?}")],
            stages_checked: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All checked-in gate fixtures live in `tools/`; one loader keeps
    /// the five include paths from drifting apart.
    macro_rules! tools_fixture {
        ($name:literal) => {
            include_str!(concat!("../../../tools/", $name))
        };
    }

    const BASELINE: &str = tools_fixture!("bench_baseline.json");
    const REGRESSED: &str = tools_fixture!("bench_regressed_fixture.json");
    const REGRESSED_PARALLEL: &str = tools_fixture!("bench_regressed_parallel_fixture.json");
    const HUB_BASELINE: &str = tools_fixture!("bench_baseline_hub.json");
    const HUB_REGRESSED: &str = tools_fixture!("bench_regressed_hub_fixture.json");

    fn good_hub_report(hw: usize) -> String {
        format!(
            r#"{{
  "schema": "bench-hub-v1",
  "mode": "quick",
  "hardware_threads": {hw},
  "backend": "epoll",
  "pool_width": 2,
  "held_connections": 16,
  "concurrency_ratio": 8.000,
  "connections_peak": 17,
  "conns_per_sec": 900.000,
  "idle_p50_ms": 0.200,
  "idle_p99_ms": 0.900,
  "loaded_p50_ms": 0.250,
  "loaded_p99_ms": 1.100,
  "p99_ratio": 1.105,
  "cache_hit_rate": 0.500,
  "max_conns": 8,
  "saturation_conns": 8,
  "saturated_503": true
}}"#
        )
    }

    fn good_report(hw: usize) -> String {
        format!(
            r#"{{
  "schema": "bench-pas-v1",
  "mode": "quick",
  "hardware_threads": {hw},
  "parallel_threads": 4,
  "bit_identical": true,
  "stages": [
    {{"name": "solver_repair", "bytes": 1, "serial_ms": 10.0, "parallel_ms": 10.0, "speedup": 1.0, "serial_mb_s": 1.0, "parallel_mb_s": 1.0}},
    {{"name": "archival_build", "bytes": 1, "serial_ms": 100.0, "parallel_ms": 45.0, "speedup": 2.222, "serial_mb_s": 1.0, "parallel_mb_s": 2.2}},
    {{"name": "segment_retrieval", "bytes": 1, "serial_ms": 100.0, "parallel_ms": 60.0, "speedup": 1.667, "serial_mb_s": 1.0, "parallel_mb_s": 1.7}},
    {{"name": "progressive_eval", "bytes": 1, "serial_ms": 10.0, "parallel_ms": 9.5, "speedup": 1.053, "serial_mb_s": 1.0, "parallel_mb_s": 1.1}}
  ]
}}"#
        )
    }

    #[test]
    fn parser_handles_the_report_shape() {
        let v = parse(&good_report(4)).expect("parse");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("bench-pas-v1"));
        assert_eq!(v.get("bit_identical").and_then(Json::as_bool), Some(true));
        let stages = v.get("stages").and_then(Json::as_arr).expect("stages");
        assert_eq!(stages.len(), 4);
        assert_eq!(stages[1].get("speedup").and_then(Json::as_f64), Some(2.222));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn gate_passes_healthy_multicore_report() {
        let current = parse(&good_report(4)).expect("report");
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
        assert_eq!(outcome.stages_checked, 4);
    }

    #[test]
    fn gate_enforces_the_flightrec_overhead_budget() {
        // Over-budget recorder overhead fails; a null leg (ambient
        // tracing) and an absent field (pre-flightrec report, as in
        // good_report) both pass.
        let over = good_report(4).replace(
            "\"bit_identical\": true,",
            "\"bit_identical\": true,\n  \"flightrec_overhead_pct\": 4.5,",
        );
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&parse(&over).expect("report"), &baseline, 0.30);
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.contains("flightrec_overhead_pct")));

        let null = good_report(4).replace(
            "\"bit_identical\": true,",
            "\"bit_identical\": true,\n  \"flightrec_overhead_pct\": null,",
        );
        let outcome = check_report(&parse(&null).expect("report"), &baseline, 0.30);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);

        let under = good_report(4).replace(
            "\"bit_identical\": true,",
            "\"bit_identical\": true,\n  \"flightrec_overhead_pct\": 1.2,",
        );
        let outcome = check_report(&parse(&under).expect("report"), &baseline, 0.30);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
    }

    #[test]
    fn gate_on_one_hardware_thread_enforces_the_overhead_floor() {
        // hw=1: near-1.0 speedups (mild pool overhead, inside the 10%
        // floor) must pass; parallel losing >10% to serial must not, even
        // though the hardware-clamped speedup threshold alone would have
        // allowed it — that loophole is how the original regression
        // shipped.
        let mut report = good_report(1);
        report = report
            .replace(
                "\"serial_ms\": 100.0, \"parallel_ms\": 45.0, \"speedup\": 2.222",
                "\"serial_ms\": 100.0, \"parallel_ms\": 105.0, \"speedup\": 0.952",
            )
            .replace(
                "\"serial_ms\": 100.0, \"parallel_ms\": 60.0, \"speedup\": 1.667",
                "\"serial_ms\": 100.0, \"parallel_ms\": 108.0, \"speedup\": 0.926",
            );
        let current = parse(&report).expect("report");
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);

        // 0.79x: parallel 126.582 ms against serial 100 ms breaches the
        // 1.10x + 1 ms floor on any machine.
        let regressed = report.replace(
            "\"serial_ms\": 100.0, \"parallel_ms\": 105.0, \"speedup\": 0.952",
            "\"serial_ms\": 100.0, \"parallel_ms\": 126.582, \"speedup\": 0.790",
        );
        let current = parse(&regressed).expect("report");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(
            !outcome.passed(),
            "parallel-slower-than-serial must fail even at hw=1"
        );
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.contains("overhead floor")),
            "violations: {:?}",
            outcome.violations
        );
    }

    #[test]
    fn gate_fails_inconsistent_speedup_beyond_rounding() {
        // A headline speedup that cannot be serial_ms/parallel_ms under
        // any 3-decimal rounding is a violation, not a warning.
        let report = good_report(4).replace(
            "\"serial_ms\": 100.0, \"parallel_ms\": 45.0, \"speedup\": 2.222",
            "\"serial_ms\": 100.0, \"parallel_ms\": 45.0, \"speedup\": 2.300",
        );
        let current = parse(&report).expect("report");
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(!outcome.passed());
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.contains("inconsistent")),
            "violations: {:?}",
            outcome.violations
        );

        // Rounding itself is never punished: 1.667 vs 100/60 passes (the
        // healthy report), and a stage without timings fails structurally.
        let stripped = good_report(4).replace(
            "\"serial_ms\": 100.0, \"parallel_ms\": 45.0, \"speedup\": 2.222",
            "\"speedup\": 2.222",
        );
        let current = parse(&stripped).expect("report");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.contains("serial_ms/parallel_ms missing")),
            "violations: {:?}",
            outcome.violations
        );
    }

    #[test]
    fn gate_fails_regressed_parallel_fixture_that_old_clamp_passed() {
        // The dedicated CI negative fixture: hw=1, every speedup above the
        // old hardware-clamped threshold (0.7), yet parallel strictly
        // slower than serial. The overhead floor must reject it.
        let current = parse(REGRESSED_PARALLEL).expect("fixture");
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(
            !outcome.passed(),
            "regressed-parallel fixture must fail the gate"
        );
        assert!(
            outcome
                .violations
                .iter()
                .all(|v| v.contains("overhead floor")),
            "it must fail on the floor alone (the old rule passed it): {:?}",
            outcome.violations
        );
    }

    #[test]
    fn gate_fails_on_regressed_fixture() {
        let current = parse(REGRESSED).expect("fixture");
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(
            !outcome.passed(),
            "the regressed fixture must fail the gate"
        );
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.contains("archival_build")),
            "violations: {:?}",
            outcome.violations
        );
    }

    #[test]
    fn hub_gate_passes_healthy_report() {
        let current = parse(&good_hub_report(4)).expect("report");
        let baseline = parse(HUB_BASELINE).expect("baseline");
        let outcome = check_hub_report(&current, &baseline, 0.30);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
        assert_eq!(outcome.stages_checked, 6);
    }

    #[test]
    fn hub_gate_fails_on_regressed_fixture() {
        let current = parse(HUB_REGRESSED).expect("fixture");
        let baseline = parse(HUB_BASELINE).expect("baseline");
        let outcome = check_hub_report(&current, &baseline, 0.30);
        assert!(!outcome.passed(), "regressed hub fixture must fail");
        let all = outcome.violations.join("; ");
        assert!(all.contains("concurrency_ratio"), "violations: {all}");
        assert!(all.contains("saturated_503"), "violations: {all}");
    }

    #[test]
    fn hub_gate_enforces_structure_without_tolerance() {
        // concurrency_ratio is structural: 30% tolerance must not save a
        // report that only held 2 connections per worker.
        let report = good_hub_report(4).replace(
            "\"concurrency_ratio\": 8.000",
            "\"concurrency_ratio\": 2.000",
        );
        let current = parse(&report).expect("report");
        let baseline = parse(HUB_BASELINE).expect("baseline");
        assert!(!check_hub_report(&current, &baseline, 0.30).passed());

        // connections_peak below held_connections is likewise fatal.
        let report =
            good_hub_report(4).replace("\"connections_peak\": 17", "\"connections_peak\": 3");
        let current = parse(&report).expect("report");
        assert!(!check_hub_report(&current, &baseline, 0.30).passed());
    }

    #[test]
    fn hub_gate_relaxes_throughput_on_one_hardware_thread() {
        let baseline = parse(HUB_BASELINE).expect("baseline");
        // 45 conns/s fails the multi-core floor (0.7 * 80 = 56)...
        let report =
            good_hub_report(4).replace("\"conns_per_sec\": 900.000", "\"conns_per_sec\": 45.000");
        let current = parse(&report).expect("report");
        assert!(!check_hub_report(&current, &baseline, 0.30).passed());
        // ...but passes on a single hardware thread (floor halves to 28).
        let report =
            good_hub_report(1).replace("\"conns_per_sec\": 900.000", "\"conns_per_sec\": 45.000");
        let current = parse(&report).expect("report");
        let outcome = check_hub_report(&current, &baseline, 0.30);
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
    }

    #[test]
    fn check_any_dispatches_on_schema() {
        let pas = parse(&good_report(4)).expect("pas report");
        let pas_baseline = parse(BASELINE).expect("pas baseline");
        assert!(check_any(&pas, &pas_baseline, 0.30).passed());

        let hub = parse(&good_hub_report(4)).expect("hub report");
        let hub_baseline = parse(HUB_BASELINE).expect("hub baseline");
        assert!(check_any(&hub, &hub_baseline, 0.30).passed());

        let junk = parse(r#"{"schema": "bench-nope-v9"}"#).expect("junk");
        let outcome = check_any(&junk, &hub_baseline, 0.30);
        assert!(!outcome.passed());
        assert!(outcome.violations[0].contains("unrecognized"));
    }

    #[test]
    fn gate_fails_on_nonidentical_store_and_missing_stage() {
        let report = good_report(4).replace("\"bit_identical\": true", "\"bit_identical\": false");
        let current = parse(&report).expect("report");
        let baseline = parse(BASELINE).expect("baseline");
        let outcome = check_report(&current, &baseline, 0.30);
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.contains("bit_identical")));

        let truncated = parse(
            r#"{"schema": "bench-pas-v1", "hardware_threads": 4, "parallel_threads": 4, "bit_identical": true, "stages": []}"#,
        )
        .expect("truncated");
        let outcome = check_report(&truncated, &baseline, 0.30);
        assert!(
            outcome.violations.iter().any(|v| v.contains("missing")),
            "truncated reports must fail structurally"
        );
    }
}
