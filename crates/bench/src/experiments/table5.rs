//! Table V — snapshot recreation wall-clock for different storage plans.
//!
//! An SD-style checkpoint chain is physically stored three ways —
//! full materialization (SPT), minimum storage (MST), and a PAS plan at
//! α = 1.6 — then each snapshot group is recreated at full precision and
//! at 2-byte / 1-byte partial precision, under the Independent (sequential)
//! and Parallel (threaded) retrieval schemes.

use crate::report::{results_dir, Table};
use crate::workload::checkpointed_model;
use mh_compress::Level;
use mh_delta::DeltaOp;
use mh_pas::{
    apply_alpha_budgets, solver, CostModel, GraphBuilder, RetrievalScheme, SegmentStore,
    StorageGraph, StoragePlan, VertexId,
};
use mh_tensor::Matrix;
use std::collections::BTreeMap;

struct Setup {
    graph: StorageGraph,
    matrices: BTreeMap<VertexId, Matrix>,
    groups: Vec<Vec<VertexId>>,
}

fn build(snapshots: usize, iters_each: usize) -> Setup {
    let m = checkpointed_model(snapshots, iters_each);
    let mut builder = GraphBuilder::new(CostModel::default());
    let mut indices = Vec::new();
    for (idx, (_, w)) in m.result.snapshots.iter().enumerate() {
        builder.add_snapshot("chain", idx, w);
        indices.push(idx);
    }
    builder.link_version_chain("chain", &indices);
    let groups = (0..indices.len())
        .map(|i| builder.snapshot_members("chain", i).expect("group"))
        .collect();
    let (graph, matrices) = builder.finish();
    Setup {
        graph,
        matrices,
        groups,
    }
}

/// Wall-clock of recreating every group, averaged per snapshot, in ms.
fn measure(store: &SegmentStore, groups: &[Vec<VertexId>], planes: usize, parallel: bool) -> f64 {
    let reps = 3;
    let start = mh_par::sync::now();
    for _ in 0..reps {
        for g in groups {
            if parallel {
                if planes == 4 {
                    store.recreate_group_parallel(g).expect("retrieve");
                } else {
                    // Parallel partial retrieval via scoped threads.
                    mh_par::sync::thread::scope(|s| {
                        let handles: Vec<_> = g
                            .iter()
                            .map(|&v| s.spawn(move || store.recreate_bounds(v, planes)))
                            .collect();
                        for h in handles {
                            h.join().expect("thread").expect("retrieve");
                        }
                    });
                }
            } else {
                for &v in g {
                    if planes == 4 {
                        store.recreate(v).expect("retrieve");
                    } else {
                        store.recreate_bounds(v, planes).expect("retrieve");
                    }
                }
            }
        }
    }
    start.elapsed().as_secs_f64() * 1000.0 / (reps * groups.len()) as f64
}

pub fn run(snapshots: usize, iters_each: usize) -> std::io::Result<()> {
    let setup = build(snapshots, iters_each);
    let scheme = RetrievalScheme::Independent;

    // The three storage plans of the table.
    let spt = solver::spt(&setup.graph).expect("spt");
    let mst = solver::mst(&setup.graph).expect("mst");
    let pas = {
        let mut g = setup.graph.clone();
        apply_alpha_budgets(&mut g, 1.6, scheme).expect("budgets");
        solver::pas_mt(&g, scheme).expect("pas")
    };
    let plans: Vec<(&str, StoragePlan)> = vec![
        ("Materialization (SPT)", spt),
        ("Min storage (MST)", mst),
        ("PAS (alpha=1.6)", pas),
    ];

    let mut t = Table::new(
        "Table V — snapshot recreation performance (ms/snapshot) and disk",
        &[
            "Storage plan",
            "Query",
            "Independent ms",
            "Parallel ms",
            "Disk bytes",
        ],
    );
    for (name, plan) in plans {
        let dir = std::env::temp_dir().join(format!(
            "mh-table5-{}-{}",
            std::process::id(),
            name.chars()
                .filter(char::is_ascii_alphanumeric)
                .collect::<String>()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SegmentStore::create(
            &dir,
            &setup.graph,
            &plan,
            &setup.matrices,
            DeltaOp::Sub,
            Level::Default,
        )
        .expect("store");
        let disk = store.bytes_on_disk();
        for (query, planes) in [("Full", 4usize), ("2 bytes", 2), ("1 byte", 1)] {
            let seq = measure(&store, &setup.groups, planes, false);
            let par = measure(&store, &setup.groups, planes, true);
            t.row(vec![
                name.to_string(),
                query.to_string(),
                format!("{seq:.2}"),
                format!("{par:.2}"),
                if query == "Full" {
                    disk.to_string()
                } else {
                    String::new()
                },
            ]);
        }
        // The reusable scheme (Table III ψr): shared chain prefixes are
        // recreated once per snapshot group.
        {
            let reps = 3;
            let start = mh_par::sync::now();
            for _ in 0..reps {
                for g in &setup.groups {
                    store.recreate_group_reusable(g).expect("retrieve");
                }
            }
            let ms = start.elapsed().as_secs_f64() * 1000.0 / (reps * setup.groups.len()) as f64;
            t.row(vec![
                name.to_string(),
                "Full (reusable)".to_string(),
                format!("{ms:.2}"),
                String::new(),
                String::new(),
            ]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    t.emit(&results_dir(), "table5")
}
