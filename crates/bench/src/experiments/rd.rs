//! RD — the synthetic repository collection derived from SD (§V-A): vary
//! delta closeness, group size, and model count, and check the archival
//! solvers scale and keep their ordering (the paper's "scale well on
//! synthetic models" claim).

use crate::report::{results_dir, Table};
use mh_pas::{apply_alpha_budgets, solver, EdgeKind, RetrievalScheme, StorageGraph, NULL_VERTEX};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic SD-like graph with parameterized structure.
pub fn rd_graph(
    versions: usize,
    snaps: usize,
    layers: usize,
    delta_frac: f64,
    seed: u64,
) -> StorageGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = StorageGraph::new();
    let mut latest_of_first: Vec<usize> = Vec::new();
    let mut firsts: Vec<Vec<usize>> = Vec::new();
    for v in 0..versions {
        let mut prev: Option<Vec<usize>> = None;
        for s in 0..snaps {
            let mut members = Vec::new();
            for l in 0..layers {
                let size = 500.0 * (1.0 + l as f64) * rng.gen_range(0.8..1.2);
                let vid = g.add_vertex(&format!("v{v}/s{s}/l{l}"));
                g.add_edge(NULL_VERTEX, vid, EdgeKind::Materialize, size, size * 0.5);
                if let Some(p) = &prev {
                    let f = delta_frac * rng.gen_range(0.6..1.4);
                    g.add_delta_pair(p[l], vid, size * f, size * 0.5 * f + 5.0);
                }
                members.push(vid);
            }
            if s == 0 {
                firsts.push(members.clone());
            }
            g.add_snapshot(&format!("v{v}/s{s}"), members.clone(), f64::INFINITY);
            prev = Some(members);
        }
        if v == 0 {
            latest_of_first = prev.expect("every version has at least one snapshot");
        }
    }
    // Fine-tuning edges: every version's first snapshot deltas against
    // version 0's latest (the shared initialization).
    for first in firsts.iter().skip(1) {
        for (l, &vid) in first.iter().enumerate() {
            let size = 500.0 * (1.0 + l as f64);
            let f = (delta_frac * 2.0).min(0.9) * rng.gen_range(0.6..1.4);
            g.add_delta_pair(latest_of_first[l], vid, size * f, size * 0.5 * f + 5.0);
        }
    }
    g
}

pub fn run() -> std::io::Result<()> {
    let mut t = Table::new(
        "RD — solver scaling across repository shapes (alpha = 1.6, independent)",
        &[
            "versions×snaps×layers",
            "delta frac",
            "matrices",
            "MST Cs",
            "LAST Cs/MST",
            "MT Cs/MST",
            "PT Cs/MST",
            "MT ms",
            "PT ms",
        ],
    );
    let scheme = RetrievalScheme::Independent;
    let shapes: Vec<(usize, usize, usize, f64)> = vec![
        (4, 4, 4, 0.10),
        (4, 4, 4, 0.40),
        (4, 4, 4, 0.80),
        (8, 6, 4, 0.15),
        (8, 6, 8, 0.15),
        (16, 8, 4, 0.15),
        (24, 10, 4, 0.15),
    ];
    for (versions, snaps, layers, frac) in shapes {
        let mut g = rd_graph(versions, snaps, layers, frac, 11);
        apply_alpha_budgets(&mut g, 1.6, scheme).expect("budgets");
        let mst = solver::mst(&g).expect("mst").storage_cost(&g);
        let last = solver::last(&g, 0.6).expect("last").storage_cost(&g);
        let t0 = mh_par::sync::now();
        let mt = solver::pas_mt(&g, scheme).expect("mt");
        let mt_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t0 = mh_par::sync::now();
        let pt = solver::pas_pt(&g, scheme).expect("pt");
        let pt_ms = t0.elapsed().as_secs_f64() * 1000.0;
        assert!(mt.satisfies_budgets(&g, scheme) && pt.satisfies_budgets(&g, scheme));
        t.row(vec![
            format!("{versions}x{snaps}x{layers}"),
            format!("{frac:.2}"),
            (g.num_vertices() - 1).to_string(),
            format!("{mst:.0}"),
            format!("{:.3}", last / mst),
            format!("{:.3}", mt.storage_cost(&g) / mst),
            format!("{:.3}", pt.storage_cost(&g) / mst),
            format!("{mt_ms:.0}"),
            format!("{pt_ms:.0}"),
        ]);
    }
    t.emit(&results_dir(), "rd")
}
