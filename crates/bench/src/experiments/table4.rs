//! Table IV — delta performance for lossless & lossy schemes (32 bits).
//!
//! On a fine-tuned model pair, eight configurations — {float, after
//! normalization} × {lossless f32, fixed point 32-bit} × {whole-payload,
//! bytewise} compression — each measured for Materialize and Delta-SUB.
//! Cells are compressed size as % of the uncompressed footprint.

use crate::report::{results_dir, Table};
use crate::workload::finetuned_pair;
use mh_compress::{compressed_len, Level};
use mh_dnn::Weights;
use mh_tensor::{encode, split_byte_planes, Scheme};

/// Compress a 4-byte-word payload either whole or per byte plane.
fn packed_size(words: &[u8], bytewise: bool) -> usize {
    if bytewise {
        split_byte_planes(words, 4)
            .iter()
            .map(|p| compressed_len(p, Level::Default))
            .sum()
    } else {
        compressed_len(words, Level::Default)
    }
}

/// Encode every layer of `w` under `scheme` (optionally normalized),
/// returning the concatenated 4-byte-word payloads per layer.
fn payloads(w: &Weights, scheme: Scheme, normalize: bool) -> Vec<Vec<u8>> {
    w.layers()
        .map(|(_, m)| encode(m, scheme, normalize).payload)
        .collect()
}

/// Wrapping 32-bit word subtraction of two payloads (positions beyond the
/// base read as zero) — the delta in the *encoded* domain.
fn word_delta(base: &[u8], target: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(target.len());
    for (i, tc) in target.chunks_exact(4).enumerate() {
        let t = u32::from_be_bytes(tc.try_into().expect("fixed-size chunk"));
        let b = base
            .get(i * 4..i * 4 + 4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("fixed-size chunk")))
            .unwrap_or(0);
        out.extend_from_slice(&t.wrapping_sub(b).to_be_bytes());
    }
    out
}

pub fn run(iters: usize) -> std::io::Result<()> {
    let (base, target) = finetuned_pair(iters);
    let mut t = Table::new(
        "Table IV — delta performance for lossless & lossy schemes (32 bits), % of uncompressed",
        &[
            "Representation",
            "Configuration",
            "Materialize %",
            "Delta-SUB %",
        ],
    );

    let orig: usize = target.layers().map(|(_, m)| m.len() * 4).sum();
    let configs: Vec<(&str, &str, Scheme, bool, bool)> = vec![
        ("Float", "Lossless", Scheme::F32, false, false),
        ("Float", "Lossless, bytewise", Scheme::F32, false, true),
        (
            "Float",
            "Fix point",
            Scheme::Fixed { bits: 32 },
            false,
            false,
        ),
        (
            "Float",
            "Fix point, bytewise",
            Scheme::Fixed { bits: 32 },
            false,
            true,
        ),
        ("Normalized", "Lossless", Scheme::F32, true, false),
        ("Normalized", "Lossless, bytewise", Scheme::F32, true, true),
        (
            "Normalized",
            "Fix point",
            Scheme::Fixed { bits: 32 },
            true,
            false,
        ),
        (
            "Normalized",
            "Fix point, bytewise",
            Scheme::Fixed { bits: 32 },
            true,
            true,
        ),
    ];
    for (rep, cfg, scheme, normalize, bytewise) in configs {
        let base_payloads = payloads(&base, scheme, normalize);
        let target_payloads = payloads(&target, scheme, normalize);
        let mut mat = 0usize;
        let mut sub = 0usize;
        for (b, t_) in base_payloads.iter().zip(&target_payloads) {
            mat += packed_size(t_, bytewise);
            sub += packed_size(&word_delta(b, t_), bytewise);
        }
        let pct = |x: usize| 100.0 * x as f64 / orig as f64;
        t.row(vec![
            rep.to_string(),
            cfg.to_string(),
            format!("{:.2}", pct(mat)),
            format!("{:.2}", pct(sub)),
        ]);
    }
    t.emit(&results_dir(), "table4")
}
