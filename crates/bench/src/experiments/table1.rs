//! Table I — popular CNN models: architecture strings and |W|.
//!
//! The architectures are reconstructed from their published layer shapes;
//! the parameter counts are recomputed from those shapes and printed next
//! to the figures the paper reports.

use crate::report::{results_dir, Table};
use mh_dnn::zoo;

pub fn run() -> std::io::Result<()> {
    let mut t = Table::new(
        "Table I — Popular CNN Models for Object Recognition",
        &["Name", "Architecture", "|W| computed", "|W| published"],
    );
    for row in zoo::table1() {
        t.row(vec![
            row.name.to_string(),
            row.architecture.clone(),
            row.computed_params
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:.2e}", row.published_w),
        ]);
    }
    t.emit(&results_dir(), "table1")
}
