//! PAS archival/retrieval engine benchmark — serial vs parallel.
//!
//! Times the four PAS hot paths that run on the `mh-par` worker pool
//! (archival build, segment retrieval, progressive evaluation, solver
//! repair) once at 1 thread and once at the *effective* parallel width —
//! [`PARALLEL_THREADS`] clamped to the machine's hardware threads, so an
//! oversubscribed pool never masquerades as a parallelism measurement —
//! taking the best of [`STAGE_RUNS`] runs per leg, verifies the two
//! stores are bit-identical, and emits a machine-readable
//! `results/BENCH_pas.json` for the CI perf-regression gate
//! (`bench_gate`). The JSON is deterministic in *shape*: fixed field
//! order, no timestamps, no host names — only the measured numbers vary
//! between runs.

use crate::report::{results_dir, Table};
use mh_compress::Level;
use mh_delta::DeltaOp;
use mh_pas::{
    apply_alpha_budgets, solver, CostModel, GraphBuilder, ModelBinding, ProgressiveEvaluator,
    RetrievalScheme, SegmentStore,
};
use std::path::{Path, PathBuf};

/// Thread count for the "parallel" leg. Fixed (not `available_parallelism`)
/// so the JSON is comparable across machines; the gate scales its speedup
/// expectations by the *reported* hardware width instead.
pub const PARALLEL_THREADS: usize = 4;

/// One timed stage of the report.
#[derive(Debug, Clone)]
pub struct StageResult {
    pub name: &'static str,
    pub bytes: u64,
    pub serial_ms: f64,
    pub parallel_ms: f64,
}

impl StageResult {
    pub fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            0.0
        }
    }

    fn mb_s(&self, ms: f64) -> f64 {
        if ms > 0.0 {
            (self.bytes as f64 / (1024.0 * 1024.0)) / (ms / 1000.0)
        } else {
            0.0
        }
    }
}

/// The full report behind `BENCH_pas.json`.
#[derive(Debug, Clone)]
pub struct PasBenchReport {
    pub mode: &'static str,
    pub hardware_threads: usize,
    pub parallel_threads: usize,
    /// The width the parallel legs actually ran at:
    /// `min(parallel_threads, hardware_threads)`. Requesting more workers
    /// than cores just interleaves them on the same silicon and times the
    /// scheduler, so the legs run at the effective width and report it.
    pub parallel_threads_effective: usize,
    pub bit_identical: bool,
    /// Overhead of span tracing on the serial archival build, in percent:
    /// median-of-5 traced vs median-of-5 untraced over a fixed multi-build
    /// workload, clamped at zero (timer jitter cannot mean tracing sped
    /// the build up). `None` when ambient tracing was already on at entry,
    /// leaving no clean untraced baseline.
    pub trace_overhead_pct: Option<f64>,
    /// Overhead of the always-on flight recorder (armed ring, tracing
    /// off) on the serial archival build, in percent: median-of-5 armed
    /// vs median-of-5 fully-disarmed, clamped at zero. `None` when
    /// ambient tracing was already on at entry (the recorder's marginal
    /// cost is then hidden inside the traced build). Budget: 3%.
    pub flightrec_overhead_pct: Option<f64>,
    /// Overhead of the `mh_par::sync` facade's std backend over raw
    /// `std::sync` primitives on an uncontended lock loop, in percent
    /// (min-of-3 each way). In release builds the facade must be a
    /// zero-cost veneer: the debug lock-order detector compiles out.
    pub sync_overhead_pct: f64,
    pub stages: Vec<StageResult>,
}

impl PasBenchReport {
    /// Deterministic JSON: fixed field order, fixed float precision, no
    /// timestamps. The gate's parser and the baseline file both assume
    /// this exact shape (`schema: bench-pas-v1`).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"bench-pas-v1\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n",
            self.hardware_threads
        ));
        out.push_str(&format!(
            "  \"parallel_threads\": {},\n",
            self.parallel_threads
        ));
        out.push_str(&format!(
            "  \"parallel_threads_effective\": {},\n",
            self.parallel_threads_effective
        ));
        out.push_str(&format!("  \"bit_identical\": {},\n", self.bit_identical));
        out.push_str(&format!(
            "  \"trace_overhead_pct\": {},\n",
            match self.trace_overhead_pct {
                Some(pct) => format!("{pct:.3}"),
                None => "null".to_string(),
            }
        ));
        out.push_str(&format!(
            "  \"flightrec_overhead_pct\": {},\n",
            match self.flightrec_overhead_pct {
                Some(pct) => format!("{pct:.3}"),
                None => "null".to_string(),
            }
        ));
        out.push_str(&format!(
            "  \"sync_overhead_pct\": {:.3},\n",
            self.sync_overhead_pct
        ));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
            out.push_str(&format!("      \"bytes\": {},\n", s.bytes));
            out.push_str(&format!("      \"serial_ms\": {:.3},\n", s.serial_ms));
            out.push_str(&format!("      \"parallel_ms\": {:.3},\n", s.parallel_ms));
            out.push_str(&format!("      \"speedup\": {:.3},\n", s.speedup()));
            out.push_str(&format!(
                "      \"serial_mb_s\": {:.3},\n",
                s.mb_s(s.serial_ms)
            ));
            out.push_str(&format!(
                "      \"parallel_mb_s\": {:.3}\n",
                s.mb_s(s.parallel_ms)
            ));
            out.push_str(if i + 1 == self.stages.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = mh_par::sync::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1000.0)
}

/// How many times each stage leg runs; the reported time is the fastest.
/// The workloads are deterministic, so the best run is the least
/// scheduler-contaminated one — a single-shot measurement on a busy box
/// can smear >10% noise onto a leg and trip the gate's overhead floor on
/// phantom regressions.
const STAGE_RUNS: usize = 3;

/// Runs `f` [`STAGE_RUNS`] times, returning the last value and the
/// minimum elapsed milliseconds.
fn min_of<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..STAGE_RUNS {
        let (r, ms) = time_ms(&mut f);
        best = best.min(ms);
        out = Some(r);
    }
    (out.expect("STAGE_RUNS >= 1"), best)
}

/// Byte-compare two store directories (same file set, same contents).
fn dirs_bit_identical(a: &Path, b: &Path) -> bool {
    let list = |d: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .map(|it| {
                it.filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    };
    let (fa, fb) = (list(a), list(b));
    if fa != fb {
        return false;
    }
    fa.iter().all(|name| {
        let ra = std::fs::read(a.join(name)).unwrap_or_default();
        let rb = std::fs::read(b.join(name)).unwrap_or_default();
        ra == rb
    })
}

fn temp_store_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-bench-pas-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

pub fn run(quick: bool) -> std::io::Result<()> {
    let iters = if quick { 6 } else { 24 };
    let models = crate::workload::three_models(4, iters);

    // One storage graph over every snapshot of every model, version chains
    // linked, α budgets applied so the repair loop has real work to do.
    let mut builder = GraphBuilder::new(CostModel::default());
    let mut binding_lv = None;
    for m in &models {
        let mut indices = Vec::new();
        for (i, w) in &m.result.snapshots {
            let lv = builder.add_snapshot(m.name, *i, w);
            if binding_lv.is_none() {
                binding_lv = Some((m.network.clone(), lv));
            }
            indices.push(*i);
        }
        builder.link_version_chain(m.name, &indices);
    }
    let (mut graph, matrices) = builder.finish();
    let scheme = RetrievalScheme::Independent;
    apply_alpha_budgets(&mut graph, 2.0, scheme).expect("alpha budgets");
    let total_bytes: u64 = matrices
        .values()
        .map(|m| (m.rows() * m.cols() * 4) as u64)
        .sum();

    let hardware_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Clamp the pool to the cores that exist: running 4 workers on 1 core
    // times the scheduler, not the parallelism, and is exactly how the
    // original parallel-slower-than-serial regression read as a "speedup"
    // problem instead of an oversubscription problem.
    let parallel_threads_effective = PARALLEL_THREADS.min(hardware_threads);
    if parallel_threads_effective < PARALLEL_THREADS {
        println!(
            "warning: requested {PARALLEL_THREADS} pool threads but only \
             {hardware_threads} hardware threads are available; parallel legs \
             run at {parallel_threads_effective} to avoid oversubscription"
        );
    }
    let serial = || mh_par::set_threads(Some(1));
    let parallel = || mh_par::set_threads(Some(parallel_threads_effective));
    let mut stages = Vec::new();

    // Stage 1/4 — solver repair (runs first: the plan feeds the store).
    serial();
    let (plan_s, mt_serial) = min_of(|| {
        let mt = solver::pas_mt(&graph, scheme).expect("pas-mt");
        let _ = solver::pas_pt(&graph, scheme).expect("pas-pt");
        mt
    });
    parallel();
    let (plan_p, mt_parallel) = min_of(|| {
        let mt = solver::pas_mt(&graph, scheme).expect("pas-mt");
        let _ = solver::pas_pt(&graph, scheme).expect("pas-pt");
        mt
    });
    assert_eq!(
        plan_s.storage_cost(&graph),
        plan_p.storage_cost(&graph),
        "solver must be thread-count invariant"
    );
    stages.push(StageResult {
        name: "solver_repair",
        bytes: total_bytes,
        serial_ms: mt_serial,
        parallel_ms: mt_parallel,
    });

    // Stage 2/4 — archival build (delta encode + per-plane compression).
    let (dir_s, dir_p) = (temp_store_dir("serial"), temp_store_dir("parallel"));
    serial();
    let (store_s, build_serial) = min_of(|| {
        let _ = std::fs::remove_dir_all(&dir_s);
        SegmentStore::create(
            &dir_s,
            &graph,
            &plan_s,
            &matrices,
            DeltaOp::Sub,
            Level::Fast,
        )
        .expect("serial store")
    });
    parallel();
    let (store_p, build_parallel) = min_of(|| {
        let _ = std::fs::remove_dir_all(&dir_p);
        SegmentStore::create(
            &dir_p,
            &graph,
            &plan_s,
            &matrices,
            DeltaOp::Sub,
            Level::Fast,
        )
        .expect("parallel store")
    });
    let bit_identical = dirs_bit_identical(&dir_s, &dir_p);
    stages.push(StageResult {
        name: "archival_build",
        bytes: total_bytes,
        serial_ms: build_serial,
        parallel_ms: build_parallel,
    });

    // Stage 3/4 — segment retrieval (plane decompression + delta chains).
    let verts: Vec<_> = store_s.vertices().collect();
    serial();
    let (got_s, retr_serial) = min_of(|| store_s.recreate_group(&verts).expect("serial group"));
    parallel();
    let (got_p, retr_parallel) = min_of(|| {
        store_p
            .recreate_group_parallel(&verts)
            .expect("parallel group")
    });
    assert_eq!(got_s, got_p, "retrieval must be thread-count invariant");
    stages.push(StageResult {
        name: "segment_retrieval",
        bytes: total_bytes,
        serial_ms: retr_serial,
        parallel_ms: retr_parallel,
    });

    // Stage 4/4 — progressive query evaluation on byte-plane prefixes.
    let (net, lv) = binding_lv.expect("at least one snapshot");
    let binding = ModelBinding::new(net, lv);
    let queries = &models[0].data.test;
    serial();
    let (acc_s, prog_serial) = min_of(|| {
        let ev = ProgressiveEvaluator::new(&store_s, &binding);
        ev.eval_batch(queries, 1).expect("serial batch").accuracy()
    });
    parallel();
    let (acc_p, prog_parallel) = min_of(|| {
        let ev = ProgressiveEvaluator::new(&store_p, &binding);
        ev.eval_batch(queries, 1)
            .expect("parallel batch")
            .accuracy()
    });
    assert_eq!(
        acc_s, acc_p,
        "progressive eval must be thread-count invariant"
    );
    stages.push(StageResult {
        name: "progressive_eval",
        bytes: total_bytes,
        serial_ms: prog_serial,
        parallel_ms: prog_parallel,
    });

    // Stage 5 — tracing overhead guard: span instrumentation, when turned
    // on, must cost no more than 5% of the untraced serial archival build
    // (plus a 10ms floor so sub-second builds don't gate on scheduler
    // noise). Each sample times a fixed 3-build workload so a single
    // build's jitter can't dominate, the estimator is the median of 5
    // samples (robust to one slow outlier in either leg, unlike min which
    // reports negative overhead whenever the untraced leg catches one
    // lucky run), and the percentage clamps at zero: tracing cannot speed
    // a build up, so a negative reading is timer noise, not data.
    const OVERHEAD_SAMPLES: usize = 5;
    const OVERHEAD_BUILDS_PER_SAMPLE: usize = 3;
    let median_build_ms = |dir: &std::path::Path| -> f64 {
        let mut samples = [0.0f64; OVERHEAD_SAMPLES];
        for s in &mut samples {
            let (_, ms) = time_ms(|| {
                for _ in 0..OVERHEAD_BUILDS_PER_SAMPLE {
                    let _ = std::fs::remove_dir_all(dir);
                    SegmentStore::create(
                        dir,
                        &graph,
                        &plan_s,
                        &matrices,
                        DeltaOp::Sub,
                        Level::Fast,
                    )
                    .expect("overhead-leg store");
                }
            });
            *s = ms;
        }
        samples.sort_by(f64::total_cmp);
        samples[OVERHEAD_SAMPLES / 2]
    };
    let trace_overhead_pct = if mh_obs::enabled() {
        // Ambient tracing already on (e.g. under `modelhub prof` or
        // `--trace`): there is no untraced baseline to compare against.
        None
    } else {
        serial();
        let dir_t = temp_store_dir("traceleg");
        let untraced = median_build_ms(&dir_t);
        mh_obs::enable_capture();
        let traced = median_build_ms(&dir_t);
        let spans = mh_obs::drain_capture().len();
        mh_obs::disable();
        let _ = std::fs::remove_dir_all(&dir_t);
        assert!(spans > 0, "traced build must have recorded spans");
        let raw_pct = if untraced > 0.0 {
            (traced - untraced) / untraced * 100.0
        } else {
            0.0
        };
        assert!(
            traced <= untraced * 1.05 + 10.0,
            "tracing overhead {raw_pct:.1}% exceeds the 5% budget: \
             traced {traced:.1}ms vs untraced {untraced:.1}ms"
        );
        Some(raw_pct.max(0.0))
    };

    // Stage 5b — flight-recorder overhead guard: the always-on ring that
    // keeps the most recent spans even with tracing off must cost no more
    // than 3% of the fully-disarmed serial build. Same discipline as the
    // trace leg (median of 5 samples of a fixed 3-build workload, zero
    // clamp); the CLI arms the recorder on every invocation, so the leg
    // saves and restores the ambient armed state around its baselines.
    let flightrec_overhead_pct = if mh_obs::enabled() {
        None
    } else {
        let was_armed = mh_obs::flightrec::armed();
        let dir_f = temp_store_dir("flightrecleg");
        mh_obs::flightrec::disable();
        let disarmed = median_build_ms(&dir_f);
        mh_obs::flightrec::enable();
        let armed = median_build_ms(&dir_f);
        assert!(
            mh_obs::flightrec::len() > 0,
            "armed build must have recorded spans"
        );
        if !was_armed {
            mh_obs::flightrec::disable();
        }
        let _ = std::fs::remove_dir_all(&dir_f);
        let raw_pct = if disarmed > 0.0 {
            (armed - disarmed) / disarmed * 100.0
        } else {
            0.0
        };
        assert!(
            armed <= disarmed * 1.03 + 10.0,
            "flight-recorder overhead {raw_pct:.1}% exceeds the 3% budget: \
             armed {armed:.1}ms vs disarmed {disarmed:.1}ms"
        );
        Some(raw_pct.max(0.0))
    };

    // Stage 6 — sync-facade overhead guard: the facade's std backend is a
    // thin wrapper whose debug-only lock-order instrumentation compiles
    // out of release builds, so an uncontended lock loop through the
    // facade must cost what the raw primitive costs. Asserted only in
    // release: debug builds keep the always-on M003 detector and are
    // legitimately slower.
    let sync_overhead_pct = {
        const ROUNDS: u64 = 1_000_000;
        let min_ms = |f: &dyn Fn() -> u64| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let (v, ms) = time_ms(f);
                assert_eq!(v, ROUNDS, "lock loop must count every round");
                best = best.min(ms);
            }
            best
        };
        let facade = min_ms(&|| {
            let m = mh_par::sync::Mutex::new(0u64);
            for _ in 0..ROUNDS {
                *m.lock() += 1;
            }
            m.into_inner()
        });
        let raw = min_ms(&|| {
            // mh-audit: allow(A102, measuring the facade against the raw primitive)
            let m = std::sync::Mutex::new(0u64);
            for _ in 0..ROUNDS {
                *m.lock().expect("unpoisoned") += 1;
            }
            m.into_inner().expect("unpoisoned")
        });
        let pct = if raw > 0.0 {
            (facade - raw) / raw * 100.0
        } else {
            0.0
        };
        if cfg!(not(debug_assertions)) {
            assert!(
                facade <= raw * 1.25 + 10.0,
                "sync facade overhead {pct:.1}% exceeds the release budget: \
                 facade {facade:.1}ms vs raw {raw:.1}ms over {ROUNDS} locks"
            );
        }
        pct
    };

    mh_par::set_threads(None);
    let _ = std::fs::remove_dir_all(&dir_s);
    let _ = std::fs::remove_dir_all(&dir_p);

    let report = PasBenchReport {
        mode: if quick { "quick" } else { "full" },
        hardware_threads,
        parallel_threads: PARALLEL_THREADS,
        parallel_threads_effective,
        bit_identical,
        trace_overhead_pct,
        flightrec_overhead_pct,
        sync_overhead_pct,
        stages,
    };

    let mut t = Table::new(
        &format!(
            "PAS engine — serial vs {}-thread ({} matrices, {}, bit_identical={})",
            parallel_threads_effective,
            matrices.len(),
            crate::report::human_bytes(total_bytes),
            report.bit_identical,
        ),
        &["stage", "serial ms", "parallel ms", "speedup", "MB/s (par)"],
    );
    for s in &report.stages {
        t.row(vec![
            s.name.to_string(),
            format!("{:.1}", s.serial_ms),
            format!("{:.1}", s.parallel_ms),
            format!("{:.2}x", s.speedup()),
            format!("{:.1}", s.mb_s(s.parallel_ms)),
        ]);
    }
    t.emit(&results_dir(), "bench_pas")?;
    match report.trace_overhead_pct {
        Some(pct) => println!("tracing overhead on serial build (median-of-5): {pct:.1}%"),
        None => println!("tracing overhead leg skipped: ambient tracing already enabled"),
    }
    match report.flightrec_overhead_pct {
        Some(pct) => println!("flight-recorder overhead on serial build (median-of-5): {pct:.1}%"),
        None => println!("flight-recorder overhead leg skipped: ambient tracing already enabled"),
    }
    println!(
        "sync facade overhead on uncontended locks (min-of-3): {:.1}%",
        report.sync_overhead_pct
    );

    let json_path = results_dir().join("BENCH_pas.json");
    std::fs::create_dir_all(results_dir())?;
    std::fs::write(&json_path, report.render_json())?;
    println!("machine-readable report: {}", json_path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_report() -> PasBenchReport {
        PasBenchReport {
            mode: "quick",
            hardware_threads: 4,
            parallel_threads: 4,
            parallel_threads_effective: 4,
            bit_identical: true,
            trace_overhead_pct: Some(1.25),
            flightrec_overhead_pct: Some(0.75),
            sync_overhead_pct: 0.5,
            stages: vec![
                StageResult {
                    name: "archival_build",
                    bytes: 1024 * 1024,
                    serial_ms: 100.0,
                    parallel_ms: 40.0,
                },
                StageResult {
                    name: "segment_retrieval",
                    bytes: 1024 * 1024,
                    serial_ms: 50.0,
                    parallel_ms: 30.0,
                },
            ],
        }
    }

    #[test]
    fn json_is_deterministic_and_timestamp_free() {
        let r = fixed_report();
        let a = r.render_json();
        let b = r.render_json();
        assert_eq!(a, b, "same report must render byte-identically");
        // Field order is part of the contract with the gate.
        let order = [
            "\"schema\"",
            "\"mode\"",
            "\"hardware_threads\"",
            "\"parallel_threads\"",
            "\"parallel_threads_effective\"",
            "\"bit_identical\"",
            "\"trace_overhead_pct\"",
            "\"flightrec_overhead_pct\"",
            "\"sync_overhead_pct\"",
            "\"stages\"",
            "\"name\"",
            "\"bytes\"",
            "\"serial_ms\"",
            "\"parallel_ms\"",
            "\"speedup\"",
            "\"serial_mb_s\"",
            "\"parallel_mb_s\"",
        ];
        let mut pos = 0;
        for key in order {
            let at = a[pos..].find(key).unwrap_or_else(|| {
                panic!("field {key} missing or out of order");
            });
            pos += at;
        }
        for banned in ["time\":", "date", "hostname", "epoch"] {
            assert!(!a.contains(banned), "gated JSON must not contain {banned}");
        }
    }

    #[test]
    fn skipped_trace_leg_renders_null() {
        let mut r = fixed_report();
        r.trace_overhead_pct = None;
        r.flightrec_overhead_pct = None;
        let json = r.render_json();
        assert!(json.contains("\"trace_overhead_pct\": null,"));
        assert!(json.contains("\"flightrec_overhead_pct\": null,"));
        let full = fixed_report().render_json();
        assert!(full.contains("\"trace_overhead_pct\": 1.250,"));
        assert!(full.contains("\"flightrec_overhead_pct\": 0.750,"));
    }

    #[test]
    fn speedup_math() {
        let s = StageResult {
            name: "x",
            bytes: 2 * 1024 * 1024,
            serial_ms: 200.0,
            parallel_ms: 100.0,
        };
        assert!((s.speedup() - 2.0).abs() < 1e-9);
        assert!((s.mb_s(100.0) - 20.0).abs() < 1e-9);
    }
}
