//! hubd reactor load benchmark — `repro hub`.
//!
//! Drives a real `HubServer` (the nonblocking reactor, not a mock) over
//! loopback and measures the four properties the reactor redesign exists
//! to deliver:
//!
//! 1. **Concurrency headroom** — hold `HELD_CONNECTIONS` open connections
//!    (each parked on a partial request head) against a worker pool of
//!    only `POOL_WIDTH` threads, then probe latency *through* that load.
//!    Under the old one-thread-per-connection design the probes would
//!    starve; on the reactor they must be as fast as the idle baseline.
//! 2. **Connection throughput** — sequential connect→request→read cycles
//!    per second against the `/repos` endpoint.
//! 3. **Cache effectiveness** — two identical object-stream pulls; the
//!    second wave must be served from the byte-budgeted LRU.
//! 4. **Backpressure** — a server capped at `SATURATION_CAP` connections
//!    must answer the over-cap connection `503` + `Retry-After`, not
//!    queue it.
//!
//! The machine-readable `results/BENCH_hub.json` (`schema: bench-hub-v1`)
//! feeds the CI `bench_gate` against `tools/bench_baseline_hub.json`. The
//! JSON is deterministic in *shape*: fixed field order, no timestamps, no
//! host names — only the measured numbers vary between runs.

use crate::report::{results_dir, Table};
use mh_dnn::zoo;
use mh_hub::server::Config;
use mh_hub::{HubServer, RemoteHub};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// Worker-pool width for the load leg. Deliberately small: the benchmark
/// exists to prove connection concurrency is no longer bounded by it.
pub const POOL_WIDTH: usize = 2;

/// Connections held open while latency is probed — 8x the pool width,
/// comfortably above the >= 4x the acceptance gate requires.
pub const HELD_CONNECTIONS: usize = 16;

/// Connection cap for the saturation leg.
pub const SATURATION_CAP: usize = 8;

/// Damping constant for the loaded/idle p99 comparison: sub-millisecond
/// loopback latencies would otherwise turn scheduler noise into huge
/// ratios.
const P99_DAMP_MS: f64 = 1.0;

/// One latency distribution, in milliseconds.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    pub p50_ms: f64,
    pub p99_ms: f64,
}

/// Percentiles over a sample set (nearest-rank).
pub fn latency_stats(samples_ms: &[f64]) -> LatencyStats {
    let mut sorted = samples_ms.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pick = |q: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((sorted.len() as f64) * q).ceil() as usize;
        let idx = rank.saturating_sub(1).min(sorted.len() - 1);
        sorted[idx]
    };
    LatencyStats {
        p50_ms: pick(0.50),
        p99_ms: pick(0.99),
    }
}

/// The full report behind `BENCH_hub.json`.
#[derive(Debug, Clone)]
pub struct HubBenchReport {
    pub mode: &'static str,
    pub hardware_threads: usize,
    /// Live poller backend: `"epoll"` or `"poll-fallback"`.
    pub backend: &'static str,
    pub pool_width: usize,
    pub held_connections: usize,
    /// High-water mark of simultaneously open server connections.
    pub connections_peak: u64,
    pub conns_per_sec: f64,
    pub idle: LatencyStats,
    pub loaded: LatencyStats,
    pub cache_hit_rate: f64,
    pub max_conns: usize,
    /// Held connections at the point the next connect was answered 503.
    pub saturation_conns: usize,
    pub saturated_503: bool,
}

impl HubBenchReport {
    /// Held connections per pool thread — the acceptance gate requires
    /// this to stay >= 4 (the old design capped it at ~1).
    pub fn concurrency_ratio(&self) -> f64 {
        if self.pool_width > 0 {
            self.held_connections as f64 / self.pool_width as f64
        } else {
            0.0
        }
    }

    /// Damped loaded/idle p99 ratio; ~1.0 means holding the connections
    /// cost nothing, which is the whole point of the reactor.
    pub fn p99_ratio(&self) -> f64 {
        (self.loaded.p99_ms + P99_DAMP_MS) / (self.idle.p99_ms + P99_DAMP_MS)
    }

    /// Deterministic JSON: fixed field order, fixed float precision, no
    /// timestamps. The gate's parser and the baseline file both assume
    /// this exact shape (`schema: bench-hub-v1`).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"bench-hub-v1\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n",
            self.hardware_threads
        ));
        out.push_str(&format!("  \"backend\": \"{}\",\n", self.backend));
        out.push_str(&format!("  \"pool_width\": {},\n", self.pool_width));
        out.push_str(&format!(
            "  \"held_connections\": {},\n",
            self.held_connections
        ));
        out.push_str(&format!(
            "  \"concurrency_ratio\": {:.3},\n",
            self.concurrency_ratio()
        ));
        out.push_str(&format!(
            "  \"connections_peak\": {},\n",
            self.connections_peak
        ));
        out.push_str(&format!(
            "  \"conns_per_sec\": {:.3},\n",
            self.conns_per_sec
        ));
        out.push_str(&format!("  \"idle_p50_ms\": {:.3},\n", self.idle.p50_ms));
        out.push_str(&format!("  \"idle_p99_ms\": {:.3},\n", self.idle.p99_ms));
        out.push_str(&format!(
            "  \"loaded_p50_ms\": {:.3},\n",
            self.loaded.p50_ms
        ));
        out.push_str(&format!(
            "  \"loaded_p99_ms\": {:.3},\n",
            self.loaded.p99_ms
        ));
        out.push_str(&format!("  \"p99_ratio\": {:.3},\n", self.p99_ratio()));
        out.push_str(&format!(
            "  \"cache_hit_rate\": {:.3},\n",
            self.cache_hit_rate
        ));
        out.push_str(&format!("  \"max_conns\": {},\n", self.max_conns));
        out.push_str(&format!(
            "  \"saturation_conns\": {},\n",
            self.saturation_conns
        ));
        out.push_str(&format!("  \"saturated_503\": {}\n", self.saturated_503));
        out.push_str("}\n");
        out
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mh-bench-hub-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("bench temp dir");
    d
}

/// A repository with a payload large enough that the cache leg moves real
/// bytes, small enough to publish in well under a second.
fn sample_repo(dir: &std::path::Path, name: &str, blob_bytes: usize) -> mh_dlv::Repository {
    let repo = mh_dlv::Repository::init(dir).expect("init repo");
    let net = zoo::lenet_s(3);
    let weights = mh_dnn::Weights::init(&net, 7).expect("init weights");
    let mut req = mh_dlv::CommitRequest::new(name, net);
    req.snapshots = vec![(0, weights)];
    req.files
        .push(("blob.bin".into(), vec![0xA5u8; blob_bytes]));
    req.comment = "hub load benchmark payload".into();
    repo.commit(&req).expect("commit");
    repo
}

/// One connect → `GET /repos` → drain cycle; returns latency in ms.
fn probe(addr: SocketAddr) -> f64 {
    let start = mh_par::sync::now();
    let mut s = TcpStream::connect(addr).expect("probe connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    s.write_all(b"GET /repos HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .expect("probe write");
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).expect("probe read");
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 200 "), "probe failed: {text}");
    start.elapsed().as_secs_f64() * 1000.0
}

fn objects_request(name: &str) -> Vec<u8> {
    format!(
        "POST /objects/{name} HTTP/1.1\r\nHost: bench\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .into_bytes()
}

/// Fetch a full object stream; returns the body size drained.
fn fetch_objects(addr: SocketAddr, name: &str) -> usize {
    let mut s = TcpStream::connect(addr).expect("fetch connect");
    s.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    s.write_all(&objects_request(name)).expect("fetch write");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("fetch read");
    let text = String::from_utf8_lossy(&out[..out.len().min(64)]);
    assert!(text.starts_with("HTTP/1.1 200 "), "fetch failed: {text}");
    out.len()
}

pub fn run(quick: bool) -> std::io::Result<()> {
    let probes = if quick { 100 } else { 300 };
    let wave = if quick { 100 } else { 400 };
    let blob_bytes = if quick { 256 << 10 } else { 4 << 20 };
    let repo_name = "bench-hub";

    let backend = mh_hub::reactor::Poller::new()
        .map(|p| p.backend())
        .unwrap_or("unavailable");

    // --- Main server: small pool, generous connection cap. -------------
    let repo = sample_repo(&temp_dir("repo"), repo_name, blob_bytes);
    let root = temp_dir("hubroot");
    let server = HubServer::start_with(
        &root,
        "127.0.0.1:0",
        Config {
            jobs: Some(POOL_WIDTH),
            max_conns: 1024,
            ..Config::default()
        },
    )
    .map_err(std::io::Error::other)?;
    let addr = server.local_addr();
    let client = RemoteHub::open(&server.url())
        .map_err(std::io::Error::other)?
        .with_timeout(Duration::from_secs(10))
        .with_retries(2, Duration::from_millis(20));
    client
        .publish_repo(&repo, repo_name)
        .map_err(|e| std::io::Error::other(format!("publishing bench repo: {e}")))?;

    // Warm up sockets and code paths before timing anything.
    for _ in 0..5 {
        let _ = probe(addr);
    }

    // --- Leg 1: idle latency baseline. ----------------------------------
    let idle_samples: Vec<f64> = (0..probes).map(|_| probe(addr)).collect();
    let idle = latency_stats(&idle_samples);

    // --- Leg 2: latency under held-connection load. ----------------------
    // Park HELD_CONNECTIONS connections on partial request heads. The
    // old design would starve its 2-thread pool here; the reactor keeps
    // serving probes at idle speed.
    let mut held: Vec<TcpStream> = Vec::new();
    for _ in 0..HELD_CONNECTIONS {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(30)))?;
        s.write_all(b"GET /repos HTT")?;
        held.push(s);
    }
    // Wait until the server has actually registered all holders.
    let mut holders_seen = false;
    for _ in 0..500 {
        if server.stats().conn_open().get() >= HELD_CONNECTIONS as i64 {
            holders_seen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        holders_seen,
        "all {HELD_CONNECTIONS} held connections must be open concurrently \
         (open = {})",
        server.stats().conn_open().get()
    );
    let loaded_samples: Vec<f64> = (0..probes).map(|_| probe(addr)).collect();
    let loaded = latency_stats(&loaded_samples);

    // Complete every held request: the reactor must serve all of them
    // through the width-2 pool once their heads arrive.
    for s in &mut held {
        s.write_all(b"P/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")?;
    }
    for mut s in held {
        let mut resp = Vec::new();
        let _ = s.read_to_end(&mut resp);
        let text = String::from_utf8_lossy(&resp);
        assert!(
            text.starts_with("HTTP/1.1 200 "),
            "held conn failed: {text}"
        );
    }
    let connections_peak = server.stats().conn_peak().get().max(0) as u64;

    // --- Leg 3: sequential connection throughput. ------------------------
    let t0 = mh_par::sync::now();
    for _ in 0..wave {
        let _ = probe(addr);
    }
    let wave_secs = t0.elapsed().as_secs_f64();
    let conns_per_sec = if wave_secs > 0.0 {
        wave as f64 / wave_secs
    } else {
        0.0
    };

    // --- Leg 4: cache hit rate over two identical pull waves. ------------
    let first = fetch_objects(addr, repo_name);
    let second = fetch_objects(addr, repo_name);
    assert_eq!(
        first, second,
        "both waves must deliver the identical stream"
    );
    let cache = server.stats().cache_metrics();
    let (hits, misses) = (cache.hits.get() as f64, cache.misses.get() as f64);
    let cache_hit_rate = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    server.stop();

    // --- Leg 5: saturation point on a capped server. ----------------------
    let sat_root = temp_dir("satroot");
    let sat = HubServer::start_with(
        &sat_root,
        "127.0.0.1:0",
        Config {
            jobs: Some(1),
            max_conns: SATURATION_CAP,
            idle_timeout: Duration::from_secs(10),
            state_deadline: Duration::from_secs(10),
            ..Config::default()
        },
    )
    .map_err(std::io::Error::other)?;
    let mut sat_held: Vec<TcpStream> = Vec::new();
    for _ in 0..SATURATION_CAP {
        let mut s = TcpStream::connect(sat.local_addr())?;
        s.set_read_timeout(Some(Duration::from_secs(10)))?;
        s.write_all(b"GET /repos HTT")?;
        sat_held.push(s);
    }
    let mut cap_seen = false;
    for _ in 0..500 {
        if sat.stats().conn_open().get() >= SATURATION_CAP as i64 {
            cap_seen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cap_seen, "saturation holders must all register as open");
    let mut over = TcpStream::connect(sat.local_addr())?;
    over.set_read_timeout(Some(Duration::from_secs(10)))?;
    let _ = over.write_all(b"GET /repos HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    let mut resp = Vec::new();
    let _ = over.read_to_end(&mut resp);
    let text = String::from_utf8_lossy(&resp);
    let saturated_503 = text.starts_with("HTTP/1.1 503 ") && text.contains("Retry-After: 1");
    drop(sat_held);
    sat.stop();

    let report = HubBenchReport {
        mode: if quick { "quick" } else { "full" },
        hardware_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        backend,
        pool_width: POOL_WIDTH,
        held_connections: HELD_CONNECTIONS,
        connections_peak,
        conns_per_sec,
        idle,
        loaded,
        cache_hit_rate,
        max_conns: SATURATION_CAP,
        saturation_conns: SATURATION_CAP,
        saturated_503,
    };

    let mut t = Table::new("hubd reactor load (repro hub)", &["metric", "value"]);
    t.row(vec!["backend".into(), report.backend.to_string()]);
    t.row(vec!["pool width".into(), report.pool_width.to_string()]);
    t.row(vec![
        "held connections".into(),
        report.held_connections.to_string(),
    ]);
    t.row(vec![
        "concurrency ratio".into(),
        format!("{:.1}x", report.concurrency_ratio()),
    ]);
    t.row(vec![
        "connections peak".into(),
        report.connections_peak.to_string(),
    ]);
    t.row(vec![
        "connections/s".into(),
        format!("{:.0}", report.conns_per_sec),
    ]);
    t.row(vec![
        "idle p50/p99 ms".into(),
        format!("{:.2} / {:.2}", report.idle.p50_ms, report.idle.p99_ms),
    ]);
    t.row(vec![
        "loaded p50/p99 ms".into(),
        format!("{:.2} / {:.2}", report.loaded.p50_ms, report.loaded.p99_ms),
    ]);
    t.row(vec![
        "p99 ratio (damped)".into(),
        format!("{:.2}", report.p99_ratio()),
    ]);
    t.row(vec![
        "cache hit rate".into(),
        format!("{:.0}%", report.cache_hit_rate * 100.0),
    ]);
    t.row(vec![
        "saturation point".into(),
        format!(
            "{} conns -> {}",
            report.saturation_conns,
            if report.saturated_503 {
                "503 + Retry-After"
            } else {
                "NO BACKPRESSURE"
            }
        ),
    ]);
    let dir = results_dir();
    t.emit(&dir, "bench_hub")?;
    std::fs::write(dir.join("BENCH_hub.json"), report.render_json())?;
    println!("wrote {}", dir.join("BENCH_hub.json").display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> HubBenchReport {
        HubBenchReport {
            mode: "quick",
            hardware_threads: 4,
            backend: "epoll",
            pool_width: 2,
            held_connections: 16,
            connections_peak: 17,
            conns_per_sec: 1234.5678,
            idle: LatencyStats {
                p50_ms: 0.2,
                p99_ms: 0.9,
            },
            loaded: LatencyStats {
                p50_ms: 0.25,
                p99_ms: 1.1,
            },
            cache_hit_rate: 0.5,
            max_conns: 8,
            saturation_conns: 8,
            saturated_503: true,
        }
    }

    #[test]
    fn json_has_fixed_field_order_and_schema() {
        let json = sample_report().render_json();
        let order = [
            "\"schema\"",
            "\"mode\"",
            "\"hardware_threads\"",
            "\"backend\"",
            "\"pool_width\"",
            "\"held_connections\"",
            "\"concurrency_ratio\"",
            "\"connections_peak\"",
            "\"conns_per_sec\"",
            "\"idle_p50_ms\"",
            "\"idle_p99_ms\"",
            "\"loaded_p50_ms\"",
            "\"loaded_p99_ms\"",
            "\"p99_ratio\"",
            "\"cache_hit_rate\"",
            "\"max_conns\"",
            "\"saturation_conns\"",
            "\"saturated_503\"",
        ];
        let mut last = 0;
        for key in order {
            let at = json.find(key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(at > last || last == 0, "{key} out of order");
            last = at;
        }
        assert!(json.contains("\"schema\": \"bench-hub-v1\""));
        assert!(json.contains("\"concurrency_ratio\": 8.000"));
    }

    #[test]
    fn json_is_deterministic_and_timestamp_free() {
        let r = sample_report();
        assert_eq!(r.render_json(), r.render_json());
        let json = r.render_json().to_lowercase();
        for banned in ["time\":", "date", "hostname", "epoch"] {
            assert!(!json.contains(banned), "found banned token {banned}");
        }
    }

    #[test]
    fn p99_ratio_is_damped_against_microsecond_noise() {
        let mut r = sample_report();
        r.idle.p99_ms = 0.05;
        r.loaded.p99_ms = 0.15;
        // Raw ratio would be 3.0; damping keeps sub-ms jitter harmless.
        assert!(r.p99_ratio() < 1.2, "ratio = {}", r.p99_ratio());
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = latency_stats(&samples);
        assert_eq!(stats.p50_ms, 50.0);
        assert_eq!(stats.p99_ms, 99.0);
        let empty = latency_stats(&[]);
        assert_eq!(empty.p50_ms, 0.0);
    }
}
