//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. Group (co-usage) budgets vs naively splitting the budget across a
//!    snapshot's matrices (§IV-C argues splitting wastes storage).
//! 2. Delta direction (forward vs backward footprints).
//! 3. Compressor effort level (speed/ratio trade-off of `mh-compress`).

use crate::experiments::fig6c::build_sd_graph;
use crate::report::{results_dir, Table};
use crate::workload::snapshot_pair;
use mh_compress::Level;
use mh_delta::{Delta, DeltaOp};
use mh_pas::{apply_alpha_budgets, solver, RetrievalScheme, StorageGraph};

/// Replace each co-usage group with singleton groups carrying an equal
/// share of the budget (the strawman the paper's formulation generalizes).
fn split_budgets(graph: &StorageGraph) -> StorageGraph {
    let mut g = graph.clone();
    let old = std::mem::take(&mut g.snapshots);
    for s in old {
        let share = s.budget / s.members.len() as f64;
        for (i, &m) in s.members.iter().enumerate() {
            g.snapshots.push(mh_pas::SnapshotGroup {
                name: format!("{}/{}", s.name, i),
                members: vec![m],
                budget: share,
            });
        }
    }
    g
}

fn group_vs_split(t: &mut Table, versions: usize, snapshots: usize) {
    let graph = build_sd_graph(versions, snapshots);
    let scheme = RetrievalScheme::Independent;
    for alpha in [1.2, 1.6, 2.5] {
        let mut grouped = graph.clone();
        apply_alpha_budgets(&mut grouped, alpha, scheme).expect("budgets");
        let split = split_budgets(&grouped);
        let plan_g = solver::pas_mt(&grouped, scheme).expect("grouped");
        let plan_s = solver::pas_mt(&split, scheme).expect("split");
        t.row(vec![
            "group-vs-split".into(),
            format!("alpha={alpha}"),
            format!("grouped Cs={:.0}", plan_g.storage_cost(&grouped)),
            format!(
                "split Cs={:.0} ({:+.1}%)",
                plan_s.storage_cost(&split),
                100.0 * (plan_s.storage_cost(&split) / plan_g.storage_cost(&grouped) - 1.0)
            ),
        ]);
    }
}

fn delta_direction(t: &mut Table, iters: usize) {
    let (a, b) = snapshot_pair(iters);
    for op in [DeltaOp::Sub, DeltaOp::Xor] {
        let mut fwd = 0usize;
        let mut bwd = 0usize;
        for (name, mb) in b.layers() {
            let ma = a.get(name).expect("shared layer");
            let f = Delta::compute(ma, mb, op);
            let r = Delta::compute(mb, ma, op);
            fwd += mh_compress::compressed_len(&f.word_bytes(), Level::Default);
            bwd += mh_compress::compressed_len(&r.word_bytes(), Level::Default);
        }
        t.row(vec![
            "delta-direction".into(),
            op.name().into(),
            format!("forward={fwd}"),
            format!(
                "backward={bwd} ({:+.1}%)",
                100.0 * (bwd as f64 / fwd as f64 - 1.0)
            ),
        ]);
    }
}

fn compressor_levels(t: &mut Table, iters: usize) {
    let (_, w) = snapshot_pair(iters);
    // Concatenate the top byte planes of all matrices: the archival store's
    // hottest payload.
    let mut plane0 = Vec::new();
    for (_, m) in w.layers() {
        plane0.extend_from_slice(mh_tensor::SegmentedMatrix::from_matrix(m).plane(0));
    }
    for (name, level) in [
        ("fast", Level::Fast),
        ("default", Level::Default),
        ("best", Level::Best),
    ] {
        let start = mh_par::sync::now();
        let packed = mh_compress::compress(&plane0, level);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        t.row(vec![
            "compressor-level".into(),
            name.into(),
            format!("ratio={:.2}x", plane0.len() as f64 / packed.len() as f64),
            format!("{ms:.1} ms"),
        ]);
    }
}

fn lossy_checkpoints(t: &mut Table, iters: usize) {
    use mh_dlv::{ArchiveConfig, CommitRequest, Repository};
    use mh_tensor::Scheme;
    let m = crate::workload::checkpointed_model(3, iters.max(3) / 3);
    for (name, scheme) in [
        ("lossless", None),
        ("fixed8", Some(Scheme::Fixed { bits: 8 })),
        ("quant-uniform8", Some(Scheme::QuantUniform { bits: 8 })),
    ] {
        let dir = std::env::temp_dir().join(format!("mh-abl-lossy-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let repo = Repository::init(&dir).expect("init");
        let mut req = CommitRequest::new("m", m.network.clone());
        req.snapshots = m.result.snapshots.clone();
        repo.commit(&req).expect("commit");
        let report = repo
            .archive(&ArchiveConfig {
                checkpoint_scheme: scheme,
                ..Default::default()
            })
            .expect("archive");
        // Latest snapshot always survives exactly.
        let latest = repo.get_weights("m", None).expect("latest");
        assert_eq!(
            &latest,
            &m.result
                .snapshots
                .last()
                .expect("training produced snapshots")
                .1
        );
        t.row(vec![
            "lossy-checkpoints".into(),
            name.into(),
            format!("disk={}", report.bytes_on_disk),
            format!("plan Cs={:.0}", report.storage_cost),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

pub fn run(iters: usize) -> std::io::Result<()> {
    let mut t = Table::new(
        "Ablations — co-usage budgets, delta direction, compressor levels, lossy checkpoints",
        &["Ablation", "Setting", "Primary", "Comparison"],
    );
    group_vs_split(&mut t, 3, 3);
    delta_direction(&mut t, iters);
    compressor_levels(&mut t, iters);
    lossy_checkpoints(&mut t, iters);
    t.emit(&results_dir(), "ablations")
}
