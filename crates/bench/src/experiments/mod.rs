//! One module per paper artifact. Each experiment prints its table and
//! writes `results/<id>.{txt,csv}`.

pub mod ablations;
pub mod fig6a;
pub mod fig6b;
pub mod fig6c;
pub mod fig6d;
pub mod hub;
pub mod pas;
pub mod rd;
pub mod table1;
pub mod table4;
pub mod table5;
