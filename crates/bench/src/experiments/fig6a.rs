//! Fig 6(a) — compression/accuracy trade-off of the float representation
//! schemes.
//!
//! For each scheme, every weight matrix of three trained models is encoded,
//! compressed (per byte plane where the scheme is word-shaped), and decoded
//! again; we report the average compression ratio (original f32 bytes /
//! compressed bytes) against the average test-accuracy drop.

use crate::report::{results_dir, Table};
use crate::workload::three_models;
use mh_compress::{compressed_len, Level};
use mh_dnn::{accuracy, Weights};
use mh_tensor::{decode, encode, split_byte_planes, word_width, Scheme};

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::F32,
        Scheme::F16,
        Scheme::Bf16,
        Scheme::Fixed { bits: 16 },
        Scheme::Fixed { bits: 8 },
        Scheme::QuantUniform { bits: 8 },
        Scheme::QuantUniform { bits: 4 },
        Scheme::QuantRandom { bits: 8, seed: 7 },
        Scheme::QuantRandom { bits: 4, seed: 7 },
    ]
}

/// Compressed footprint of one encoded matrix: per-plane when word-shaped,
/// whole payload otherwise; codebooks are charged to the footprint.
fn footprint(enc: &mh_tensor::EncodedMatrix, level: Level) -> usize {
    let payload = match word_width(enc.scheme) {
        Some(w) if enc.payload.len().is_multiple_of(w) => split_byte_planes(&enc.payload, w)
            .iter()
            .map(|p| compressed_len(p, level))
            .sum(),
        _ => compressed_len(&enc.payload, level),
    };
    payload + enc.codebook.as_ref().map_or(0, |cb| cb.to_bytes().len())
}

pub fn run(iters: usize) -> std::io::Result<()> {
    let models = three_models(6, iters);
    let mut t = Table::new(
        "Fig 6(a) — compression ratio vs accuracy drop per float scheme",
        &[
            "Scheme",
            "Compression ratio",
            "Accuracy drop (pp)",
            "Lossless",
        ],
    );
    for scheme in schemes() {
        let mut total_ratio = 0.0f64;
        let mut total_drop = 0.0f64;
        for m in &models {
            let full_acc = accuracy(&m.network, &m.result.weights, &m.data.test).expect("eval");
            let mut orig = 0usize;
            let mut packed = 0usize;
            let mut lossy: Weights = Weights::new();
            for (name, mat) in m.result.weights.layers() {
                let enc = encode(mat, scheme, false);
                orig += mat.len() * 4;
                packed += footprint(&enc, Level::Default);
                lossy.insert(name, decode(&enc));
            }
            let lossy_acc = accuracy(&m.network, &lossy, &m.data.test).expect("eval");
            total_ratio += orig as f64 / packed as f64;
            total_drop += f64::from(full_acc - lossy_acc) * 100.0;
        }
        let n = models.len() as f64;
        t.row(vec![
            scheme.name(),
            format!("{:.2}x", total_ratio / n),
            format!("{:+.2}", total_drop / n),
            scheme.is_lossless().to_string(),
        ]);
    }
    t.emit(&results_dir(), "fig6a")
}
