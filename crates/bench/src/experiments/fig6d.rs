//! Fig 6(d) — progressive query evaluation using high-order bytes.
//!
//! Each of the three trained models is archived; every test input is then
//! answered progressively (top-1 and top-k). We report, per prefix size,
//! the fraction of compressed data that had to be retrieved and the
//! fraction of queries whose prediction was *not yet* determined at that
//! prefix (the "error rate requiring lower-order bytes").

use crate::report::{results_dir, Table};
use crate::workload::three_models;
use mh_compress::Level;
use mh_delta::DeltaOp;
use mh_pas::{solver, CostModel, GraphBuilder, ModelBinding, ProgressiveEvaluator, SegmentStore};

pub fn run(classes: usize, iters: usize) -> std::io::Result<()> {
    let models = three_models(classes, iters);
    let mut t = Table::new(
        "Fig 6(d) — progressive evaluation: data retrieved vs undetermined queries",
        &[
            "Model",
            "top-k",
            "avg % data read",
            "% undetermined @1B",
            "% undetermined @2B",
            "% undetermined @3B",
            "accuracy",
        ],
    );
    for m in &models {
        // Archive the final snapshot (materialized, MST of one snapshot).
        let mut builder = GraphBuilder::new(CostModel::default());
        let lv = builder.add_snapshot(m.name, 0, &m.result.weights);
        let (graph, mats) = builder.finish();
        let plan = solver::mst(&graph).expect("mst");
        let dir = std::env::temp_dir().join(format!("mh-fig6d-{}-{}", std::process::id(), m.name));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SegmentStore::create(&dir, &graph, &plan, &mats, DeltaOp::Sub, Level::Default)
            .expect("store");
        let binding = ModelBinding::new(m.network.clone(), lv);
        let ev = ProgressiveEvaluator::new(&store, &binding);

        for top_k in [1usize, 3] {
            let stats = ev.eval_batch(&m.data.test, top_k).expect("batch");
            t.row(vec![
                m.name.to_string(),
                format!("top-{top_k}"),
                format!("{:.1}", stats.read_fraction() * 100.0),
                format!("{:.1}", stats.fraction_beyond(1) * 100.0),
                format!("{:.1}", stats.fraction_beyond(2) * 100.0),
                format!("{:.1}", stats.fraction_beyond(3) * 100.0),
                format!("{:.3}", stats.accuracy()),
            ]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    t.emit(&results_dir(), "fig6d")
}
