//! Fig 6(b) — compression performance of Materialize vs Delta-SUB vs
//! Delta-XOR across the three relationship classes: Similar (retrained)
//! models, Fine-tuned models, and adjacent Snapshots.
//!
//! Numbers are compressed size as a percentage of the uncompressed f32
//! footprint (lower is better), lossless (float 32) — matching the
//! figure's setting.

use crate::report::{results_dir, Table};
use crate::workload::{finetuned_pair, similar_pair, snapshot_pair};
use mh_compress::{compressed_len, Level};
use mh_delta::{Delta, DeltaOp};
use mh_dnn::Weights;
use mh_tensor::{split_byte_planes, SegmentedMatrix};

/// Compressed bytes of a matrix stored outright (per-plane compression).
fn materialize_bytes(w: &Weights) -> (usize, usize) {
    let mut orig = 0usize;
    let mut packed = 0usize;
    for (_, m) in w.layers() {
        orig += m.len() * 4;
        let seg = SegmentedMatrix::from_matrix(m);
        for p in 0..4 {
            packed += compressed_len(seg.plane(p), Level::Default);
        }
    }
    (orig, packed)
}

/// Compressed bytes of the target expressed as a delta from the base.
fn delta_bytes(base: &Weights, target: &Weights, op: DeltaOp) -> usize {
    let mut packed = 0usize;
    for (name, t) in target.layers() {
        let empty = mh_tensor::Matrix::zeros(0, 0);
        let b = base.get(name).unwrap_or(&empty);
        let d = Delta::compute(b, t, op);
        for plane in split_byte_planes(&d.word_bytes(), 4) {
            packed += compressed_len(&plane, Level::Default);
        }
    }
    packed
}

pub fn run(iters: usize) -> std::io::Result<()> {
    let scenarios: Vec<(&str, (Weights, Weights))> = vec![
        ("Similar (retrained)", similar_pair(iters)),
        ("Fine-tuned", finetuned_pair(iters)),
        ("Snapshots (adjacent)", snapshot_pair(iters)),
    ];
    let mut t = Table::new(
        "Fig 6(b) — storage as % of uncompressed, per delta scheme (lossless f32)",
        &[
            "Scenario",
            "Materialize %",
            "Delta-SUB %",
            "Delta-XOR %",
            "Winner",
        ],
    );
    for (name, (base, target)) in scenarios {
        let (orig, mat) = materialize_bytes(&target);
        let sub = delta_bytes(&base, &target, DeltaOp::Sub);
        let xor = delta_bytes(&base, &target, DeltaOp::Xor);
        let pct = |x: usize| 100.0 * x as f64 / orig as f64;
        let winner = if mat <= sub && mat <= xor {
            "materialize"
        } else if sub <= xor {
            "delta-sub"
        } else {
            "delta-xor"
        };
        t.row(vec![
            name.to_string(),
            format!("{:.1}", pct(mat)),
            format!("{:.1}", pct(sub)),
            format!("{:.1}", pct(xor)),
            winner.to_string(),
        ]);
    }
    t.emit(&results_dir(), "fig6b")
}
