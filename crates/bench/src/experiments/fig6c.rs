//! Fig 6(c) — comparing the archival storage algorithms on SD.
//!
//! Build the matrix storage graph of an SD repository, sweep the recreation
//! threshold `α` (budgets θᵢ = α · Cr(SPT, sᵢ)), and report the storage
//! cost achieved by LAST, PAS-MT and PAS-PT next to the MST (best possible
//! storage) and SPT (best possible recreation) anchors.

use crate::report::{results_dir, Table};
use mh_dlv::Repository;
use mh_pas::{apply_alpha_budgets, solver, CostModel, GraphBuilder, RetrievalScheme, StorageGraph};
use modelhub_core::{generate_sd, SdConfig};

/// Build the SD storage graph (fresh temp repository each run).
pub fn build_sd_graph(versions: usize, snapshots: usize) -> StorageGraph {
    let root = std::env::temp_dir().join(format!(
        "mh-fig6c-{}-{versions}-{snapshots}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let repo = Repository::init(&root).expect("init temp repo");
    generate_sd(
        &repo,
        &SdConfig {
            num_versions: versions,
            snapshots_per_version: snapshots,
            ..Default::default()
        },
    )
    .expect("SD generation");

    let mut builder = GraphBuilder::new(CostModel::default());
    for summary in repo.list() {
        let spec = summary.key.to_string();
        let mut indices = Vec::new();
        for s in repo.snapshots(&spec).expect("snapshots") {
            let w = repo.get_weights(&spec, Some(s.index)).expect("weights");
            builder.add_snapshot(&spec, s.index, &w);
            indices.push(s.index);
        }
        builder.link_version_chain(&spec, &indices);
    }
    let latest: std::collections::BTreeMap<String, usize> = repo
        .list()
        .iter()
        .map(|s| {
            let spec = s.key.to_string();
            let max = repo
                .snapshots(&spec)
                .expect("listed version resolves")
                .iter()
                .map(|x| x.index)
                .max()
                .unwrap_or(0);
            (spec, max)
        })
        .collect();
    for (b, d) in repo.lineage() {
        if let (Some(&bs), Some(&ds)) = (latest.get(&b), latest.get(&d)) {
            builder.link_snapshots(&b, bs, &d, ds);
        }
    }
    let (graph, _) = builder.finish();
    let _ = std::fs::remove_dir_all(&root);
    graph
}

pub fn run(versions: usize, snapshots: usize) -> std::io::Result<()> {
    let graph = build_sd_graph(versions, snapshots);
    let scheme = RetrievalScheme::Independent;
    let mst = solver::mst(&graph).expect("mst");
    let spt = solver::spt(&graph).expect("spt");
    let mst_cs = mst.storage_cost(&graph);
    let spt_cs = spt.storage_cost(&graph);

    let mut t = Table::new(
        &format!(
            "Fig 6(c) — archival algorithms on SD ({} matrices, {} groups; MST Cs={:.0}, SPT Cs={:.0})",
            graph.num_vertices() - 1,
            graph.snapshots.len(),
            mst_cs,
            spt_cs
        ),
        &[
            "alpha",
            "LAST Cs",
            "PAS-MT Cs",
            "PAS-PT Cs",
            "LAST feasible",
            "MT feasible",
            "PT feasible",
            "MT maxCr/budget",
        ],
    );
    for alpha in [1.05, 1.1, 1.2, 1.4, 1.6, 2.0, 2.5, 3.0, 4.0, 6.0] {
        let mut g = graph.clone();
        apply_alpha_budgets(&mut g, alpha, scheme).expect("budgets");
        let last = solver::last(&g, alpha - 1.0).expect("last");
        let mt = solver::pas_mt(&g, scheme).expect("mt");
        let pt = solver::pas_pt(&g, scheme).expect("pt");
        // Tightness: worst ratio of achieved recreation to budget for MT.
        let tightness = g
            .snapshots
            .iter()
            .map(|s| mt.snapshot_recreation_cost(&g, &s.members, scheme) / s.budget)
            .fold(0.0f64, f64::max);
        t.row(vec![
            format!("{alpha:.2}"),
            format!("{:.0}", last.storage_cost(&g)),
            format!("{:.0}", mt.storage_cost(&g)),
            format!("{:.0}", pt.storage_cost(&g)),
            last.satisfies_budgets(&g, scheme).to_string(),
            mt.satisfies_budgets(&g, scheme).to_string(),
            pt.satisfies_budgets(&g, scheme).to_string(),
            format!("{tightness:.2}"),
        ]);
    }
    t.emit(&results_dir(), "fig6c")
}
