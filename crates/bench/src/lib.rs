//! # mh-bench
//!
//! The experiment harness regenerating every table and figure of the
//! ModelHub paper's evaluation (§V), on the scaled substrate described in
//! DESIGN.md. The `repro` binary drives the experiments in
//! [`experiments`]; Criterion micro-benches live under `benches/`.

pub mod experiments;
pub mod gate;
pub mod report;
pub mod workload;

/// Every experiment name, in the order `repro all` runs them.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig6a",
    "fig6b",
    "table4",
    "fig6c",
    "table5",
    "fig6d",
    "rd",
    "ablations",
    "pas",
    "hub",
];

/// Run one named experiment (writing its artifacts under `results/`).
/// `quick` shrinks training lengths and workload sizes so a run finishes
/// in seconds. Unknown names return `InvalidInput`, so callers can keep
/// their own usage reporting.
pub fn run_experiment(name: &str, quick: bool) -> std::io::Result<()> {
    use experiments::*;
    let train_iters = if quick { 6 } else { 24 };
    let (sd_versions, sd_snapshots) = if quick { (3, 2) } else { (6, 4) };
    let (t5_snapshots, t5_iters) = if quick { (3, 3) } else { (6, 6) };
    let fig6d_iters = if quick { 8 } else { 80 };
    match name {
        "table1" => table1::run(),
        "fig6a" => fig6a::run(train_iters),
        "fig6b" => fig6b::run(train_iters),
        "table4" => table4::run(train_iters),
        "fig6c" => fig6c::run(sd_versions, sd_snapshots),
        "table5" => table5::run(t5_snapshots, t5_iters),
        "fig6d" => fig6d::run(4, fig6d_iters),
        "ablations" => ablations::run(train_iters),
        "pas" => pas::run(quick),
        "hub" => hub::run(quick),
        "rd" => rd::run(),
        other => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("unknown experiment '{other}'"),
        )),
    }
}
