//! # mh-bench
//!
//! The experiment harness regenerating every table and figure of the
//! ModelHub paper's evaluation (§V), on the scaled substrate described in
//! DESIGN.md. The `repro` binary drives the experiments in
//! [`experiments`]; Criterion micro-benches live under `benches/`.

pub mod experiments;
pub mod gate;
pub mod report;
pub mod workload;
