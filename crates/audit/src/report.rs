//! Findings, waiver application, and deterministic rendering.

use crate::lexer::{Ann, Directive};
use std::fmt::Write as _;

/// One finding. `file` is filled in by the driver once the file is
/// known (passes produce findings with only line/code/message).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub code: &'static str,
    pub message: String,
}

impl Finding {
    pub fn new(line: u32, code: &'static str, message: String) -> Finding {
        Finding {
            file: String::new(),
            line,
            code,
            message,
        }
    }
}

/// Full audit result.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived waivers, sorted by (file, line, code).
    pub findings: Vec<Finding>,
    /// Count of findings suppressed by a reasoned waiver.
    pub waived: usize,
    /// Files scanned.
    pub scanned_files: usize,
    /// Functions audited by the panic/taint passes (zone-reachable).
    pub audited_fns: usize,
    /// Declared entry points (qualified names, sorted).
    pub entries: Vec<String>,
    /// Declared nonblocking zones (qualified names, sorted).
    pub zones: Vec<String>,
}

/// Every code the auditor can emit, with a one-line meaning. The CLIs
/// print this for `--version`; keep it in sync when adding a pass.
pub fn rules_inventory() -> &'static [(&'static str, &'static str)] {
    &[
        ("A001", "`.unwrap()` reachable in a no_panic_zone"),
        ("A002", "`.expect()` reachable in a no_panic_zone"),
        ("A003", "panicking macro reachable in a no_panic_zone"),
        (
            "A004",
            "indexing / bounds-panicking slice method in a no_panic_zone",
        ),
        (
            "A005",
            "range slice `expr[a..b]` reachable in a no_panic_zone",
        ),
        (
            "A006",
            "non-literal divisor or chunk size (panics on zero) in a no_panic_zone",
        ),
        ("A007", "untrusted length flows into an allocation sink"),
        ("A008", "untrusted value used as index/slice bound"),
        ("A009", "unchecked arithmetic on an untrusted length"),
        ("A010", "malformed or reason-less mh-audit directive"),
        (
            "A101",
            "parking_lot primitive; use mh_par::sync::{Mutex, RwLock}",
        ),
        ("A102", "std::sync primitive; use mh_par::sync"),
        ("A103", "std::thread primitive; use mh_par::sync::thread"),
        ("A104", "direct Instant::now; use mh_par::sync::now()"),
        (
            "R001",
            "blocking sync op (lock/condvar/sleep/join) reachable in a nonblocking_zone",
        ),
        (
            "R002",
            "blocking file/socket I/O reachable in a nonblocking_zone",
        ),
        (
            "R003",
            "lock-order cycle across the workspace (potential ABBA deadlock)",
        ),
        ("R004", "blocking I/O while a lock guard is held"),
        (
            "R005",
            "pool/thread wait while a lock guard is held (worker exhaustion)",
        ),
        (
            "W001",
            "stale waiver: allow(...) suppresses no current finding (not waivable)",
        ),
    ]
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Deterministic text rendering: one `file:line: [CODE] message`
    /// per finding plus a trailer summary. Byte-identical across runs
    /// on identical sources.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.code, f.message);
        }
        let _ = writeln!(
            out,
            "mh-audit: {} finding(s), {} waived, {} file(s) scanned, {} fn(s) audited from {} entry point(s), {} nonblocking zone(s)",
            self.findings.len(),
            self.waived,
            self.scanned_files,
            self.audited_fns,
            self.entries.len(),
            self.zones.len(),
        );
        out
    }
}

/// Apply waivers to raw findings for one file.
///
/// An `allow(CODE, reason)` on the finding's own line — or standing
/// alone on the line directly above — suppresses it. A malformed or
/// reason-less directive becomes an **A010** finding itself and waives
/// nothing. A waiver that suppresses *no* current finding is stale and
/// becomes a **W001** finding at the waiver's own line: the ledger must
/// shrink with the code it excuses, not outlive it. W001 itself is not
/// waivable (the lexer rejects `allow(W...)`) — a stale waiver is
/// deleted, not excused.
pub fn apply_waivers(
    rel: &str,
    anns: &[Ann],
    raw: Vec<Finding>,
    waived_count: &mut usize,
) -> Vec<Finding> {
    // One entry per allow directive, so each can report staleness
    // individually even when several share a line.
    struct Waiver<'a> {
        /// Line the waiver covers (its own, or the next for standalone).
        covers: u32,
        /// Line the directive itself sits on (W001 anchor).
        at: u32,
        code: &'a str,
        used: bool,
    }
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut out: Vec<Finding> = Vec::new();
    for ann in anns {
        match &ann.directive {
            Directive::Allow { code, reason: _ } => {
                let covers = if ann.standalone {
                    ann.line + 1
                } else {
                    ann.line
                };
                waivers.push(Waiver {
                    covers,
                    at: ann.line,
                    code: code.as_str(),
                    used: false,
                });
            }
            Directive::Malformed(msg) => {
                out.push(Finding {
                    file: rel.to_string(),
                    line: ann.line,
                    code: "A010",
                    message: format!("malformed mh-audit directive: {msg}"),
                });
            }
            _ => {}
        }
    }
    for mut f in raw {
        let mut waived = false;
        for w in waivers.iter_mut() {
            if w.covers == f.line && w.code == f.code {
                w.used = true;
                waived = true;
            }
        }
        if waived {
            *waived_count += 1;
            continue;
        }
        f.file = rel.to_string();
        out.push(f);
    }
    for w in &waivers {
        if !w.used {
            out.push(Finding {
                file: rel.to_string(),
                line: w.at,
                code: "W001",
                message: format!(
                    "stale waiver: `allow({}, ..)` suppresses no current finding — delete it",
                    w.code
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn waiver_suppresses_matching_code_only() {
        let m = crate::lexer::MARKER;
        let src = format!("let a = v[i]; // {m} allow(A004, caller checked bounds)\n");
        let anns = lex(&src).anns;
        let raw = vec![
            Finding::new(1, "A004", "indexing".into()),
            Finding::new(1, "A001", "unwrap".into()),
        ];
        let mut waived = 0;
        let out = apply_waivers("f.rs", &anns, raw, &mut waived);
        assert_eq!(waived, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "A001");
    }

    #[test]
    fn standalone_waiver_covers_next_line() {
        let m = crate::lexer::MARKER;
        let src = format!("// {m} allow(A001, startup only)\nlet a = x.unwrap();\n");
        let anns = lex(&src).anns;
        let raw = vec![Finding::new(2, "A001", "unwrap".into())];
        let mut waived = 0;
        let out = apply_waivers("f.rs", &anns, raw, &mut waived);
        assert_eq!(waived, 1);
        assert!(out.is_empty());
    }

    #[test]
    fn reasonless_waiver_is_a010_and_waives_nothing() {
        let m = crate::lexer::MARKER;
        let src = format!("let a = x.unwrap(); // {m} allow(A001)\n");
        let anns = lex(&src).anns;
        let raw = vec![Finding::new(1, "A001", "unwrap".into())];
        let mut waived = 0;
        let out = apply_waivers("f.rs", &anns, raw, &mut waived);
        assert_eq!(waived, 0);
        let codes: Vec<&str> = out.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"A010"));
        assert!(codes.contains(&"A001"));
    }

    #[test]
    fn stale_waiver_is_w001() {
        let m = crate::lexer::MARKER;
        let src = format!("let a = v.get(i); // {m} allow(A004, caller checked bounds)\n");
        let anns = lex(&src).anns;
        let mut waived = 0;
        let out = apply_waivers("f.rs", &anns, Vec::new(), &mut waived);
        assert_eq!(waived, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "W001");
        assert_eq!(out[0].line, 1);
        assert!(out[0].message.contains("A004"));
    }

    #[test]
    fn used_waiver_is_not_stale() {
        let m = crate::lexer::MARKER;
        let src = format!("let a = v[i]; // {m} allow(A004, caller checked bounds)\n");
        let anns = lex(&src).anns;
        let raw = vec![Finding::new(1, "A004", "indexing".into())];
        let mut waived = 0;
        let out = apply_waivers("f.rs", &anns, raw, &mut waived);
        assert_eq!(waived, 1);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn w001_is_not_waivable() {
        // `allow(W001, ...)` is rejected at lex time: a stale waiver
        // must be deleted, never excused by another waiver.
        let m = crate::lexer::MARKER;
        let src = format!("// {m} allow(W001, keep it)\n");
        let anns = lex(&src).anns;
        assert_eq!(anns.len(), 1);
        assert!(matches!(anns[0].directive, Directive::Malformed(_)));
    }

    #[test]
    fn inventory_covers_all_codes() {
        let inv = rules_inventory();
        let codes: Vec<&str> = inv.iter().map(|(c, _)| *c).collect();
        for c in ["A001", "A010", "A104", "R001", "R005", "W001"] {
            assert!(codes.contains(&c), "{c} missing from inventory");
        }
        // Sorted and unique — the --version listing is deterministic.
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted);
    }

    #[test]
    fn render_is_deterministic() {
        let mut r = Report::default();
        r.findings.push(Finding {
            file: "a.rs".into(),
            line: 3,
            code: "A001",
            message: "x".into(),
        });
        assert_eq!(r.render(), r.render());
        assert!(r.render().contains("a.rs:3: [A001] x"));
    }
}
