//! Findings, waiver application, and deterministic rendering.

use crate::lexer::{Ann, Directive};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One finding. `file` is filled in by the driver once the file is
/// known (passes produce findings with only line/code/message).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub code: &'static str,
    pub message: String,
}

impl Finding {
    pub fn new(line: u32, code: &'static str, message: String) -> Finding {
        Finding {
            file: String::new(),
            line,
            code,
            message,
        }
    }
}

/// Full audit result.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived waivers, sorted by (file, line, code).
    pub findings: Vec<Finding>,
    /// Count of findings suppressed by a reasoned waiver.
    pub waived: usize,
    /// Files scanned.
    pub scanned_files: usize,
    /// Functions audited by the panic/taint passes (zone-reachable).
    pub audited_fns: usize,
    /// Declared entry points (qualified names, sorted).
    pub entries: Vec<String>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Deterministic text rendering: one `file:line: [CODE] message`
    /// per finding plus a trailer summary. Byte-identical across runs
    /// on identical sources.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.code, f.message);
        }
        let _ = writeln!(
            out,
            "mh-audit: {} finding(s), {} waived, {} file(s) scanned, {} fn(s) audited from {} entry point(s)",
            self.findings.len(),
            self.waived,
            self.scanned_files,
            self.audited_fns,
            self.entries.len(),
        );
        out
    }
}

/// Apply waivers to raw findings for one file.
///
/// An `allow(CODE, reason)` on the finding's own line — or standing
/// alone on the line directly above — suppresses it. A malformed or
/// reason-less directive becomes an **A010** finding itself and waives
/// nothing.
pub fn apply_waivers(
    rel: &str,
    anns: &[Ann],
    raw: Vec<Finding>,
    waived_count: &mut usize,
) -> Vec<Finding> {
    // line → codes allowed there.
    let mut allowed: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    let mut out: Vec<Finding> = Vec::new();
    for ann in anns {
        match &ann.directive {
            Directive::Allow { code, reason: _ } => {
                let line = if ann.standalone { ann.line + 1 } else { ann.line };
                allowed.entry(line).or_default().push(code.as_str());
            }
            Directive::Malformed(msg) => {
                out.push(Finding {
                    file: rel.to_string(),
                    line: ann.line,
                    code: "A010",
                    message: format!("malformed mh-audit directive: {msg}"),
                });
            }
            _ => {}
        }
    }
    for mut f in raw {
        let waived = allowed
            .get(&f.line)
            .is_some_and(|codes| codes.contains(&f.code));
        if waived {
            *waived_count += 1;
            continue;
        }
        f.file = rel.to_string();
        out.push(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn waiver_suppresses_matching_code_only() {
        let m = crate::lexer::MARKER;
        let src = format!("let a = v[i]; // {m} allow(A004, caller checked bounds)\n");
        let anns = lex(&src).anns;
        let raw = vec![
            Finding::new(1, "A004", "indexing".into()),
            Finding::new(1, "A001", "unwrap".into()),
        ];
        let mut waived = 0;
        let out = apply_waivers("f.rs", &anns, raw, &mut waived);
        assert_eq!(waived, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "A001");
    }

    #[test]
    fn standalone_waiver_covers_next_line() {
        let m = crate::lexer::MARKER;
        let src = format!("// {m} allow(A001, startup only)\nlet a = x.unwrap();\n");
        let anns = lex(&src).anns;
        let raw = vec![Finding::new(2, "A001", "unwrap".into())];
        let mut waived = 0;
        let out = apply_waivers("f.rs", &anns, raw, &mut waived);
        assert_eq!(waived, 1);
        assert!(out.is_empty());
    }

    #[test]
    fn reasonless_waiver_is_a010_and_waives_nothing() {
        let m = crate::lexer::MARKER;
        let src = format!("let a = x.unwrap(); // {m} allow(A001)\n");
        let anns = lex(&src).anns;
        let raw = vec![Finding::new(1, "A001", "unwrap".into())];
        let mut waived = 0;
        let out = apply_waivers("f.rs", &anns, raw, &mut waived);
        assert_eq!(waived, 0);
        let codes: Vec<&str> = out.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"A010"));
        assert!(codes.contains(&"A001"));
    }

    #[test]
    fn render_is_deterministic() {
        let mut r = Report::default();
        r.findings.push(Finding {
            file: "a.rs".into(),
            line: 3,
            code: "A001",
            message: "x".into(),
        });
        assert_eq!(r.render(), r.render());
        assert!(r.render().contains("a.rs:3: [A001] x"));
    }
}
