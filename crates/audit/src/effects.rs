//! Blocking-effect inference — which workspace functions *may block*.
//!
//! Seed facts are recognized at call sites by syntax (the facade's own
//! sources are a trust boundary, so acquisition is keyed on how the
//! facade is *used*, not how it is implemented):
//!
//! * lock acquisition — `.lock()`, and 0-argument `.read()`/`.write()`
//!   (`RwLock`; the 1-argument forms are `io::Read`/`io::Write`),
//!   `Mutex::lock`/`RwLock::read`/`RwLock::write` type-qualified;
//! * condvar waits — 1-argument `.wait(guard)` and `.wait_timeout(..)`;
//! * file/socket I/O — paths into `std::fs`/`std::net` (through the
//!   `use` map), `File`/`OpenOptions`/`Tcp*`/`UdpSocket` constructors,
//!   and the `io::Read`/`io::Write` method family (`read_exact`,
//!   `write_all`, `flush`, `accept`, …);
//! * pool submit-and-wait — `thread::scope` (joins all scoped threads
//!   on exit) and 0-argument `.join()` (thread join; the 1-argument
//!   slice `join(sep)` is shadowed std);
//! * `thread::sleep`.
//!
//! "May block" then propagates transitively through the workspace call
//! graph. The graph's by-name resolution links a `.method(` call with
//! an unknown receiver to *every* workspace function of that name —
//! which is exactly the conservative widening trait methods need: a
//! call through `dyn Trait`/generic `T: Trait` inherits the union of
//! all same-name impls' effects. `trusted` functions (including the
//! facade/model/obs infrastructure layer) are opaque boundaries assumed
//! nonblocking; what they do internally is their audit's problem.

use crate::graph::{CallSite, Graph};
use crate::parser::ParsedFile;
use std::collections::BTreeMap;

/// Blocking-effect kinds, as a bitmask.
pub const LOCK: u8 = 1 << 0;
pub const CONDVAR: u8 = 1 << 1;
pub const SLEEP: u8 = 1 << 2;
pub const IO: u8 = 1 << 3;
pub const POOL: u8 = 1 << 4;

/// `io::Read`/`io::Write`/socket methods that block on the underlying
/// descriptor regardless of arity.
const IO_METHODS: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "read_vectored",
    "recv",
    "recv_from",
    "rewind",
    "seek",
    "send_to",
    "set_len",
    "sync_all",
    "sync_data",
    "write_all",
    "write_fmt",
    "write_vectored",
];

/// A directly-blocking operation found at a call site.
#[derive(Debug, Clone)]
pub struct Seed {
    pub line: u32,
    /// Token index of the operation (orders events for regions).
    pub idx: usize,
    /// One of the kind bits above.
    pub kind: u8,
    /// Human description, e.g. "`.lock()` (mutex acquire)".
    pub what: &'static str,
}

/// Classify one call site as a direct blocking seed, if it is one.
pub fn classify(
    site: &CallSite,
    uses: &BTreeMap<String, Vec<String>>,
) -> Option<(u8, &'static str)> {
    let name = site.name.as_str();
    if site.is_method {
        return match (name, site.nargs) {
            ("lock", Some(0)) => Some((LOCK, "`.lock()` (mutex acquire)")),
            ("read", Some(0)) => Some((LOCK, "`.read()` (rwlock acquire)")),
            ("write", Some(0)) => Some((LOCK, "`.write()` (rwlock acquire)")),
            ("wait", Some(1)) => Some((CONDVAR, "`.wait(guard)` (condvar wait)")),
            ("wait_timeout", _) => Some((CONDVAR, "`.wait_timeout(..)` (condvar wait)")),
            ("join", Some(0)) => Some((POOL, "`.join()` (thread join)")),
            ("read", Some(1)) => Some((IO, "`.read(buf)` (io::Read)")),
            ("write", Some(1)) => Some((IO, "`.write(buf)` (io::Write)")),
            ("sleep", _) => Some((SLEEP, "`.sleep()`")),
            _ if IO_METHODS.contains(&name) => Some((IO, "blocking io/socket method")),
            _ => None,
        };
    }
    // Qualified / bare calls: expand the first segment through the
    // file's use map so `fs::read` and `use std::fs::read; read(..)`
    // classify the same way.
    let mut full: Vec<&str> = Vec::new();
    match site.path.first() {
        Some(first) => {
            if let Some(exp) = uses.get(first) {
                full.extend(exp.iter().map(String::as_str));
            } else {
                full.push(first);
            }
            full.extend(site.path.iter().skip(1).map(String::as_str));
        }
        None => {
            if let Some(exp) = uses.get(name) {
                // Direct import of the leaf: expansion ends in `name`.
                full.extend(exp.iter().map(String::as_str));
                full.pop();
            }
        }
    }
    // A path that resolves inside the workspace (`crate::…`, an `mh_*`
    // crate) is a real call-graph edge; its effects come from the
    // callee's own body via propagation, not from a seed here.
    if matches!(
        full.first(),
        Some(&"crate") | Some(&"self") | Some(&"super")
    ) || full.first().is_some_and(|s| s.starts_with("mh_"))
    {
        return None;
    }
    if name == "sleep" {
        return Some((SLEEP, "`thread::sleep`"));
    }
    let qualifier = full.last().copied().unwrap_or("");
    if name == "scope" && full.contains(&"thread") {
        return Some((POOL, "`thread::scope` (joins scoped threads)"));
    }
    if name == "wait" && qualifier == "Condvar" {
        return Some((CONDVAR, "`Condvar::wait` (condvar wait)"));
    }
    if (name == "lock" || name == "read" || name == "write")
        && matches!(qualifier, "Mutex" | "RwLock")
    {
        return Some((LOCK, "type-qualified lock acquire"));
    }
    if full.contains(&"fs") || full.contains(&"net") {
        return Some((IO, "std::fs / std::net call"));
    }
    if matches!(
        qualifier,
        "File" | "OpenOptions" | "TcpStream" | "TcpListener" | "UdpSocket"
    ) {
        return Some((IO, "file/socket constructor"));
    }
    if IO_METHODS.contains(&name) && !full.is_empty() {
        return Some((IO, "blocking io/socket call"));
    }
    None
}

/// Per-function blocking effects for the whole workspace.
pub struct Effects {
    /// Bitmask of blocking kinds each function may perform, including
    /// transitively through callees (parallel to `graph.funcs`).
    pub may_block: Vec<u8>,
    /// Direct seeds found in each function's own body.
    pub seeds: Vec<Vec<Seed>>,
}

/// Infer blocking effects: seed facts per body, then propagate "may
/// block" backwards over call edges to a fixpoint.
pub fn infer(graph: &Graph, files: &[ParsedFile]) -> Effects {
    let n = graph.funcs.len();
    let mut seeds: Vec<Vec<Seed>> = vec![Vec::new(); n];
    let mut may_block: Vec<u8> = vec![0; n];
    for id in 0..n {
        let f = &graph.funcs[id];
        if f.in_test || f.trusted.is_some() || f.body.is_empty() {
            continue;
        }
        let uses = &files[graph.file_of[id]].uses;
        for site in &graph.calls[id] {
            if let Some((kind, what)) = classify(site, uses) {
                seeds[id].push(Seed {
                    line: site.line,
                    idx: site.idx,
                    kind,
                    what,
                });
                may_block[id] |= kind;
            }
        }
    }
    // Fixpoint: a function may block if any non-trusted callee may.
    // Bounded by the longest acyclic chain; iterate until stable.
    loop {
        let mut changed = false;
        for id in 0..n {
            if graph.funcs[id].in_test || graph.funcs[id].trusted.is_some() {
                continue;
            }
            let mut acc = may_block[id];
            for &c in &graph.edges[id] {
                if graph.funcs[c].trusted.is_none() && !graph.funcs[c].in_test {
                    acc |= may_block[c];
                }
            }
            if acc != may_block[id] {
                may_block[id] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Effects { may_block, seeds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn effects_of(src: &str) -> (Graph, Effects) {
        let files = vec![parse("a.rs", "c1", &[], lex(src))];
        let g = Graph::build(&files);
        let e = infer(&g, &files);
        (g, e)
    }

    fn mask(src: &str, name: &str) -> u8 {
        let (g, e) = effects_of(src);
        let id = g.funcs.iter().position(|f| f.name == name).unwrap();
        e.may_block[id]
    }

    #[test]
    fn direct_seeds_classify() {
        assert_eq!(mask("fn f(m: &M) { let g = m.lock(); }", "f"), LOCK);
        assert_eq!(mask("fn f(l: &L) { let g = l.write(); }", "f"), LOCK);
        assert_eq!(
            mask("fn f(s: &mut S, b: &mut [u8]) { s.read(b); }", "f"),
            IO
        );
        assert_eq!(
            mask("fn f(c: &C, g: G) { let g2 = c.wait(g); }", "f"),
            CONDVAR
        );
        assert_eq!(mask("fn f(h: H) { h.join(); }", "f"), POOL);
        assert_eq!(mask("fn f() { std::thread::sleep(d); }", "f"), SLEEP);
        assert_eq!(mask("fn f(p: &P) { std::fs::read(p); }", "f"), IO);
        assert_eq!(
            mask("use std::fs;\nfn f(p: &P) { fs::write(p, b); }", "f"),
            IO
        );
    }

    #[test]
    fn nonblocking_shapes_do_not_seed() {
        assert_eq!(
            mask("fn f(v: &mut Vec<u32>) { v.push(1); v.pop(); }", "f"),
            0
        );
        assert_eq!(
            mask("fn f(v: &[String]) { let s = v.join(\", \"); }", "f"),
            0
        );
        assert_eq!(mask("fn f(q: &Q) { q.try_lock(); }", "f"), 0);
    }

    #[test]
    fn effects_propagate_through_calls() {
        let src = "fn leaf(m: &M) { let g = m.lock(); }\n\
                   fn mid(m: &M) { leaf(m); }\n\
                   fn top(m: &M) { mid(m); }";
        assert_eq!(mask(src, "top"), LOCK);
    }

    #[test]
    fn trusted_callees_are_opaque() {
        let m = crate::lexer::MARKER;
        let src = format!(
            "// {m} trusted(verified bounded)\nfn leaf(x: &M) {{ let g = x.lock(); }}\n\
             fn top(x: &M) {{ leaf(x); }}"
        );
        assert_eq!(mask(&src, "top"), 0);
    }

    #[test]
    fn method_widening_unions_impls() {
        // Unknown receiver: `.store_it(` links to every workspace impl of
        // that name — the blocking one wins (conservative widening).
        let src = "struct A; struct B;\n\
                   impl A { fn store_it(&self, p: &P) { std::fs::write(p, b); } }\n\
                   impl B { fn store_it(&self, p: &P) {} }\n\
                   fn top(x: &X, p: &P) { x.store_it(p); }";
        assert_eq!(mask(src, "top"), IO);
    }
}
