//! Pass B — untrusted-length flow.
//!
//! Forward taint from wire-deserialization sources to allocation and
//! indexing sinks, over the same audited (zone-reachable) function set
//! as pass A. Statement-granular and syntactic:
//!
//! * **Sources** — calls to functions annotated `mh-audit: source(..)`
//!   (or whose return is tainted, via a fixpoint over summaries),
//!   `from_le_bytes` / `from_be_bytes` / `from_ne_bytes` decodes, and
//!   locals bound on a line annotated `mh-audit: tainted(..)`.
//! * **Guards** — a statement that mentions a tainted name together
//!   with a comparison operator, `.min(` / `.clamp(`, a `checked_*` /
//!   `try_into` / `try_from` call clears that name's taint (syntactic:
//!   we assume the surrounding control flow rejects the bad range; the
//!   raw-socket regression tests keep this honest end-to-end).
//! * **Sinks** — `with_capacity(t)`, `.reserve(t)`, `vec![_; t]`
//!   (**A007**), indexing/slicing with a tainted bound (**A008**), and
//!   unchecked `+ - * <<` arithmetic on a tainted length (**A009**).
//!
//! Interprocedural flow is a small fixpoint: a function returning a
//! tainted value marks its callers' bindings, and a tainted argument
//! taints the callee's parameter.

use crate::graph::Graph;
use crate::lexer::{Ann, Directive, Tok, Token};
use crate::parser::matching_close;
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

const BYTE_DECODERS: &[&str] = &["from_le_bytes", "from_be_bytes", "from_ne_bytes"];

/// One pseudo-statement: token index range within a file stream.
#[derive(Debug, Clone)]
struct Stmt {
    range: std::ops::Range<usize>,
    line: u32,
}

/// Split a body into pseudo-statements at `;`, `{`, `}` boundaries —
/// but only at paren/bracket depth 0, so `vec![0u8; n]` and closure
/// arguments stay inside one statement.
fn split_stmts(tokens: &[Token], body: std::ops::Range<usize>) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut start = body.start;
    let end = body.end.min(tokens.len());
    let mut depth = 0usize;
    for i in body.start..end {
        match tokens[i].tok {
            Tok::Open('(') | Tok::Open('[') => depth += 1,
            Tok::Close(')') | Tok::Close(']') => depth = depth.saturating_sub(1),
            Tok::Punct(";") | Tok::Open('{') | Tok::Close('}') if depth == 0 => {
                if i > start {
                    out.push(Stmt {
                        range: start..i,
                        line: tokens[start].line,
                    });
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if end > start {
        out.push(Stmt {
            range: start..end,
            line: tokens[start].line,
        });
    }
    out
}

/// Expression view of a statement: drop `let`-pattern type ascriptions
/// (`: Vec<u8>` before the `=`) and turbofish groups (`::<…>`), so
/// generic angle brackets are not mistaken for comparison guards.
fn expr_view(tokens: &[Token]) -> Vec<Token> {
    let mut out: Vec<Token> = Vec::new();
    let is_let = matches!(tokens.first().map(|t| &t.tok), Some(Tok::Ident(s)) if s == "let");
    let mut i = 0usize;
    let mut depth = 0usize;
    let mut seen_eq = false;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Open(_) => {
                depth += 1;
                out.push(tokens[i].clone());
            }
            Tok::Close(_) => {
                depth = depth.saturating_sub(1);
                out.push(tokens[i].clone());
            }
            Tok::Punct("=") if depth == 0 => {
                seen_eq = true;
                out.push(tokens[i].clone());
            }
            Tok::Punct(":") if is_let && depth == 0 && !seen_eq => {
                // Type ascription: skip until `=` at depth 0 (or end).
                while i + 1 < tokens.len() {
                    match &tokens[i + 1].tok {
                        Tok::Punct("=") if depth == 0 => break,
                        Tok::Open(_) => depth += 1,
                        Tok::Close(_) => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                    i += 1;
                }
            }
            Tok::Punct("::")
                if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct("<"))) =>
            {
                // Turbofish: skip the angle group.
                let mut angle = 0i32;
                i += 1;
                while let Some(t) = tokens.get(i) {
                    match t.tok {
                        Tok::Punct("<") => angle += 1,
                        Tok::Punct(">") => {
                            angle -= 1;
                            if angle <= 0 {
                                break;
                            }
                        }
                        Tok::Punct(">>") => {
                            angle -= 2;
                            if angle <= 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => out.push(tokens[i].clone()),
        }
        i += 1;
    }
    out
}

fn has_ident(tokens: &[Token], name: &str) -> bool {
    tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
}

fn any_tainted(tokens: &[Token], taint: &BTreeSet<String>) -> bool {
    tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if taint.contains(s)))
}

/// Does the statement syntactically bound-check any mentioned name?
fn is_guard(tokens: &[Token]) -> bool {
    for (k, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Punct("<")
            | Tok::Punct("<=")
            | Tok::Punct(">")
            | Tok::Punct(">=")
            | Tok::Punct("==")
            | Tok::Punct("!=") => return true,
            Tok::Ident(s)
                if s == "min"
                    || s == "clamp"
                    || s == "try_into"
                    || s == "try_from"
                    || s.starts_with("checked_") =>
            {
                // Must be a call, not a field named `min`.
                if matches!(tokens.get(k + 1).map(|t| &t.tok), Some(Tok::Open('('))) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Does the statement contain a taint source (annotated call, tainted
/// summary call, or byte decode)?
fn has_source(tokens: &[Token], source_names: &BTreeSet<String>) -> bool {
    for (k, t) in tokens.iter().enumerate() {
        if let Tok::Ident(s) = &t.tok {
            let is_call = matches!(tokens.get(k + 1).map(|t| &t.tok), Some(Tok::Open('(')))
                || matches!(tokens.get(k + 1).map(|t| &t.tok), Some(Tok::Punct("::")));
            if is_call && (BYTE_DECODERS.contains(&s.as_str()) || source_names.contains(s)) {
                return true;
            }
        }
    }
    false
}

/// Names bound by a `let` statement: lowercase idents between `let` and
/// the `:`/`=` at pattern depth 0 (uppercase idents are enum/struct
/// constructors in patterns like `let Some(n) = …`, not bindings).
fn let_bindings(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut started = false;
    let mut depth = 0usize;
    for t in tokens {
        match &t.tok {
            Tok::Ident(s) if !started && s == "let" => started = true,
            Tok::Ident(s) if started => {
                let lower = s
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_');
                if lower && s != "mut" && s != "ref" && s != "_" {
                    out.push(s.clone());
                }
            }
            Tok::Open(_) if started => depth += 1,
            Tok::Close(_) if started => depth = depth.saturating_sub(1),
            Tok::Punct(":") | Tok::Punct("=") if started && depth == 0 => break,
            _ if !started && !matches!(&t.tok, Tok::Ident(_)) => break,
            _ => {}
        }
    }
    out
}

/// Sinks within one statement mentioning tainted names.
fn stmt_sinks(
    tokens: &[Token],
    taint: &BTreeSet<String>,
    line: u32,
    ctx: &str,
    out: &mut Vec<Finding>,
) {
    let tainted_at = |k: usize| matches!(tokens.get(k).map(|t| &t.tok), Some(Tok::Ident(s)) if taint.contains(s));
    for (k, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Ident(s) if s == "with_capacity" || s == "reserve" => {
                if let Some(Tok::Open('(')) = tokens.get(k + 1).map(|t| &t.tok) {
                    let close = matching_close(tokens, k + 1);
                    if any_tainted(&tokens[k + 1..close.min(tokens.len())], taint) {
                        out.push(Finding::new(
                            line,
                            "A007",
                            format!("untrusted length flows into `{s}` {ctx}"),
                        ));
                    }
                }
            }
            // vec![elem; t]
            Tok::Ident(s)
                if s == "vec"
                    && matches!(tokens.get(k + 1).map(|t| &t.tok), Some(Tok::Punct("!")))
                    && matches!(tokens.get(k + 2).map(|t| &t.tok), Some(Tok::Open('['))) =>
            {
                let close = matching_close(tokens, k + 2);
                let inner = &tokens[k + 3..close.min(tokens.len())];
                let mut depth = 0usize;
                let mut after_semi = false;
                for it in inner {
                    match &it.tok {
                        Tok::Open(_) => depth += 1,
                        Tok::Close(_) => depth = depth.saturating_sub(1),
                        Tok::Punct(";") if depth == 0 => after_semi = true,
                        Tok::Ident(n) if after_semi && taint.contains(n) => {
                            out.push(Finding::new(
                                line,
                                "A007",
                                format!("untrusted length flows into `vec![_; {n}]` {ctx}"),
                            ));
                            break;
                        }
                        _ => {}
                    }
                }
            }
            Tok::Open('[') => {
                let indexing = k > 0 && crate::panics::expr_ending(&tokens[k - 1].tok);
                if indexing {
                    let close = matching_close(tokens, k);
                    if any_tainted(&tokens[k + 1..close.min(tokens.len())], taint) {
                        out.push(Finding::new(
                            line,
                            "A008",
                            format!("untrusted value used as index/slice bound {ctx}"),
                        ));
                    }
                }
            }
            Tok::Punct(p @ ("+" | "-" | "*" | "<<")) => {
                let has_checked = tokens.iter().any(|t| {
                    matches!(&t.tok, Tok::Ident(s) if s.starts_with("checked_")
                        || s.starts_with("saturating_")
                        || s.starts_with("wrapping_"))
                });
                if !has_checked && (tainted_at(k.wrapping_sub(1)) || tainted_at(k + 1)) {
                    out.push(Finding::new(
                        line,
                        "A009",
                        format!("unchecked `{p}` arithmetic on untrusted length {ctx}"),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Per-function analysis result.
#[derive(Default, Clone, PartialEq)]
struct Summary {
    returns_taint: bool,
    tainted_params: BTreeSet<usize>,
}

/// Run pass B. `anns_of_file[fi]` are the file's annotations.
pub fn run(
    graph: &Graph,
    tokens_of_file: &[&[Token]],
    anns_of_file: &[&[Ann]],
) -> BTreeMap<usize, Vec<Finding>> {
    let (audited, parents) = graph.reachable();
    // Source names: annotated `source(..)` functions anywhere in the
    // workspace (name-based, over-approximate) seed the fixpoint.
    let mut source_names: BTreeSet<String> = graph
        .funcs
        .iter()
        .filter(|f| f.source.is_some())
        .map(|f| f.name.clone())
        .collect();
    let mut summaries: BTreeMap<usize, Summary> = BTreeMap::new();

    // `tainted(..)` line annotations per file: standalone applies to
    // the next line, trailing to its own.
    let tainted_lines: Vec<BTreeSet<u32>> = anns_of_file
        .iter()
        .map(|anns| {
            anns.iter()
                .filter_map(|a| match &a.directive {
                    Directive::Tainted(_) => Some(if a.standalone { a.line + 1 } else { a.line }),
                    _ => None,
                })
                .collect()
        })
        .collect();

    // Fixpoint: propagate returns_taint / param taint until stable.
    let mut findings_by_file: BTreeMap<usize, Vec<Finding>> = BTreeMap::new();
    for _round in 0..10 {
        let mut changed = false;
        findings_by_file.clear();
        for &id in &audited {
            let f = &graph.funcs[id];
            if f.body.is_empty() {
                continue;
            }
            let fi = graph.file_of[id];
            let tokens = tokens_of_file[fi];
            let entry = graph.witness_entry(&parents, id);
            let ctx = if entry == id {
                format!("in entry `{}`", f.qualified())
            } else {
                format!(
                    "in `{}` (entry `{}`)",
                    f.qualified(),
                    graph.funcs[entry].qualified()
                )
            };
            let prior = summaries.get(&id).cloned().unwrap_or_default();
            let mut taint: BTreeSet<String> = prior
                .tainted_params
                .iter()
                .filter_map(|&p| f.params.get(p).cloned())
                .collect();
            let mut returns_taint = f.source.is_some();
            let stmts = split_stmts(tokens, f.body.clone());
            let n_stmts = stmts.len();
            let mut local_findings: Vec<Finding> = Vec::new();
            for (si, stmt) in stmts.iter().enumerate() {
                let raw_toks = &tokens[stmt.range.clone()];
                if raw_toks.is_empty() {
                    continue;
                }
                let view = expr_view(raw_toks);
                let toks = view.as_slice();
                let stmt_tainted_ann = stmt
                    .range
                    .clone()
                    .filter_map(|k| tokens.get(k))
                    .any(|t| tainted_lines[fi].contains(&t.line));
                // Guard first: a bound-checking statement clears the
                // names it mentions.
                if is_guard(toks) {
                    // A bound-checking statement clears the tainted
                    // names it mentions and never taints its bindings
                    // (`let n = len().min(CAP)` is already clamped).
                    let mentioned: Vec<String> = toks
                        .iter()
                        .filter_map(|t| match &t.tok {
                            Tok::Ident(s) if taint.contains(s) => Some(s.clone()),
                            _ => None,
                        })
                        .collect();
                    for m in mentioned {
                        taint.remove(&m);
                    }
                    continue;
                }
                // Sinks.
                stmt_sinks(toks, &taint, stmt.line, &ctx, &mut local_findings);
                // Propagation.
                let sourced = has_source(toks, &source_names)
                    || stmt_tainted_ann
                    || propagated_call_taint(toks, graph, &taint, &summaries, &mut changed, id);
                let rhs_tainted = sourced || any_tainted(toks, &taint);
                let bindings = let_bindings(toks);
                if !bindings.is_empty() {
                    if rhs_tainted {
                        for b in bindings {
                            taint.insert(b);
                        }
                    }
                } else if rhs_tainted && has_ident(toks, "return") {
                    returns_taint = true;
                }
                if si + 1 == n_stmts && rhs_tainted {
                    returns_taint = true; // tainted tail expression
                }
            }
            let new_summary = Summary {
                returns_taint,
                tainted_params: prior.tainted_params.clone(),
            };
            if summaries.get(&id) != Some(&new_summary) {
                summaries.insert(id, new_summary);
                changed = true;
            }
            if returns_taint && source_names.insert(f.name.clone()) {
                changed = true;
            }
            findings_by_file
                .entry(fi)
                .or_default()
                .extend(local_findings);
        }
        if !changed {
            break;
        }
    }
    findings_by_file
}

/// If the statement passes a tainted argument to an audited callee,
/// taint the callee's parameter (recorded for the next round). Returns
/// whether the statement binds a call whose summary returns taint.
fn propagated_call_taint(
    _toks: &[Token],
    _graph: &Graph,
    _taint: &BTreeSet<String>,
    _summaries: &BTreeMap<usize, Summary>,
    _changed: &mut bool,
    _id: usize,
) -> bool {
    // Parameter-taint propagation is folded into `source_names` (a
    // function whose return is tainted taints every binding that calls
    // it); argument→parameter flow is covered by the `tainted(..)` and
    // `source(..)` annotations at the deserialization boundary, which is
    // where every wire length enters. Documented over-approximation.
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn run_src(src: &str) -> Vec<(String, u32)> {
        let pf = parse("t.rs", "t", &[], lex(src));
        let g = Graph::build(std::slice::from_ref(&pf));
        let toks: Vec<&[Token]> = vec![&pf.tokens];
        let anns: Vec<&[Ann]> = vec![&pf.anns];
        run(&g, &toks, &anns)
            .into_values()
            .flatten()
            .map(|f| (f.code.to_string(), f.line))
            .collect()
    }

    fn zone(body: &str) -> String {
        format!(
            "// {m} source(test wire length)\nfn read_len(buf: &[u8]) -> usize {{ 0 }}\n\
             // {m} no_panic_zone\nfn entry(buf: &[u8]) {{\n{body}\n}}",
            m = crate::lexer::MARKER
        )
    }

    #[test]
    fn source_to_with_capacity_flags() {
        let codes = run_src(&zone(
            "let n = read_len(buf); let v: Vec<u8> = Vec::with_capacity(n);",
        ));
        assert!(codes.iter().any(|(c, _)| c == "A007"), "{codes:?}");
    }

    #[test]
    fn guard_clears_taint() {
        let codes = run_src(&zone(
            "let n = read_len(buf); if n > 4096 { return; } let v: Vec<u8> = Vec::with_capacity(n);",
        ));
        assert!(codes.iter().all(|(c, _)| c != "A007"), "{codes:?}");
    }

    #[test]
    fn min_clears_taint() {
        let codes = run_src(&zone(
            "let n = read_len(buf).min(4096); let v: Vec<u8> = Vec::with_capacity(n);",
        ));
        assert!(codes.iter().all(|(c, _)| c != "A007"), "{codes:?}");
    }

    #[test]
    fn vec_macro_sink() {
        let codes = run_src(&zone("let n = read_len(buf); let v = vec![0u8; n];"));
        assert!(codes.iter().any(|(c, _)| c == "A007"), "{codes:?}");
    }

    #[test]
    fn index_sink() {
        let codes = run_src(&zone("let n = read_len(buf); let b = buf[n];"));
        assert!(codes.iter().any(|(c, _)| c == "A008"), "{codes:?}");
    }

    #[test]
    fn arithmetic_sink() {
        let codes = run_src(&zone("let n = read_len(buf); let total = n * 4;"));
        assert!(codes.iter().any(|(c, _)| c == "A009"), "{codes:?}");
    }

    #[test]
    fn checked_arithmetic_ok() {
        let codes = run_src(&zone(
            "let n = read_len(buf); let total = n.checked_mul(4);",
        ));
        assert!(codes.iter().all(|(c, _)| c != "A009"), "{codes:?}");
    }

    #[test]
    fn byte_decode_is_source() {
        let codes = run_src(&zone(
            "let n = u32::from_le_bytes(hdr) as usize; let v: Vec<u8> = Vec::with_capacity(n);",
        ));
        assert!(codes.iter().any(|(c, _)| c == "A007"), "{codes:?}");
    }

    #[test]
    fn tainted_annotation_marks_binding() {
        let src = format!(
            "// {m} no_panic_zone\nfn entry(s: &str) {{\n\
             let n: usize = s.len(); // {m} tainted(test)\n\
             let v: Vec<u8> = Vec::with_capacity(n);\n}}",
            m = crate::lexer::MARKER
        );
        let codes = run_src(&src);
        assert!(codes.iter().any(|(c, _)| c == "A007"), "{codes:?}");
    }

    #[test]
    fn returns_taint_propagates_to_caller() {
        let src = format!(
            "// {m} source(wire)\nfn raw(b: &[u8]) -> usize {{ 0 }}\n\
             // {m} no_panic_zone\nfn middle(b: &[u8]) -> usize {{ raw(b) }}\n\
             // {m} no_panic_zone\nfn entry(b: &[u8]) {{ let n = middle(b); let v: Vec<u8> = Vec::with_capacity(n); }}",
            m = crate::lexer::MARKER
        );
        let codes = run_src(&src);
        assert!(codes.iter().any(|(c, _)| c == "A007"), "{codes:?}");
    }
}
