//! mh-audit — syntax-aware panic/alloc auditor for the workspace's
//! untrusted-input hot paths.
//!
//! The hub serves arbitrary clients; a single reachable `unwrap()`,
//! out-of-bounds index, or `Vec::with_capacity(attacker_len)` in the
//! request path is a remote kill-a-worker or OOM primitive. This crate
//! proves the absence of those *syntactically*: a hand-rolled lexer and
//! item parser ([`lexer`], [`parser`]), an over-approximate workspace
//! call graph ([`graph`]), and three analyses:
//!
//! * **Pass A** ([`panics`]) — panic reachability from
//!   `// mh-audit: no_panic_zone` entry points (codes A001–A006).
//! * **Pass B** ([`taint`]) — untrusted-length flow from
//!   deserialization sources to allocation/index sinks (A007–A009).
//! * **Token rules** ([`rules`]) — the absorbed sync-facade lint
//!   (A101–A104), now over real tokens instead of text.
//! * **Pass R** ([`conc`], on [`effects`]) — static concurrency audit:
//!   blocking-effect inference, `// mh-audit: nonblocking_zone`
//!   reachability (R001/R002), a whole-workspace lock-order graph with
//!   ABBA-cycle detection (R003), and guard-held-region analysis for
//!   blocking I/O / pool waits under a lock (R004/R005).
//!
//! Deliberate exceptions carry `// mh-audit: allow(CODE, reason)`
//! waivers; a reason-less waiver is itself a finding (A010) and a
//! *stale* waiver — one that suppresses nothing — is W001. Functions
//! proven total by review are `// mh-audit: trusted(reason)` boundaries.
//! Output is deterministic: byte-identical across runs on identical
//! sources (everything is `BTreeMap`-ordered; no timestamps).
//!
//! See DESIGN.md § mh-audit for the annotation grammar and the known
//! over-approximations.

pub mod conc;
pub mod effects;
pub mod graph;
pub mod lexer;
pub mod panics;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;

use graph::Graph;
use parser::ParsedFile;
use report::{Finding, Report};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A source file handed to the auditor: workspace-relative path,
/// owning crate's lib name, file-derived module path, and text.
pub struct SourceFile {
    pub rel: String,
    pub crate_name: String,
    pub module: Vec<String>,
    pub text: String,
}

/// Audit a set of in-memory sources (the driver for both the real
/// workspace walk and the fixture tests).
pub fn audit_sources(sources: &[SourceFile]) -> Report {
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|s| {
            let mut lexed = lexer::lex(&s.text);
            // The auditor's own sources (pattern tables, doc examples
            // that spell out the annotation grammar) are not allowed to
            // carry live directives — otherwise prose like the marker
            // followed by `no_panic_zone` in a doc comment would create
            // phantom entry points.
            if rules::facade_allowlisted(&s.rel) {
                lexed.anns.clear();
            }
            parser::parse(&s.rel, &s.crate_name, &s.module, lexed)
        })
        .collect();
    let graph = Graph::build(&parsed);
    let tokens_of_file: Vec<&[lexer::Token]> = parsed.iter().map(|p| p.tokens.as_slice()).collect();
    let anns_of_file: Vec<&[lexer::Ann]> = parsed.iter().map(|p| p.anns.as_slice()).collect();

    let mut raw_by_file: BTreeMap<usize, Vec<Finding>> = BTreeMap::new();
    for (fi, findings) in panics::run(&graph, &tokens_of_file) {
        raw_by_file.entry(fi).or_default().extend(findings);
    }
    for (fi, findings) in taint::run(&graph, &tokens_of_file, &anns_of_file) {
        raw_by_file.entry(fi).or_default().extend(findings);
    }
    for (fi, findings) in conc::run(&graph, &parsed) {
        raw_by_file.entry(fi).or_default().extend(findings);
    }
    for (fi, p) in parsed.iter().enumerate() {
        if !rules::facade_allowlisted(&p.rel) {
            raw_by_file
                .entry(fi)
                .or_default()
                .extend(rules::scan(&p.tokens));
        }
    }

    let mut report = Report {
        scanned_files: parsed.len(),
        ..Report::default()
    };
    let (audited, _) = graph.reachable();
    report.audited_fns = audited.len();
    report.entries = {
        let mut e: Vec<String> = graph
            .funcs
            .iter()
            .filter(|f| f.entry && !f.in_test)
            .map(|f| f.qualified())
            .collect();
        e.sort();
        e.dedup();
        e
    };
    report.zones = {
        let mut z: Vec<String> = graph
            .funcs
            .iter()
            .filter(|f| f.nonblocking && !f.in_test)
            .map(|f| f.qualified())
            .collect();
        z.sort();
        z.dedup();
        z
    };
    for (fi, p) in parsed.iter().enumerate() {
        let raw = raw_by_file.remove(&fi).unwrap_or_default();
        let kept = report::apply_waivers(&p.rel, &p.anns, raw, &mut report.waived);
        report.findings.extend(kept);
    }
    report.findings.sort();
    report.findings.dedup();
    report
}

/// Walk a workspace root and audit every `.rs` file under `crates/`,
/// `src/` and `tools/` (skipping `target/`, dot-dirs, and `vendor/`).
pub fn audit_root(root: &Path) -> std::io::Result<Report> {
    let mut sources: Vec<SourceFile> = Vec::new();
    // Crate dirs: crates/*, tools/*, plus the root package (src/).
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tools"] {
        let dir = root.join(top);
        if dir.is_dir() {
            let mut subdirs: Vec<PathBuf> = std::fs::read_dir(&dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            subdirs.sort();
            crate_dirs.extend(subdirs);
        }
    }
    crate_dirs.push(root.to_path_buf());

    for dir in crate_dirs {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let crate_name = package_lib_name(&manifest).unwrap_or_else(|| {
            dir.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("unknown")
                .replace('-', "_")
        });
        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let module = module_path_of(&path, &src_dir);
            let text = std::fs::read_to_string(&path)?;
            sources.push(SourceFile {
                rel,
                crate_name: crate_name.clone(),
                module,
                text,
            });
        }
    }
    Ok(audit_sources(&sources))
}

/// `[package] name = "..."` from a Cargo.toml, underscored.
fn package_lib_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let name = rest.trim().trim_matches('"');
                    if !name.is_empty() {
                        return Some(name.replace('-', "_"));
                    }
                }
            }
        }
    }
    None
}

/// File-derived module path: `src/a/b.rs` → `[a, b]`, `src/lib.rs` and
/// `src/main.rs` → `[]`, `src/a/mod.rs` → `[a]`, `src/bin/x.rs` → `[]`.
fn module_path_of(path: &Path, src_dir: &Path) -> Vec<String> {
    let rel = match path.strip_prefix(src_dir) {
        Ok(r) => r,
        Err(_) => return Vec::new(),
    };
    let mut parts: Vec<String> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .map(String::from)
        .collect();
    let Some(last) = parts.pop() else {
        return Vec::new();
    };
    let stem = last.trim_end_matches(".rs");
    if parts.first().map(String::as_str) == Some("bin") {
        return Vec::new();
    }
    if stem != "lib" && stem != "main" && stem != "mod" {
        parts.push(stem.to_string());
    }
    parts
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel: &str, src: &str) -> Vec<SourceFile> {
        vec![SourceFile {
            rel: rel.into(),
            crate_name: "t".into(),
            module: Vec::new(),
            text: src.into(),
        }]
    }

    #[test]
    fn end_to_end_zone_finding() {
        let m = lexer::MARKER;
        let src = format!("// {m} no_panic_zone\nfn entry(v: &[u8]) {{ let x = v[0]; }}\n");
        let r = audit_sources(&one("x.rs", &src));
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].code, "A004");
        assert_eq!(r.entries, vec!["t::entry"]);
        assert!(!r.is_clean());
    }

    #[test]
    fn waived_finding_is_counted_not_reported() {
        let m = lexer::MARKER;
        let src = format!(
            "// {m} no_panic_zone\nfn entry(v: &[u8]) {{ let x = v[0]; // {m} allow(A004, v checked nonempty by caller)\n}}\n"
        );
        let r = audit_sources(&one("x.rs", &src));
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn outside_zone_panics_not_flagged_but_rules_still_fire() {
        let src = "fn helper(v: &[u8]) { let x = v[0].min(1); }\n\
                   fn timer() { let t = Instant::now(); }\n";
        let r = audit_sources(&one("x.rs", src));
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert_eq!(codes, vec!["A104"]);
    }

    #[test]
    fn render_stable_across_runs() {
        let m = lexer::MARKER;
        let src = format!(
            "// {m} no_panic_zone\nfn entry(v: &[u8]) {{ let a = v[0]; let b = v.split_at(2); b.0.len() / a as usize }}\n"
        );
        let r1 = audit_sources(&one("x.rs", &src)).render();
        let r2 = audit_sources(&one("x.rs", &src)).render();
        assert_eq!(r1, r2);
    }
}
