//! Pass R — static concurrency analysis.
//!
//! Three layers on top of [`crate::effects`] blocking-effect inference:
//!
//! * **Nonblocking zones** (R001/R002) — walks the call graph from every
//!   `// mh-audit: nonblocking_zone` entry (the hubd reactor loop, the
//!   completion handoff) and flags each directly-blocking operation in a
//!   reachable function: R001 for blocking synchronization (lock
//!   acquire, condvar wait, sleep, pool/thread join), R002 for blocking
//!   file/socket I/O. Mirrors the `no_panic_zone` machinery.
//! * **Guard-held regions** — tracks `let g = m.lock()` bindings through
//!   their lexical scope (early `drop(g)` aware; a region dies when its
//!   enclosing block closes). Guards are only *created* when the acquire
//!   is the whole initializer (`let g = m.lock();`); a chained
//!   `m.lock().len()` is a statement-temporary and holds nothing here.
//!   While a guard is live, every call made and every direct blocking
//!   seed is recorded: guard-held blocking I/O is R004, guard-held
//!   pool-wait (worker-exhaustion deadlock) is R005.
//! * **Lock-order graph** (R003) — lock identities are static classes
//!   derived from the acquire's receiver chain (`self.inner.lock()` in
//!   an `impl CompletionQueue` → `mh_par::CompletionQueue.inner`; local
//!   receivers key on the crate + variable name). Every acquisition
//!   made while another guard is held — directly or transitively through
//!   calls — adds an order edge; a strongly-connected component of two
//!   or more classes is a potential ABBA deadlock.
//!
//! Known false-negative shapes (documented in DESIGN.md): calls through
//! closures carry no edges, same-class distinct-instance ordering is not
//! modeled (self-edges are dropped), and `trusted` boundaries are
//! assumed nonblocking.

use crate::effects::{self, Effects};
use crate::graph::Graph;
use crate::lexer::{Tok, Token};
use crate::parser::{matching_close, Func, ParsedFile};
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// A live guard binding during the region walk.
struct Guard {
    name: String,
    class: String,
    brace_depth: usize,
}

/// Order-graph edge witnesses: (from, to) → (file index, line, note).
type EdgeMap = BTreeMap<(String, String), (usize, u32, String)>;

/// Walk back from the receiver of `.lock()`/`.read()`/`.write()` (the
/// ident at `name_idx`, preceded by `.`) and derive a static lock class.
fn receiver_class(tokens: &[Token], name_idx: usize, f: &Func) -> Option<String> {
    if name_idx < 2 || !matches!(tokens[name_idx - 1].tok, Tok::Punct(".")) {
        return None;
    }
    let mut segments: Vec<String> = Vec::new();
    let mut j = name_idx - 2;
    loop {
        match &tokens[j].tok {
            Tok::Ident(s) => segments.push(s.clone()),
            Tok::Close(')') => {
                // Receiver is a call result: scan back to the matching
                // open paren and use `callee()` as the segment.
                let mut depth = 0usize;
                let mut k = j;
                loop {
                    match tokens[k].tok {
                        Tok::Close(_) => depth += 1,
                        Tok::Open(_) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if k == 0 {
                    break;
                }
                match &tokens[k - 1].tok {
                    Tok::Ident(callee) => {
                        segments.push(format!("{callee}()"));
                        j = k - 1;
                    }
                    _ => break,
                }
            }
            _ => break,
        }
        if j >= 2 && matches!(tokens[j - 1].tok, Tok::Punct(".")) {
            j -= 2;
        } else {
            break;
        }
    }
    if segments.is_empty() {
        return None;
    }
    segments.reverse();
    let class = if segments[0] == "self" {
        let owner = f.impl_type.as_deref().unwrap_or(&f.name);
        if segments.len() == 1 {
            format!("{}::{owner}", f.crate_name)
        } else {
            format!("{}::{owner}.{}", f.crate_name, segments[1..].join("."))
        }
    } else {
        format!("{}::{}", f.crate_name, segments.join("."))
    };
    Some(class)
}

/// Lock classes a function acquires directly (method-syntax acquires).
fn direct_acquires(
    graph: &Graph,
    files: &[ParsedFile],
    eff: &Effects,
    id: usize,
) -> BTreeSet<String> {
    let f = &graph.funcs[id];
    let tokens = &files[graph.file_of[id]].tokens;
    eff.seeds[id]
        .iter()
        .filter(|s| s.kind == effects::LOCK)
        .filter_map(|s| receiver_class(tokens, s.idx, f))
        .collect()
}

/// Per-function region walk: emits R004/R005 findings and order edges.
#[allow(clippy::too_many_arguments)]
fn analyze_regions(
    graph: &Graph,
    files: &[ParsedFile],
    eff: &Effects,
    acq: &[BTreeSet<String>],
    id: usize,
    edges_out: &mut EdgeMap,
    findings: &mut BTreeMap<usize, Vec<Finding>>,
) {
    let f = &graph.funcs[id];
    let fi = graph.file_of[id];
    let tokens = &files[fi].tokens;
    let body = f.body.clone();
    let seed_at: BTreeMap<usize, &effects::Seed> =
        eff.seeds[id].iter().map(|s| (s.idx, s)).collect();
    let site_at: BTreeMap<usize, &crate::graph::CallSite> =
        graph.calls[id].iter().map(|s| (s.idx, s)).collect();

    let mut guards: Vec<Guard> = Vec::new();
    let mut brace_depth = 0usize;
    let mut delim_depth = 0usize;
    // (binding name, delim depth of its statement), cleared at `;`.
    let mut pending_let: Option<(String, usize)> = None;

    let mut add_edge = |from: &str, to: &str, line: u32, note: String| {
        if from != to {
            edges_out
                .entry((from.to_string(), to.to_string()))
                .or_insert((fi, line, note));
        }
    };

    let end = body.end.min(tokens.len());
    let mut i = body.start;
    while i < end {
        match &tokens[i].tok {
            Tok::Open(c) => {
                delim_depth += 1;
                if *c == '{' {
                    brace_depth += 1;
                }
            }
            Tok::Close(c) => {
                if *c == '}' {
                    guards.retain(|g| g.brace_depth < brace_depth);
                    brace_depth = brace_depth.saturating_sub(1);
                }
                delim_depth = delim_depth.saturating_sub(1);
            }
            Tok::Punct(";") => {
                if let Some((_, d)) = &pending_let {
                    if delim_depth <= *d {
                        pending_let = None;
                    }
                }
            }
            Tok::Ident(kw) if kw == "let" => {
                let mut k = i + 1;
                while matches!(tokens.get(k).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "mut") {
                    k += 1;
                }
                if let Some(Tok::Ident(nm)) = tokens.get(k).map(|t| &t.tok) {
                    // Only a simple `let name =`/`let name:` binding —
                    // `let Some(g) =` patterns are not guard bindings.
                    if matches!(
                        tokens.get(k + 1).map(|t| &t.tok),
                        Some(Tok::Punct("=")) | Some(Tok::Punct(":"))
                    ) {
                        pending_let = Some((nm.clone(), delim_depth));
                    }
                }
            }
            Tok::Ident(kw)
                if kw == "drop"
                    && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Open('(')))
                    && matches!(tokens.get(i + 3).map(|t| &t.tok), Some(Tok::Close(')'))) =>
            {
                if let Some(Tok::Ident(nm)) = tokens.get(i + 2).map(|t| &t.tok) {
                    guards.retain(|g| g.name != *nm);
                }
            }
            _ => {}
        }

        if let Some(site) = site_at.get(&i) {
            let line = tokens[i].line;
            if let Some(seed) = seed_at.get(&i) {
                match seed.kind {
                    effects::LOCK => {
                        if let Some(class) = receiver_class(tokens, i, f) {
                            for g in &guards {
                                add_edge(&g.class, &class, line, format!("in `{}`", f.qualified()));
                            }
                            // Bind a guard only when the acquire is the
                            // whole initializer: `let g = m.lock();`.
                            let close = matching_close(tokens, i + 1);
                            let ends_stmt = matches!(
                                tokens.get(close + 1).map(|t| &t.tok),
                                Some(Tok::Punct(";"))
                            );
                            if ends_stmt {
                                if let Some((nm, _)) = pending_let.take() {
                                    guards.retain(|g| g.name != nm);
                                    guards.push(Guard {
                                        name: nm,
                                        class,
                                        brace_depth,
                                    });
                                }
                            }
                        }
                    }
                    effects::IO => {
                        for g in &guards {
                            findings.entry(fi).or_default().push(Finding::new(
                                line,
                                "R004",
                                format!(
                                    "blocking I/O ({}) while `{}` guard is held in `{}`",
                                    seed.what,
                                    g.class,
                                    f.qualified()
                                ),
                            ));
                        }
                    }
                    effects::POOL => {
                        for g in &guards {
                            findings.entry(fi).or_default().push(Finding::new(
                                line,
                                "R005",
                                format!(
                                    "pool/thread wait ({}) while `{}` guard is held in `{}` \
                                     (worker-exhaustion deadlock risk)",
                                    seed.what,
                                    g.class,
                                    f.qualified()
                                ),
                            ));
                        }
                    }
                    // Condvar waits release the guard while parked —
                    // the canonical pattern, not a finding.
                    _ => {}
                }
            } else if !guards.is_empty() {
                // Plain call while a guard is held: recover this site's
                // candidates from the deduped edge set by name.
                let mut agg = 0u8;
                let mut acq_union: BTreeSet<&str> = BTreeSet::new();
                for &c in &graph.edges[id] {
                    if graph.funcs[c].name == site.name {
                        agg |= eff.may_block[c];
                        acq_union.extend(acq[c].iter().map(String::as_str));
                    }
                }
                for g in &guards {
                    for b in &acq_union {
                        add_edge(
                            &g.class,
                            b,
                            line,
                            format!("via call to `{}` in `{}`", site.name, f.qualified()),
                        );
                    }
                    if agg & effects::IO != 0 {
                        findings.entry(fi).or_default().push(Finding::new(
                            line,
                            "R004",
                            format!(
                                "call to `{}` (may do blocking I/O) while `{}` guard is held in `{}`",
                                site.name,
                                g.class,
                                f.qualified()
                            ),
                        ));
                    }
                    if agg & effects::POOL != 0 {
                        findings.entry(fi).or_default().push(Finding::new(
                            line,
                            "R005",
                            format!(
                                "call to `{}` (may wait on the pool) while `{}` guard is held in `{}` \
                                 (worker-exhaustion deadlock risk)",
                                site.name,
                                g.class,
                                f.qualified()
                            ),
                        ));
                    }
                }
            }
        }
        i += 1;
    }
}

/// Kosaraju SCC over the order graph; components of ≥2 classes cycle.
fn lock_order_cycles(edges: &EdgeMap) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut radj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        nodes.insert(from);
        nodes.insert(to);
        adj.entry(from).or_default().push(to);
        radj.entry(to).or_default().push(from);
    }
    // First pass: DFS finish order.
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &n in &nodes {
        if seen.contains(n) {
            continue;
        }
        // Iterative DFS with an explicit done-marker stack.
        let mut stack: Vec<(&str, bool)> = vec![(n, false)];
        while let Some((u, done)) = stack.pop() {
            if done {
                order.push(u);
                continue;
            }
            if !seen.insert(u) {
                continue;
            }
            stack.push((u, true));
            if let Some(vs) = adj.get(u) {
                for &v in vs {
                    if !seen.contains(v) {
                        stack.push((v, false));
                    }
                }
            }
        }
    }
    // Second pass: reverse graph in reverse finish order.
    let mut comp_of: BTreeMap<&str, usize> = BTreeMap::new();
    let mut comps: Vec<Vec<String>> = Vec::new();
    for &n in order.iter().rev() {
        if comp_of.contains_key(n) {
            continue;
        }
        let cid = comps.len();
        let mut members: Vec<String> = Vec::new();
        let mut stack = vec![n];
        while let Some(u) = stack.pop() {
            if comp_of.contains_key(u) {
                continue;
            }
            comp_of.insert(u, cid);
            members.push(u.to_string());
            if let Some(vs) = radj.get(u) {
                for &v in vs {
                    if !comp_of.contains_key(v) {
                        stack.push(v);
                    }
                }
            }
        }
        members.sort();
        comps.push(members);
    }
    comps.retain(|c| c.len() >= 2);
    comps.sort();
    comps
}

/// Run pass R; findings keyed by file index.
pub fn run(graph: &Graph, files: &[ParsedFile]) -> BTreeMap<usize, Vec<Finding>> {
    let eff = effects::infer(graph, files);
    let mut out: BTreeMap<usize, Vec<Finding>> = BTreeMap::new();

    // R001/R002 — blocking ops reachable inside nonblocking zones.
    let (reached, parents) = graph.reachable_nonblocking();
    for &id in &reached {
        let f = &graph.funcs[id];
        if f.body.is_empty() {
            continue;
        }
        let entry = graph.witness_entry(&parents, id);
        let ctx = if entry == id {
            format!("in nonblocking zone `{}`", f.qualified())
        } else {
            format!(
                "in `{}` (reachable from nonblocking zone `{}`)",
                f.qualified(),
                graph.funcs[entry].qualified()
            )
        };
        let fi = graph.file_of[id];
        for seed in &eff.seeds[id] {
            let (code, label): (&'static str, &str) = if seed.kind == effects::IO {
                ("R002", "blocking I/O")
            } else {
                ("R001", "blocking operation")
            };
            out.entry(fi).or_default().push(Finding::new(
                seed.line,
                code,
                format!("{label} {} {ctx}", seed.what),
            ));
        }
    }

    // Transitive acquires, then guard-held regions and the order graph.
    let n = graph.funcs.len();
    let mut acq: Vec<BTreeSet<String>> = (0..n)
        .map(|id| {
            let f = &graph.funcs[id];
            if f.in_test || f.trusted.is_some() || f.body.is_empty() {
                BTreeSet::new()
            } else {
                direct_acquires(graph, files, &eff, id)
            }
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            if graph.funcs[id].in_test || graph.funcs[id].trusted.is_some() {
                continue;
            }
            let mut extra: Vec<String> = Vec::new();
            for &c in &graph.edges[id] {
                if graph.funcs[c].trusted.is_none() && !graph.funcs[c].in_test {
                    for cl in &acq[c] {
                        if !acq[id].contains(cl) {
                            extra.push(cl.clone());
                        }
                    }
                }
            }
            if !extra.is_empty() {
                acq[id].extend(extra);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut edges: EdgeMap = EdgeMap::new();
    for id in 0..n {
        let f = &graph.funcs[id];
        if f.in_test || f.trusted.is_some() || f.body.is_empty() {
            continue;
        }
        analyze_regions(graph, files, &eff, &acq, id, &mut edges, &mut out);
    }

    // R003 — lock-order cycles.
    for comp in lock_order_cycles(&edges) {
        // Anchor at the smallest internal edge's witness.
        let member: BTreeSet<&str> = comp.iter().map(String::as_str).collect();
        let witness = edges
            .iter()
            .find(|((a, b), _)| member.contains(a.as_str()) && member.contains(b.as_str()));
        let Some(((from, to), (fi, line, note))) = witness else {
            continue;
        };
        out.entry(*fi).or_default().push(Finding::new(
            *line,
            "R003",
            format!(
                "lock-order cycle between {} (potential ABBA deadlock); \
                 `{from}` -> `{to}` acquired here, {note}",
                comp.join(", ")
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn run_on(src: &str) -> Vec<Finding> {
        let files = vec![parse("a.rs", "c1", &[], lex(src))];
        let g = Graph::build(&files);
        run(&g, &files).into_values().flatten().collect()
    }

    fn codes(src: &str) -> Vec<&'static str> {
        let mut c: Vec<&'static str> = run_on(src).iter().map(|f| f.code).collect();
        c.sort();
        c
    }

    const ABBA: &str = "struct S { a: M, b: M }\n\
         impl S {\n\
           fn fwd(&self) { let g1 = self.a.lock(); let g2 = self.b.lock(); }\n\
           fn rev(&self) { let g1 = self.b.lock(); let g2 = self.a.lock(); }\n\
         }";

    #[test]
    fn abba_cycle_is_r003() {
        assert_eq!(codes(ABBA), vec!["R003"]);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "struct S { a: M, b: M }\n\
             impl S {\n\
               fn f1(&self) { let g1 = self.a.lock(); let g2 = self.b.lock(); }\n\
               fn f2(&self) { let g1 = self.a.lock(); let g2 = self.b.lock(); }\n\
             }";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn transitive_acquire_makes_cycle() {
        // fwd holds a then calls inner() which takes b; rev is b→a.
        let src = "struct S { a: M, b: M }\n\
             impl S {\n\
               fn inner_take(&self) { let g = self.b.lock(); }\n\
               fn fwd(&self) { let g1 = self.a.lock(); self.inner_take(); }\n\
               fn rev(&self) { let g1 = self.b.lock(); let g2 = self.a.lock(); }\n\
             }";
        assert_eq!(codes(src), vec!["R003"]);
    }

    #[test]
    fn early_drop_ends_region() {
        let src = "struct S { a: M }\n\
             impl S {\n\
               fn f(&self, p: &P) { let g = self.a.lock(); drop(g); std::fs::write(p, b); }\n\
             }";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn guard_held_io_is_r004() {
        let src = "struct S { a: M }\n\
             impl S {\n\
               fn f(&self, p: &P) { let g = self.a.lock(); std::fs::write(p, b); }\n\
             }";
        assert_eq!(codes(src), vec!["R004"]);
    }

    #[test]
    fn guard_held_pool_wait_is_r005() {
        let src = "struct S { a: M }\n\
             impl S {\n\
               fn f(&self, h: H) { let g = self.a.lock(); h.join(); }\n\
             }";
        assert_eq!(codes(src), vec!["R005"]);
    }

    #[test]
    fn block_scope_ends_region() {
        let src = "struct S { a: M }\n\
             impl S {\n\
               fn f(&self, p: &P) { { let g = self.a.lock(); } std::fs::write(p, b); }\n\
             }";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn statement_temporary_holds_nothing() {
        let src = "struct S { a: M }\n\
             impl S {\n\
               fn f(&self, p: &P) { let n = self.a.lock().len(); std::fs::write(p, b); }\n\
             }";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn zone_flags_lock_and_io() {
        let m = crate::lexer::MARKER;
        let src = format!(
            "// {m} nonblocking_zone\n\
             fn pump(q: &Q, s: &mut S, buf: &mut [u8]) {{ helper(q); }}\n\
             fn helper(q: &Q) {{ let g = q.lock(); }}"
        );
        assert_eq!(codes(&src), vec!["R001"]);
        let src2 = format!(
            "// {m} nonblocking_zone\n\
             fn pump(s: &mut S, buf: &mut [u8]) {{ s.read(buf); }}"
        );
        assert_eq!(codes(&src2), vec!["R002"]);
    }

    #[test]
    fn condvar_wait_under_guard_is_not_flagged() {
        let src = "struct Q { state: M, cv: C }\n\
             impl Q {\n\
               fn pop(&self) { let mut guard = self.state.lock(); guard = self.cv.wait(guard); }\n\
             }";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn r003_message_names_both_classes() {
        let f = run_on(ABBA);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("c1::S.a"), "{}", f[0].message);
        assert!(f[0].message.contains("c1::S.b"), "{}", f[0].message);
    }
}
