//! Hand-rolled lexer for the subset of Rust this workspace uses.
//!
//! Produces a flat token stream (identifiers, literals, punctuation,
//! delimiters) with line numbers, plus the `mh-audit:` annotations found
//! in line comments. Comment *text* never reaches the token stream, so
//! downstream rules are immune to the "raw primitive named in prose"
//! false positives the old textual lint had to special-case.
//!
//! Handled Rust surface: nested block comments, line/doc comments,
//! (byte/raw) string literals with arbitrary `#` fences, char literals
//! vs. lifetimes, numeric literals (hex/oct/bin/float/suffixed), and the
//! multi-character operators whose splitting would confuse the parser
//! (`::`, `..`, `..=`, `->`, `=>`, shifts, compound assignment).
//!
//! The lexer is total: any byte sequence produces *some* token stream
//! (unknown bytes become single-character punctuation) — a property the
//! fuzz test locks in, since the auditor must never crash on the code it
//! audits.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`foo`, `fn`, `self`, `r#match` → `match`).
    Ident(String),
    /// Lifetime such as `'a` (name not needed downstream).
    Lifetime,
    /// Numeric literal; `true` if it is a plain unsuffixed-or-suffixed
    /// integer (usable as a "literal divisor/length" in the passes).
    Num { int: bool },
    /// String or byte-string literal (contents dropped).
    Str,
    /// Char or byte literal.
    Char,
    /// Operator / punctuation, multi-character ops pre-joined.
    Punct(&'static str),
    /// Opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// Closing delimiter: `)`, `]` or `}`.
    Close(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A parsed `mh-audit:` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `no_panic_zone` — the next `fn` is a panic-reachability entry.
    NoPanicZone,
    /// `nonblocking_zone` — the next `fn` is a blocking-reachability
    /// entry: no transitively-blocking call may be reachable from it.
    NonBlockingZone,
    /// `trusted(reason)` — the next `fn` is assumed total; body and
    /// callees are not audited.
    Trusted(String),
    /// `source(reason)` — the next `fn`'s return value is attacker
    /// controlled (taint source).
    Source(String),
    /// `tainted(reason)` — locals bound on the annotated line are
    /// attacker controlled.
    Tainted(String),
    /// `allow(CODE, reason)` — waive CODE on this line (or the next,
    /// for a standalone comment).
    Allow { code: String, reason: String },
    /// Unparseable or reason-less directive — reported as A010.
    Malformed(String),
}

/// An annotation: directive, line, and whether the comment stood alone
/// (no code before it on the line) — standalone annotations apply to the
/// *next* line / item, trailing ones to their own line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ann {
    pub directive: Directive,
    pub line: u32,
    pub standalone: bool,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct LexFile {
    pub tokens: Vec<Token>,
    pub anns: Vec<Ann>,
}

/// The marker introducing a directive inside a comment. Split so the
/// auditor's own sources never match it accidentally.
pub const MARKER: &str = concat!("mh-audit", ":");

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "..", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parse the directive out of a comment body containing [`MARKER`].
fn parse_directive(comment: &str) -> Option<Directive> {
    let at = comment.find(MARKER)?;
    let rest = comment[at + MARKER.len()..].trim_start();
    let word: String = rest.chars().take_while(|c| is_ident_continue(*c)).collect();
    let after = rest[word.len()..].trim_start();
    let paren_arg = || -> Option<String> {
        let inner = after.strip_prefix('(')?;
        let end = inner.rfind(')')?;
        Some(inner[..end].trim().to_string())
    };
    Some(match word.as_str() {
        "no_panic_zone" => Directive::NoPanicZone,
        "nonblocking_zone" => Directive::NonBlockingZone,
        "trusted" => match paren_arg() {
            Some(r) if !r.is_empty() => Directive::Trusted(r),
            _ => Directive::Malformed("trusted requires a (reason)".into()),
        },
        "source" => match paren_arg() {
            Some(r) if !r.is_empty() => Directive::Source(r),
            _ => Directive::Malformed("source requires a (reason)".into()),
        },
        "tainted" => match paren_arg() {
            Some(r) if !r.is_empty() => Directive::Tainted(r),
            _ => Directive::Malformed("tainted requires a (reason)".into()),
        },
        "allow" => match paren_arg() {
            Some(arg) => {
                let (code, reason) = match arg.split_once(',') {
                    Some((c, r)) => (c.trim().to_string(), r.trim().to_string()),
                    None => (arg.trim().to_string(), String::new()),
                };
                // A### panic/taint/rule codes, R### concurrency codes.
                // W### (waiver hygiene) is deliberately NOT waivable: a
                // stale waiver must be deleted, not excused.
                let code_ok = code.len() == 4
                    && matches!(code.chars().next(), Some('A') | Some('R'))
                    && code[1..].chars().all(|c| c.is_ascii_digit());
                if !code_ok {
                    Directive::Malformed(format!("allow: bad finding code '{code}'"))
                } else if reason.is_empty() {
                    Directive::Malformed(format!("allow({code}) without a reason"))
                } else {
                    Directive::Allow { code, reason }
                }
            }
            None => Directive::Malformed("allow requires (CODE, reason)".into()),
        },
        other => Directive::Malformed(format!("unknown directive '{other}'")),
    })
}

/// Lex one source file. Total: never panics, any input yields tokens.
pub fn lex(src: &str) -> LexFile {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = LexFile::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Line of the most recently emitted token — used to decide whether a
    // comment "stands alone" on its line.
    let mut last_tok_line: u32 = 0;

    macro_rules! peek {
        ($k:expr) => {
            bytes.get(i + $k).copied()
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if peek!(1) == Some('/') => {
                // Line comment (incl. doc comments). Collect to EOL.
                let start = i;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if text.contains(MARKER) {
                    if let Some(directive) = parse_directive(&text) {
                        out.anns.push(Ann {
                            directive,
                            line,
                            standalone: last_tok_line != line,
                        });
                    }
                }
            }
            '/' if peek!(1) == Some('*') => {
                // Nested block comment; annotations inside are ignored
                // (documented — directives must be line comments).
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && peek!(1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && peek!(1) == Some('/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            'r' | 'b' if raw_string_fence(&bytes, i).is_some() => {
                let (hashes, body_start) = match raw_string_fence(&bytes, i) {
                    Some(v) => v,
                    None => break, // unreachable; keeps this arm total
                };
                let tok_line = line;
                i = body_start;
                // Scan to closing `"` followed by `hashes` of '#'.
                'raw: while i < bytes.len() {
                    if bytes[i] == '\n' {
                        line += 1;
                    } else if bytes[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if peek!(1 + k) != Some('#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Str,
                    line: tok_line,
                });
                last_tok_line = line;
            }
            'b' if peek!(1) == Some('\'') => {
                // Byte literal b'x'.
                let tok_line = line;
                i += 2;
                i = scan_char_body(&bytes, i);
                out.tokens.push(Token {
                    tok: Tok::Char,
                    line: tok_line,
                });
                last_tok_line = tok_line;
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                let mut name: String = bytes[start..i].iter().collect();
                // `b"..."` byte string: the `b` was consumed as ident
                // start only when not followed by a quote (checked above
                // for raw/char); plain b"..." lands here with name "b".
                if (name == "b" || name == "r") && peek!(0) == Some('"') {
                    let tok_line = line;
                    i += 1;
                    i = scan_string_body(&bytes, i, &mut line);
                    out.tokens.push(Token {
                        tok: Tok::Str,
                        line: tok_line,
                    });
                    last_tok_line = line;
                    continue;
                }
                // Raw identifier `r#match`: `#` is not an ident char, so
                // the scan above stopped at the bare `r` — consume the
                // fence and take the escaped name.
                if name == "r"
                    && peek!(0) == Some('#')
                    && bytes.get(i + 1).copied().is_some_and(is_ident_start)
                {
                    i += 1;
                    let start = i;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    name = bytes[start..i].iter().collect();
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(name),
                    line,
                });
                last_tok_line = line;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < bytes.len() {
                    let d = bytes[i];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        if d == 'e' || d == 'E' {
                            // Exponent: may be followed by sign.
                            if matches!(peek!(1), Some('+') | Some('-'))
                                && peek!(2).is_some_and(|x| x.is_ascii_digit())
                            {
                                is_float = true;
                                i += 2;
                                continue;
                            }
                        }
                        i += 1;
                    } else if d == '.' {
                        // `1..2` is range punctuation, `1.0` is a float,
                        // `1.` trailing is a float.
                        if peek!(1) == Some('.') {
                            break;
                        }
                        if peek!(1).is_some_and(is_ident_start) {
                            break; // method call on literal: 1.min(x)
                        }
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let int = !is_float && !text.ends_with("f32") && !text.ends_with("f64");
                out.tokens.push(Token {
                    tok: Tok::Num { int },
                    line,
                });
                last_tok_line = line;
            }
            '"' => {
                let tok_line = line;
                i += 1;
                i = scan_string_body(&bytes, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Str,
                    line: tok_line,
                });
                last_tok_line = line;
            }
            '\'' => {
                // Lifetime or char literal. `'a` followed by non-quote
                // ident-continue and no closing quote right after → a
                // lifetime; otherwise a char literal.
                let is_lifetime = peek!(1).is_some_and(is_ident_start) && peek!(2) != Some('\'');
                if is_lifetime {
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    i += 1;
                    i = scan_char_body(&bytes, i);
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                }
                last_tok_line = line;
            }
            '(' | '[' | '{' => {
                out.tokens.push(Token {
                    tok: Tok::Open(c),
                    line,
                });
                last_tok_line = line;
                i += 1;
            }
            ')' | ']' | '}' => {
                out.tokens.push(Token {
                    tok: Tok::Close(c),
                    line,
                });
                last_tok_line = line;
                i += 1;
            }
            _ => {
                // Punctuation: longest multi-char operator first.
                let mut matched: Option<&'static str> = None;
                for p in PUNCTS {
                    let pc: Vec<char> = p.chars().collect();
                    if bytes[i..].starts_with(&pc) {
                        matched = Some(p);
                        break;
                    }
                }
                let (text, width): (&'static str, usize) = match matched {
                    Some(p) => (p, p.chars().count()),
                    None => (single_punct(c), 1),
                };
                out.tokens.push(Token {
                    tok: Tok::Punct(text),
                    line,
                });
                last_tok_line = line;
                i += width;
            }
        }
    }
    out
}

/// Map a single punctuation char to a static str (unknown bytes → "?").
fn single_punct(c: char) -> &'static str {
    match c {
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '=' => "=",
        '<' => "<",
        '>' => ">",
        '!' => "!",
        '&' => "&",
        '|' => "|",
        '^' => "^",
        '~' => "~",
        '.' => ".",
        ',' => ",",
        ';' => ";",
        ':' => ":",
        '#' => "#",
        '?' => "?",
        '@' => "@",
        '$' => "$",
        _ => "?",
    }
}

/// If position `i` starts a raw (byte) string (`r"`, `r#`, `br#`…),
/// return (number of `#` fences, index of first body char).
fn raw_string_fence(bytes: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// Scan a (byte) string body starting after the opening quote; returns
/// the index after the closing quote, updating the line counter.
fn scan_string_body(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scan a char/byte literal body after the opening quote; returns the
/// index after the closing quote.
fn scan_char_body(bytes: &[char], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_do_not_tokenize() {
        assert!(idents("// parking_lot::Mutex\n/* std::sync::Mutex */").is_empty());
        assert_eq!(idents("let x = 1; // Instant::now"), vec!["let", "x"]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ c */ after"), vec!["after"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(
            idents(r##"let s = r#"unwrap() "quoted""#;"##),
            vec!["let", "s"]
        );
        assert_eq!(idents(r#"let b = b"panic!";"#), vec!["let", "b"]);
    }

    #[test]
    fn lifetime_vs_char() {
        let toks: Vec<Tok> = lex("'a 'x' '\\n' b'z'")
            .tokens
            .into_iter()
            .map(|t| t.tok)
            .collect();
        assert_eq!(toks, vec![Tok::Lifetime, Tok::Char, Tok::Char, Tok::Char]);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks: Vec<Tok> = lex("1..2 1.5 0xff_u32")
            .tokens
            .into_iter()
            .map(|t| t.tok)
            .collect();
        assert_eq!(
            toks,
            vec![
                Tok::Num { int: true },
                Tok::Punct(".."),
                Tok::Num { int: true },
                Tok::Num { int: false },
                Tok::Num { int: true },
            ]
        );
    }

    #[test]
    fn multi_char_puncts_join() {
        let toks: Vec<Tok> = lex("a::b ..= -> =>")
            .tokens
            .into_iter()
            .map(|t| t.tok)
            .collect();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("::"),
                Tok::Ident("b".into()),
                Tok::Punct("..="),
                Tok::Punct("->"),
                Tok::Punct("=>"),
            ]
        );
    }

    #[test]
    fn annotations_parse() {
        let marker = MARKER;
        let src = format!(
            "// {marker} no_panic_zone\nfn f() {{}} // {marker} allow(A001, reason here)\n// {marker} allow(A001)\n"
        );
        let lf = lex(&src);
        assert_eq!(lf.anns.len(), 3);
        assert_eq!(lf.anns[0].directive, Directive::NoPanicZone);
        assert!(lf.anns[0].standalone);
        assert_eq!(
            lf.anns[1].directive,
            Directive::Allow {
                code: "A001".into(),
                reason: "reason here".into()
            }
        );
        assert!(!lf.anns[1].standalone);
        assert!(matches!(lf.anns[2].directive, Directive::Malformed(_)));
    }

    #[test]
    fn line_numbers_track_newlines_in_strings() {
        let lf = lex("let a = \"x\ny\";\nlet b = 2;");
        let b_line = lf
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }

    #[test]
    fn lexer_is_total_on_garbage() {
        let garbage = "\u{0}\u{1}🦀 $$ @@ ''' r#\" unclosed";
        let _ = lex(garbage);
    }
}
