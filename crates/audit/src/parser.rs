//! Item-level parser: extract functions, impl blocks, modules and `use`
//! maps from a lexed token stream.
//!
//! This is not a full Rust parser — it recovers exactly what the call
//! graph needs: for every `fn`, its qualified location (crate, module
//! path, enclosing impl type), parameter names/arity, body token range,
//! `#[cfg(test)]` / `#[test]` containment, and any `mh-audit:`
//! annotations attached to it. Brace balancing keeps the scan resilient:
//! an unexpected token never aborts the file, it just falls through.

use crate::lexer::{Ann, Directive, LexFile, Tok, Token};
use std::collections::BTreeMap;

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct Func {
    /// Crate lib name (`mh_hub`), derived from the file's Cargo package.
    pub crate_name: String,
    /// Module path inside the crate (file-derived plus inline `mod`s).
    pub module: Vec<String>,
    /// Enclosing `impl` type's last path segment, if any.
    pub impl_type: Option<String>,
    /// The function's own name.
    pub name: String,
    /// Workspace-relative file and header line.
    pub file: String,
    pub line: u32,
    /// Whether the first parameter mentions `self`.
    pub has_self: bool,
    /// Parameter binding names, excluding `self`.
    pub params: Vec<String>,
    /// Token index range of the body (inside the braces); empty for
    /// bodyless trait methods.
    pub body: std::ops::Range<usize>,
    /// Inside a `#[cfg(test)]` module or marked `#[test]`.
    pub in_test: bool,
    /// Attached annotations.
    pub entry: bool,
    /// `nonblocking_zone` entry for the concurrency pass.
    pub nonblocking: bool,
    pub trusted: Option<String>,
    pub source: Option<String>,
}

impl Func {
    /// Human-readable qualified name, e.g. `mh_hub::server::Type::name`.
    pub fn qualified(&self) -> String {
        let mut s = self.crate_name.clone();
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(t) = &self.impl_type {
            s.push_str("::");
            s.push_str(t);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// One parsed file: tokens (shared with the passes), annotations, the
/// functions found, and the `use` alias map (local name → full path).
#[derive(Debug)]
pub struct ParsedFile {
    pub rel: String,
    pub crate_name: String,
    pub tokens: Vec<Token>,
    pub anns: Vec<Ann>,
    pub funcs: Vec<Func>,
    pub uses: BTreeMap<String, Vec<String>>,
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tokens: &[Token], i: usize, p: &str) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(q)) if *q == p)
}

/// Skip a balanced `<...>` generics group starting at `i` (which must be
/// `<`); returns the index just past the matching `>`. `>>` closes two.
fn skip_generics(tokens: &[Token], mut i: usize) -> usize {
    let mut depth: i32 = 0;
    while let Some(t) = tokens.get(i) {
        match &t.tok {
            Tok::Punct("<") => depth += 1,
            Tok::Punct(">") => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            Tok::Punct(">>") => {
                depth -= 2;
                if depth <= 0 {
                    return i + 1;
                }
            }
            Tok::Punct(";") | Tok::Open('{') => return i, // malformed; bail
            _ => {}
        }
        i += 1;
    }
    i
}

/// Find the matching close delimiter for the open delimiter at `i`;
/// returns its index (or the end of the stream when unbalanced).
pub fn matching_close(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while let Some(t) = tokens.get(j) {
        match t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parse parameter names from the token slice inside the fn's parens.
fn parse_params(tokens: &[Token]) -> (bool, Vec<String>) {
    let mut has_self = false;
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut start_of_param = true;
    let mut i = 0usize;
    let mut current_first_ident: Option<String> = None;
    let mut seen_colon = false;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct(",") if depth == 0 => {
                if let Some(n) = current_first_ident.take() {
                    params.push(n);
                }
                start_of_param = true;
                seen_colon = false;
            }
            Tok::Punct(":") if depth == 0 => seen_colon = true,
            Tok::Ident(name) if depth == 0 && !seen_colon => {
                if name == "self" {
                    has_self = true;
                    current_first_ident = None;
                    start_of_param = false;
                } else if start_of_param && name != "mut" && name != "ref" {
                    current_first_ident = Some(name.clone());
                    start_of_param = false;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(n) = current_first_ident.take() {
        params.push(n);
    }
    (has_self, params)
}

/// Collect use-alias entries from the tokens after the `use` keyword up
/// to the terminating `;` — maps each leaf name to its full path.
fn parse_use(tokens: &[Token], start: usize, uses: &mut BTreeMap<String, Vec<String>>) -> usize {
    // Gather tokens until `;` at depth 0.
    let mut end = start;
    let mut depth = 0usize;
    while let Some(t) = tokens.get(end) {
        match t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct(";") if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    fn walk(
        tokens: &[Token],
        mut i: usize,
        end: usize,
        prefix: &[String],
        uses: &mut BTreeMap<String, Vec<String>>,
    ) {
        let mut path = prefix.to_vec();
        while i < end {
            match &tokens[i].tok {
                Tok::Ident(s) => {
                    path.push(s.clone());
                    i += 1;
                }
                Tok::Punct("::") => i += 1,
                Tok::Open('{') => {
                    // Split the group on top-level commas, recurse.
                    let close = matching_close(tokens, i);
                    let mut seg_start = i + 1;
                    let mut depth = 0usize;
                    let mut j = i + 1;
                    while j < close.min(end) {
                        match tokens[j].tok {
                            Tok::Open(_) => depth += 1,
                            Tok::Close(_) => depth = depth.saturating_sub(1),
                            Tok::Punct(",") if depth == 0 => {
                                walk(tokens, seg_start, j, &path, uses);
                                seg_start = j + 1;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    walk(tokens, seg_start, close.min(end), &path, uses);
                    return;
                }
                _ => i += 1,
            }
        }
        // `as` alias: path like [.., "x", "as", "y"].
        if path.len() >= 3 && path[path.len() - 2] == "as" {
            let alias = path[path.len() - 1].clone();
            let mut real = path[..path.len() - 2].to_vec();
            if real.last().map(String::as_str) == Some("*") {
                return;
            }
            uses.insert(alias, std::mem::take(&mut real));
        } else if let Some(leaf) = path.last() {
            if leaf != "*" {
                uses.insert(leaf.clone(), path.clone());
            }
        }
    }
    walk(tokens, start, end, &[], uses);
    end
}

/// Annotations pending attachment to the next `fn` item.
#[derive(Default, Clone)]
struct PendingAnns {
    entry: bool,
    nonblocking: bool,
    trusted: Option<String>,
    source: Option<String>,
}

/// Parse one lexed file into items.
pub fn parse(rel: &str, crate_name: &str, file_module: &[String], lexed: LexFile) -> ParsedFile {
    let LexFile { tokens, anns } = lexed;
    let mut funcs: Vec<Func> = Vec::new();
    let mut uses: BTreeMap<String, Vec<String>> = BTreeMap::new();

    // Scope stack entries: (close_index, kind).
    #[derive(Clone)]
    enum Scope {
        Mod { name: String, test: bool },
        Impl { ty: Option<String> },
    }
    let mut scopes: Vec<(usize, Scope)> = Vec::new();

    // Fn-item annotations: standalone NoPanicZone / Trusted / Source
    // anns apply to the next fn whose header line is >= ann line.
    let mut fn_anns: Vec<(u32, Directive)> = anns
        .iter()
        .filter(|a| {
            matches!(
                a.directive,
                Directive::NoPanicZone
                    | Directive::NonBlockingZone
                    | Directive::Trusted(_)
                    | Directive::Source(_)
            )
        })
        .map(|a| (a.line, a.directive.clone()))
        .collect();
    fn_anns.sort_by_key(|(l, _)| *l);

    let mut i = 0usize;
    let mut pending_attr_test = false; // #[cfg(test)] or #[test] seen
    while i < tokens.len() {
        // Pop closed scopes.
        while let Some((close, _)) = scopes.last() {
            if i > *close {
                scopes.pop();
            } else {
                break;
            }
        }
        match &tokens[i].tok {
            Tok::Punct("#")
                if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Open('['))) =>
            {
                let close = matching_close(&tokens, i + 1);
                let mut has_test = false;
                for t in &tokens[i + 1..close.min(tokens.len())] {
                    if let Tok::Ident(s) = &t.tok {
                        if s == "test" {
                            has_test = true;
                        }
                    }
                }
                if has_test {
                    // #[test], #[cfg(test)], #[cfg(feature="test")]… —
                    // over-approximate: anything naming `test` marks the
                    // next item as test-only.
                    pending_attr_test = true;
                }
                i = close + 1;
                continue;
            }
            Tok::Ident(kw) if kw == "use" => {
                i = parse_use(&tokens, i + 1, &mut uses);
                continue;
            }
            Tok::Ident(kw) if kw == "mod" => {
                if let Some(name) = ident_at(&tokens, i + 1) {
                    let name = name.to_string();
                    if matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Open('{'))) {
                        let close = matching_close(&tokens, i + 2);
                        let test = pending_attr_test
                            || scopes
                                .iter()
                                .any(|(_, s)| matches!(s, Scope::Mod { test: true, .. }));
                        scopes.push((close, Scope::Mod { name, test }));
                        pending_attr_test = false;
                        i += 3;
                        continue;
                    }
                }
                pending_attr_test = false;
                i += 1;
                continue;
            }
            Tok::Ident(kw) if kw == "impl" => {
                // impl [<..>] Type [for Trait]? — actually `impl Trait for Type`.
                let mut j = i + 1;
                if is_punct(&tokens, j, "<") {
                    j = skip_generics(&tokens, j);
                }
                // Collect the path up to `for`, `where` or `{`.
                let mut first_path_last: Option<String> = None;
                let mut after_for: Option<String> = None;
                let mut in_for = false;
                while let Some(t) = tokens.get(j) {
                    match &t.tok {
                        Tok::Open('{') => break,
                        Tok::Punct(";") => break,
                        Tok::Ident(s) if s == "for" => in_for = true,
                        Tok::Ident(s) if s == "where" => break,
                        Tok::Ident(s) => {
                            if in_for {
                                after_for = Some(s.clone());
                            } else {
                                first_path_last = Some(s.clone());
                            }
                        }
                        Tok::Punct("<") => {
                            j = skip_generics(&tokens, j);
                            continue;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                // `impl Trait for Type` → Type; `impl Type` → Type.
                let ty = after_for.or(first_path_last);
                if let Some(Tok::Open('{')) = tokens.get(j).map(|t| &t.tok) {
                    let close = matching_close(&tokens, j);
                    scopes.push((close, Scope::Impl { ty }));
                    i = j + 1;
                } else {
                    i = j + 1;
                }
                pending_attr_test = false;
                continue;
            }
            Tok::Ident(kw) if kw == "fn" => {
                let header_line = tokens[i].line;
                let name = match ident_at(&tokens, i + 1) {
                    Some(n) => n.to_string(),
                    None => {
                        i += 1;
                        continue;
                    }
                };
                let mut j = i + 2;
                if is_punct(&tokens, j, "<") {
                    j = skip_generics(&tokens, j);
                }
                // Params.
                let (has_self, params, params_end) =
                    if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Open('('))) {
                        let close = matching_close(&tokens, j);
                        let (hs, ps) = parse_params(&tokens[j + 1..close.min(tokens.len())]);
                        (hs, ps, close + 1)
                    } else {
                        (false, Vec::new(), j)
                    };
                // Scan to body `{` or `;` (return type / where clause in
                // between; `->` and generics contain no braces here).
                let mut k = params_end;
                let mut body = 0..0;
                while let Some(t) = tokens.get(k) {
                    match &t.tok {
                        Tok::Open('{') => {
                            let close = matching_close(&tokens, k);
                            body = (k + 1)..close;
                            break;
                        }
                        Tok::Punct(";") => break,
                        Tok::Punct("<") => {
                            k = skip_generics(&tokens, k);
                            continue;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                // Attach annotations whose line is within the span
                // [ann.line, header_line] and not yet consumed.
                let mut attached = PendingAnns::default();
                fn_anns.retain(|(line, d)| {
                    if *line <= header_line {
                        match d {
                            Directive::NoPanicZone => attached.entry = true,
                            Directive::NonBlockingZone => attached.nonblocking = true,
                            Directive::Trusted(r) => attached.trusted = Some(r.clone()),
                            Directive::Source(r) => attached.source = Some(r.clone()),
                            _ => {}
                        }
                        false
                    } else {
                        true
                    }
                });
                let module: Vec<String> = file_module
                    .iter()
                    .cloned()
                    .chain(scopes.iter().filter_map(|(_, s)| match s {
                        Scope::Mod { name, .. } => Some(name.clone()),
                        _ => None,
                    }))
                    .collect();
                let impl_type = scopes.iter().rev().find_map(|(_, s)| match s {
                    Scope::Impl { ty } => ty.clone(),
                    _ => None,
                });
                let in_test = pending_attr_test
                    || scopes
                        .iter()
                        .any(|(_, s)| matches!(s, Scope::Mod { test: true, .. }));
                funcs.push(Func {
                    crate_name: crate_name.to_string(),
                    module,
                    impl_type,
                    name,
                    file: rel.to_string(),
                    line: header_line,
                    has_self,
                    params,
                    body: body.clone(),
                    in_test,
                    entry: attached.entry,
                    nonblocking: attached.nonblocking,
                    trusted: attached.trusted,
                    source: attached.source,
                });
                pending_attr_test = false;
                // Continue scanning *inside* the body too (nested fns),
                // so do not skip over it.
                i = if body.is_empty() { k + 1 } else { body.start };
                continue;
            }
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "struct" | "enum" | "trait" | "type" | "static" | "const" | "union"
                ) =>
            {
                // A non-fn item consumes any pending #[test]-ish attr;
                // visibility/qualifier keywords (pub, unsafe, async…)
                // fall through and keep it pending for the real item.
                pending_attr_test = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    ParsedFile {
        rel: rel.to_string(),
        crate_name: crate_name.to_string(),
        tokens,
        anns,
        funcs,
        uses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse("test.rs", "test_crate", &[], lex(src))
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let p = parse_src(
            "fn free(a: u32, b: &str) -> bool { a > 0 }\n\
             struct S;\n\
             impl S { fn method(&self, x: usize) {} }\n\
             impl Clone for S { fn clone(&self) -> S { S } }",
        );
        let names: Vec<(String, Option<String>)> = p
            .funcs
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("S".into())),
                ("clone".into(), Some("S".into())),
            ]
        );
        assert_eq!(p.funcs[0].params, vec!["a", "b"]);
        assert!(!p.funcs[0].has_self);
        assert!(p.funcs[1].has_self);
        assert_eq!(p.funcs[1].params, vec!["x"]);
    }

    #[test]
    fn cfg_test_mods_and_test_fns_are_marked() {
        let p = parse_src(
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn case() {}\n}",
        );
        let by_name = |n: &str| p.funcs.iter().find(|f| f.name == n).map(|f| f.in_test);
        assert_eq!(by_name("prod"), Some(false));
        assert_eq!(by_name("helper"), Some(true));
        assert_eq!(by_name("case"), Some(true));
    }

    #[test]
    fn nested_fns_are_found() {
        let p = parse_src("fn outer() { fn inner(q: u8) {} inner(1); }");
        assert_eq!(p.funcs.len(), 2);
        assert_eq!(p.funcs[1].name, "inner");
    }

    #[test]
    fn annotations_attach_to_next_fn() {
        let marker = crate::lexer::MARKER;
        let p = parse_src(&format!(
            "// {marker} no_panic_zone\nfn entry() {{}}\n\
             // {marker} trusted(total: fixed-size)\nfn safe() {{}}\nfn plain() {{}}"
        ));
        assert!(p.funcs[0].entry);
        assert_eq!(p.funcs[1].trusted.as_deref(), Some("total: fixed-size"));
        assert!(!p.funcs[2].entry);
        assert!(p.funcs[2].trusted.is_none());
    }

    #[test]
    fn use_map_handles_braces_and_as() {
        let p = parse_src("use mh_compress::{compress, decompress as dec};\nuse std::io::Read;");
        assert_eq!(
            p.uses.get("dec"),
            Some(&vec!["mh_compress".to_string(), "decompress".to_string()])
        );
        assert_eq!(
            p.uses.get("compress"),
            Some(&vec!["mh_compress".to_string(), "compress".to_string()])
        );
        assert_eq!(
            p.uses.get("Read"),
            Some(&vec![
                "std".to_string(),
                "io".to_string(),
                "Read".to_string()
            ])
        );
    }

    #[test]
    fn inline_mod_paths_compose() {
        let p = parse(
            "x.rs",
            "c",
            &["filemod".into()],
            lex("mod inner { fn f() {} }"),
        );
        assert_eq!(p.funcs[0].module, vec!["filemod", "inner"]);
    }

    #[test]
    fn parser_total_on_unbalanced_input() {
        let _ = parse_src("fn broken( { ] } impl < fn");
    }
}
