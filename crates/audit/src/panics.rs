//! Pass A — panic reachability.
//!
//! Walks the call graph from every `no_panic_zone` entry and flags each
//! syntactic potential-panic site inside a reachable function:
//!
//! * **A001** `.unwrap()` / `.unwrap_err()`
//! * **A002** `.expect()` / `.expect_err()`
//! * **A003** panicking macro (`panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!`;
//!   `debug_assert*` is excluded — compiled out of release builds)
//! * **A004** indexing `expr[i]` and slice-bounds methods
//!   (`copy_from_slice`, `copy_within`, `split_at`, `split_at_mut`)
//! * **A005** range slicing `expr[a..b]` (bare `[..]` is total)
//! * **A006** integer `/` or `%` with a non-literal divisor, and
//!   `chunks`/`chunks_exact`/`windows`/`step_by` with a non-literal
//!   (possibly zero) argument
//!
//! Arithmetic overflow is *not* pass A's concern (release builds wrap);
//! attacker-influenced length arithmetic is pass B's A009.

use crate::graph::Graph;
use crate::lexer::{Tok, Token};
use crate::parser::matching_close;
use crate::report::Finding;
use std::collections::BTreeMap;

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

const SLICE_BOUND_METHODS: &[&str] =
    &["copy_from_slice", "copy_within", "split_at", "split_at_mut"];

const ZERO_STEP_METHODS: &[&str] = &["chunks", "chunks_exact", "windows", "step_by"];

/// Idents that, preceding `[`, mean the bracket is *not* indexing.
const NON_EXPR_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "if", "while", "match", "return", "break", "impl", "for", "where", "as",
    "pub", "fn", "use", "mod", "move", "ref", "static", "const", "type", "else", "enum", "struct",
    "trait", "dyn", "box", "unsafe", "async", "await", "loop", "continue", "crate", "super",
];

/// Does the token end an expression (so a following `[` indexes it)?
pub(crate) fn expr_ending(tok: &Tok) -> bool {
    match tok {
        Tok::Ident(s) => !NON_EXPR_KEYWORDS.contains(&s.as_str()),
        Tok::Close(')') | Tok::Close(']') => true,
        Tok::Num { .. } | Tok::Str => true,
        Tok::Punct("?") => true,
        _ => false,
    }
}

/// Classify a bracket group starting at `open` (index of `[`):
/// `Some(true)` → range slice, `Some(false)` → plain index,
/// `None` → total (`[..]`).
fn bracket_kind(tokens: &[Token], open: usize) -> Option<bool> {
    let close = matching_close(tokens, open);
    let inner = &tokens[open + 1..close.min(tokens.len())];
    if inner.len() == 1 && matches!(inner[0].tok, Tok::Punct("..")) {
        return None;
    }
    let mut depth = 0usize;
    let mut has_range = false;
    for t in inner {
        match &t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct("..") | Tok::Punct("..=") if depth == 0 => has_range = true,
            _ => {}
        }
    }
    Some(has_range)
}

/// Is the divisor starting at token `i` a literal (possibly negated or
/// parenthesized literal) or float-typed expression (no divide panic)?
fn divisor_is_safe(tokens: &[Token], mut i: usize) -> bool {
    // Skip leading `-` and `(`.
    while matches!(
        tokens.get(i).map(|t| &t.tok),
        Some(Tok::Punct("-")) | Some(Tok::Open('('))
    ) {
        i += 1;
    }
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Num { int }) => {
            // A literal divisor: safe unless it is the literal where a
            // zero would be silly-but-possible; treat all numeric
            // literals as safe (a hardcoded `/ 0` fails to compile
            // anyway via const eval).
            let _ = int;
            true
        }
        // A SCREAMING_CASE named constant: a const-zero divisor is a
        // compile error (`unconditional_panic` is deny-by-default), so
        // `x % MOD` cannot panic at runtime.
        Some(Tok::Ident(s))
            if s.len() >= 2
                && s.chars()
                    .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                && s.chars().any(|c| c.is_ascii_uppercase()) =>
        {
            true
        }
        _ => {
            // `x / y as f32` / f64 → float division, total.
            for k in 0..4usize {
                if let Some(Tok::Ident(s)) = tokens.get(i + k).map(|t| &t.tok) {
                    if s == "f32" || s == "f64" {
                        return true;
                    }
                }
            }
            false
        }
    }
}

/// Scan one audited function body for panic sites.
pub fn scan_body(tokens: &[Token], body: std::ops::Range<usize>, ctx: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let end = body.end.min(tokens.len());
    let mut i = body.start;
    while i < end {
        let line = tokens[i].line;
        match &tokens[i].tok {
            Tok::Ident(name) => {
                let next_is = |p: &str| matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(q)) if *q == p);
                let next_open_paren =
                    matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Open('(')));
                let prev_dot =
                    i > 0 && matches!(tokens.get(i - 1).map(|t| &t.tok), Some(Tok::Punct(".")));
                if next_is("!") && PANIC_MACROS.contains(&name.as_str()) {
                    out.push(Finding::new(
                        line,
                        "A003",
                        format!("panicking macro `{name}!` reachable {ctx}"),
                    ));
                } else if next_open_paren && (name == "unwrap" || name == "unwrap_err") {
                    out.push(Finding::new(
                        line,
                        "A001",
                        format!("`.{name}()` reachable {ctx}"),
                    ));
                } else if next_open_paren && (name == "expect" || name == "expect_err") {
                    out.push(Finding::new(
                        line,
                        "A002",
                        format!("`.{name}()` reachable {ctx}"),
                    ));
                } else if next_open_paren
                    && prev_dot
                    && SLICE_BOUND_METHODS.contains(&name.as_str())
                {
                    out.push(Finding::new(
                        line,
                        "A004",
                        format!("slice-bounds method `.{name}()` reachable {ctx}"),
                    ));
                } else if next_open_paren
                    && prev_dot
                    && ZERO_STEP_METHODS.contains(&name.as_str())
                    && !matches!(
                        tokens.get(i + 2).map(|t| &t.tok),
                        Some(Tok::Num { int: true })
                    )
                {
                    out.push(Finding::new(
                        line,
                        "A006",
                        format!("`.{name}(n)` with non-literal n (panics when n == 0) {ctx}"),
                    ));
                }
                i += 1;
            }
            Tok::Open('[') => {
                let indexing = i > 0 && expr_ending(&tokens[i - 1].tok);
                if indexing {
                    match bracket_kind(tokens, i) {
                        Some(true) => out.push(Finding::new(
                            line,
                            "A005",
                            format!("range slice `expr[a..b]` reachable {ctx}"),
                        )),
                        Some(false) => out.push(Finding::new(
                            line,
                            "A004",
                            format!("indexing `expr[i]` reachable {ctx}"),
                        )),
                        None => {}
                    }
                }
                i += 1;
            }
            Tok::Punct(p @ ("/" | "%" | "/=" | "%=")) => {
                let lhs_expr = i > 0 && expr_ending(&tokens[i - 1].tok);
                if lhs_expr && !divisor_is_safe(tokens, i + 1) {
                    out.push(Finding::new(
                        line,
                        "A006",
                        format!("integer `{p}` with non-literal divisor (div-by-zero panic) {ctx}"),
                    ));
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Run pass A over the graph; returns findings keyed by file index.
pub fn run(graph: &Graph, tokens_of_file: &[&[Token]]) -> BTreeMap<usize, Vec<Finding>> {
    let (audited, parents) = graph.reachable();
    let mut out: BTreeMap<usize, Vec<Finding>> = BTreeMap::new();
    for id in audited {
        let f = &graph.funcs[id];
        if f.body.is_empty() {
            continue;
        }
        let entry = graph.witness_entry(&parents, id);
        let ctx = if entry == id {
            format!("in entry `{}`", f.qualified())
        } else {
            format!(
                "in `{}` (reachable from entry `{}`)",
                f.qualified(),
                graph.funcs[entry].qualified()
            )
        };
        let fi = graph.file_of[id];
        let findings = scan_body(tokens_of_file[fi], f.body.clone(), &ctx);
        out.entry(fi).or_default().extend(findings);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn codes(src: &str) -> Vec<&'static str> {
        let lf = lex(src);
        let n = lf.tokens.len();
        scan_body(&lf.tokens, 0..n, "in test")
            .iter()
            .map(|f| f.code)
            .collect()
    }

    #[test]
    fn unwrap_and_expect() {
        assert_eq!(codes("x.unwrap()"), vec!["A001"]);
        assert_eq!(codes("x.unwrap_err()"), vec!["A001"]);
        assert_eq!(codes("x.expect(\"msg\")"), vec!["A002"]);
        assert!(codes("x.unwrap_or(0)").is_empty());
        assert!(codes("x.unwrap_or_else(|| 0)").is_empty());
        assert!(codes("x.unwrap_or_default()").is_empty());
    }

    #[test]
    fn macros() {
        assert_eq!(codes("panic!(\"boom\")"), vec!["A003"]);
        assert_eq!(codes("unreachable!()"), vec!["A003"]);
        assert_eq!(codes("assert_eq!(a, b)"), vec!["A003"]);
        assert!(codes("debug_assert!(a)").is_empty());
        assert!(codes("println!(\"{}\", x)").is_empty());
    }

    #[test]
    fn indexing_and_slicing() {
        assert_eq!(codes("v[i]"), vec!["A004"]);
        assert_eq!(codes("v[a..b]"), vec!["A005"]);
        assert_eq!(codes("v[..n]"), vec!["A005"]);
        assert!(codes("v[..]").is_empty());
        assert!(codes("let a = [0u8; 4];").is_empty());
        assert!(codes("fn f(x: [u8; 4]) {}").is_empty());
        assert!(codes("#[derive(Debug)]").is_empty());
        assert!(codes("vec![1, 2]").is_empty());
        assert!(codes("let v: &[u8] = b;").is_empty());
    }

    #[test]
    fn slice_bound_methods() {
        assert_eq!(codes("a.copy_from_slice(b)"), vec!["A004"]);
        assert_eq!(codes("a.split_at(n)"), vec!["A004"]);
    }

    #[test]
    fn division() {
        assert_eq!(codes("a / b"), vec!["A006"]);
        assert_eq!(codes("a % n"), vec!["A006"]);
        assert!(codes("a / 2").is_empty());
        assert!(codes("a % 16").is_empty());
        assert!(codes("x / count as f32").is_empty());
        assert!(codes("1.0 / scale as f64").is_empty());
        assert_eq!(codes("data.chunks(n)"), vec!["A006"]);
        assert!(codes("data.chunks(64)").is_empty());
    }
}
