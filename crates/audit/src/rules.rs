//! Token-level rules — the absorbed `mh-lint` sync-facade lint.
//!
//! These run over the *real token stream* (comments and string literals
//! never tokenize), which retires the old textual lint's entire
//! false-positive surface: prose mentioning `std::sync::Mutex`, string
//! literals containing `Instant::now`, and so on are invisible here.
//!
//! * **A101** `parking_lot::*` — the vendored stub only re-exports std;
//!   use `mh_par::sync::{Mutex, RwLock}`.
//! * **A102** `std::sync::{Mutex, RwLock, Condvar}` (direct path or
//!   brace import) — use the facade's equivalents.
//! * **A103** `std::thread::{spawn, scope}` — use
//!   `mh_par::sync::thread::{spawn, scope}`.
//! * **A104** `Instant::now` — use `mh_par::sync::now()`.
//!
//! Paths that *implement* the facade are allowlisted (see
//! [`facade_allowlisted`]).

use crate::lexer::{Tok, Token};
use crate::report::Finding;

const SYNC_PRIMS: &[&str] = &["Mutex", "RwLock", "Condvar"];
const THREAD_PRIMS: &[&str] = &["spawn", "scope"];

/// True for paths that implement the facade and may name raw
/// primitives: the instrumented primitives themselves, the std backend,
/// the below-mh-par observability shim, and the auditor (pattern tables
/// and fixtures).
pub fn facade_allowlisted(rel: &str) -> bool {
    let rel = rel.replace('\\', "/");
    rel.starts_with("crates/model/")
        || rel == "crates/par/src/sync.rs"
        || rel.starts_with("crates/obs/")
        || rel.starts_with("crates/audit/")
        || rel.starts_with("tools/audit/")
}

fn ident_is(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(s)) if s == name)
}

fn punct_is(tokens: &[Token], i: usize, p: &str) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(q)) if *q == p)
}

/// Scan one file's token stream.
pub fn scan(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        match name.as_str() {
            "parking_lot" => out.push(Finding::new(
                t.line,
                "A101",
                "parking_lot primitive; use mh_par::sync::{Mutex, RwLock}".to_string(),
            )),
            "std" if punct_is(tokens, i + 1, "::") => {
                let module = match tokens.get(i + 2).map(|t| &t.tok) {
                    Some(Tok::Ident(m)) => m.as_str(),
                    _ => continue,
                };
                if !punct_is(tokens, i + 3, "::") {
                    continue;
                }
                let (prims, code, hint): (&[&str], &'static str, &str) = match module {
                    "sync" => (SYNC_PRIMS, "A102", "use mh_par::sync"),
                    "thread" => (THREAD_PRIMS, "A103", "use mh_par::sync::thread"),
                    _ => continue,
                };
                match tokens.get(i + 4).map(|t| &t.tok) {
                    Some(Tok::Ident(p)) if prims.contains(&p.as_str()) => {
                        out.push(Finding::new(
                            t.line,
                            code,
                            format!("raw std::{module}::{p}; {hint}::{p}"),
                        ));
                    }
                    Some(Tok::Open('{')) => {
                        // Brace import: flag each named primitive.
                        let close = crate::parser::matching_close(tokens, i + 4);
                        for tt in &tokens[i + 5..close.min(tokens.len())] {
                            if let Tok::Ident(p) = &tt.tok {
                                if prims.contains(&p.as_str()) {
                                    out.push(Finding::new(
                                        tt.line,
                                        code,
                                        format!("raw std::{module}::{p}; {hint}::{p}"),
                                    ));
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            "Instant" if punct_is(tokens, i + 1, "::") && ident_is(tokens, i + 2, "now") => {
                out.push(Finding::new(
                    t.line,
                    "A104",
                    "direct Instant::now; use mh_par::sync::now()".to_string(),
                ));
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn codes(src: &str) -> Vec<&'static str> {
        scan(&lex(src).tokens).iter().map(|f| f.code).collect()
    }

    #[test]
    fn direct_paths_flag() {
        assert_eq!(codes("let m = parking_lot::Mutex::new(0);"), vec!["A101"]);
        assert_eq!(codes("let m = std::sync::Mutex::new(0);"), vec!["A102"]);
        assert_eq!(codes("let c = std::sync::Condvar::new();"), vec!["A102"]);
        assert_eq!(codes("std::thread::spawn(|| {});"), vec!["A103"]);
        assert_eq!(codes("let t = Instant::now();"), vec!["A104"]);
        assert_eq!(codes("x.then(std::time::Instant::now)"), vec!["A104"]);
    }

    #[test]
    fn brace_imports_flag_each_prim() {
        assert_eq!(codes("use std::sync::{Arc, Mutex};"), vec!["A102"]);
        assert_eq!(
            codes("use std::sync::{Condvar, Mutex, OnceLock};"),
            vec!["A102", "A102"]
        );
        assert_eq!(codes("use std::thread::{sleep, spawn};"), vec!["A103"]);
        assert!(codes("use std::sync::{Arc, OnceLock};").is_empty());
    }

    #[test]
    fn harmless_usage_allowed() {
        assert!(codes("std::thread::sleep(d);").is_empty());
        assert!(codes("let id = std::thread::current().id();").is_empty());
        assert!(codes("let t: Instant = mh_par::sync::now();").is_empty());
        assert!(codes("use std::sync::atomic::AtomicU64;").is_empty());
    }

    #[test]
    fn comments_and_strings_never_flag() {
        assert!(codes("// previously parking_lot::Mutex").is_empty());
        assert!(codes("//! pairs with std::sync::Condvar semantics").is_empty());
        assert!(codes("let s = \"std::sync::Mutex\";").is_empty());
        assert!(codes("let x = 1; // not Instant::now()").is_empty());
    }

    #[test]
    fn allowlist_covers_facade_layers_only() {
        assert!(facade_allowlisted("crates/model/src/sync.rs"));
        assert!(facade_allowlisted("crates/par/src/sync.rs"));
        assert!(facade_allowlisted("crates/obs/src/shim.rs"));
        assert!(facade_allowlisted("tools/audit/src/main.rs"));
        assert!(facade_allowlisted("crates/audit/src/rules.rs"));
        assert!(!facade_allowlisted("crates/par/src/lib.rs"));
        assert!(!facade_allowlisted("crates/hub/src/server.rs"));
        assert!(!facade_allowlisted("src/bin/modelhub.rs"));
    }
}
