//! Over-approximate workspace call graph.
//!
//! Call sites are extracted from each function's body token range and
//! resolved by name (plus impl type and arity when available). The
//! resolution is deliberately over-approximate — a `.method(` call with
//! an unknown receiver links to *every* workspace function of that name
//! — with one pressure valve: a "std shadow" list of ubiquitous
//! container/iterator method names that resolve to the standard library
//! (assumed total) unless the call is type- or path-qualified. Without
//! it, every `.push(` in the workspace would link to `BoundedQueue::push`
//! and the reachable set would be the whole workspace.

use crate::lexer::{Tok, Token};
use crate::parser::{matching_close, Func, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names resolved to std (assumed total) when called with
/// `.name(` receiver syntax. Type-qualified calls (`Type::name(`) still
/// resolve precisely. `read`/`write`-like names are deliberately absent
/// so workspace codecs stay linked.
const STD_SHADOW: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "borrow",
    "borrow_mut",
    "bytes",
    "capacity",
    "chain",
    "chars",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "extend_from_slice",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "partition",
    "peek",
    "peekable",
    "pop",
    "position",
    "pow",
    "product",
    "push",
    "push_str",
    "remove",
    "repeat",
    "replace",
    "replacen",
    "resize",
    "retain",
    "rev",
    "rfind",
    "rposition",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "splitn",
    "split",
    "split_whitespace",
    "starts_with",
    "step_by",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "take",
    "take_while",
    "to_ascii_lowercase",
    "to_le_bytes",
    "to_be_bytes",
    "to_lowercase",
    "to_owned",
    "to_string",
    "to_uppercase",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "trim_end_matches",
    "trim_start_matches",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "zip",
    "rsplitn",
    "ends_with",
    "parse",
    "finish",
    "fmt",
    "from_str",
    "saturating_sub",
    "saturating_add",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "checked_rem",
    "leading_zeros",
    "min_by",
    "rotate_left",
    "rotate_right",
    "swap",
    "swap_remove",
    "reserve",
    "with_capacity",
    "is_ascii_digit",
    "is_ascii_hexdigit",
    "is_ascii_alphanumeric",
    "is_char_boundary",
    "char_indices",
    "chunks",
    "chunks_exact",
    "rchunks",
    "concat",
    "into_inner",
    "take_while",
];

/// Keywords that never start a call even when followed by `(`.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "let", "mut", "ref", "move", "loop",
    "else", "fn", "impl", "where", "pub", "use", "mod", "struct", "enum", "trait", "type",
    "static", "const", "unsafe", "async", "await", "dyn", "box", "break", "continue", "crate",
    "super", "Some", "Ok", "Err", "None",
];

/// A call site found in a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Caller function index.
    pub caller: usize,
    /// Called name.
    pub name: String,
    /// Qualifying path segments before the name (`a::b::name(` → [a,b]);
    /// empty for bare and `.method(` calls.
    pub path: Vec<String>,
    /// `.name(` receiver-method syntax.
    pub is_method: bool,
    /// Argument count at the call (None when unparsable/closure-laden).
    pub nargs: Option<usize>,
    pub line: u32,
    /// Token index of the called name (orders call events for the
    /// guard-held-region analysis).
    pub idx: usize,
}

/// The resolved workspace graph.
pub struct Graph {
    /// All functions, indexed across all files.
    pub funcs: Vec<Func>,
    /// file index of each function (parallel to `funcs`).
    pub file_of: Vec<usize>,
    /// Adjacency: edges[f] = callee function indices (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    /// Call sites per function (for diagnostics).
    pub calls: Vec<Vec<CallSite>>,
}

fn count_args(tokens: &[Token], open: usize) -> Option<usize> {
    let close = matching_close(tokens, open);
    if close <= open + 1 {
        return Some(0);
    }
    let mut depth = 0usize;
    let mut commas = 0usize;
    for t in &tokens[open + 1..close] {
        match &t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct(",") if depth == 0 => commas += 1,
            Tok::Punct("|") => return None, // closure arg: skip arity filter
            _ => {}
        }
    }
    Some(commas + 1)
}

/// Extract call sites from a function body token range.
pub fn extract_calls(
    tokens: &[Token],
    caller: usize,
    body: std::ops::Range<usize>,
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end.min(tokens.len()) {
        let Tok::Ident(name) = &tokens[i].tok else {
            i += 1;
            continue;
        };
        if NON_CALL_IDENTS.contains(&name.as_str()) {
            i += 1;
            continue;
        }
        // Macro invocation `name!(`/`name![`/`name!{` — not a call edge
        // (panic macros are handled by the panic pass; arguments are
        // scanned for calls naturally by this linear walk).
        if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct("!"))) {
            i += 2;
            continue;
        }
        // Optional turbofish: name::<...>(
        let mut after = i + 1;
        if matches!(tokens.get(after).map(|t| &t.tok), Some(Tok::Punct("::")))
            && matches!(tokens.get(after + 1).map(|t| &t.tok), Some(Tok::Punct("<")))
        {
            let mut depth = 0i32;
            let mut j = after + 1;
            while let Some(t) = tokens.get(j) {
                match t.tok {
                    Tok::Punct("<") => depth += 1,
                    Tok::Punct(">") => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    Tok::Punct(">>") => {
                        depth -= 2;
                        if depth <= 0 {
                            break;
                        }
                    }
                    Tok::Punct(";") | Tok::Open('{') => break,
                    _ => {}
                }
                j += 1;
            }
            after = j + 1;
        }
        if !matches!(tokens.get(after).map(|t| &t.tok), Some(Tok::Open('('))) {
            i += 1;
            continue;
        }
        // Walk back the qualification.
        let mut path: Vec<String> = Vec::new();
        let mut is_method = false;
        let mut back = i;
        if matches!(
            tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
            Some(Tok::Punct("."))
        ) && i >= 1
        {
            is_method = true;
        } else {
            while back >= 2
                && matches!(tokens.get(back - 1).map(|t| &t.tok), Some(Tok::Punct("::")))
            {
                if let Some(Tok::Ident(seg)) = tokens.get(back - 2).map(|t| &t.tok) {
                    path.insert(0, seg.clone());
                    back -= 2;
                } else {
                    break;
                }
            }
        }
        let nargs = count_args(tokens, after);
        out.push(CallSite {
            caller,
            name: name.clone(),
            path,
            is_method,
            nargs,
            line: tokens[i].line,
            idx: i,
        });
        i = after + 1;
    }
    out
}

impl Graph {
    /// Build the graph from parsed files.
    pub fn build(files: &[ParsedFile]) -> Graph {
        let mut funcs: Vec<Func> = Vec::new();
        let mut file_of: Vec<usize> = Vec::new();
        for (fi, pf) in files.iter().enumerate() {
            // The workspace's own verified infrastructure — the sync
            // facade, the model-checker runtime it bridges into, the obs
            // layer, and the auditor itself — is an implicit trust
            // boundary: reachable, but neither scanned nor expanded.
            // Without this, every facade `.lock()` would drag the whole
            // checker runtime into each entry's audited set.
            let infra = crate::rules::facade_allowlisted(&pf.rel);
            for f in &pf.funcs {
                let mut f = f.clone();
                if infra && f.trusted.is_none() {
                    f.trusted = Some("workspace infrastructure layer".to_string());
                }
                funcs.push(f);
                file_of.push(fi);
            }
        }
        // Name index: name → func ids; type-method index: (type, name).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in funcs.iter().enumerate() {
            if f.in_test {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push(id);
            if let Some(t) = &f.impl_type {
                by_type_method
                    .entry((t.as_str(), f.name.as_str()))
                    .or_default()
                    .push(id);
            }
        }
        let crate_names: BTreeSet<&str> = files.iter().map(|pf| pf.crate_name.as_str()).collect();

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); funcs.len()];
        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); funcs.len()];
        for (id, f) in funcs.iter().enumerate() {
            if f.in_test || f.body.is_empty() {
                continue;
            }
            let pf = &files[file_of[id]];
            let sites = extract_calls(&pf.tokens, id, f.body.clone());
            for site in &sites {
                let mut candidates: Vec<usize>;
                if site.is_method {
                    if STD_SHADOW.contains(&site.name.as_str()) {
                        continue; // std container/iterator method
                    }
                    candidates = by_name.get(site.name.as_str()).cloned().unwrap_or_default();
                    // Receiver methods must actually take self.
                    candidates.retain(|&c| funcs[c].has_self);
                } else if site.path.is_empty() {
                    // Bare call: use-alias first, then same-crate name.
                    if let Some(full) = pf.uses.get(&site.name) {
                        candidates = resolve_path(
                            full,
                            &site.name,
                            f,
                            &by_name,
                            &by_type_method,
                            &crate_names,
                            &funcs,
                        );
                    } else {
                        candidates = by_name
                            .get(site.name.as_str())
                            .map(|v| {
                                v.iter()
                                    .copied()
                                    .filter(|&c| funcs[c].crate_name == f.crate_name)
                                    .collect()
                            })
                            .unwrap_or_default();
                    }
                } else {
                    // Qualified call a::b::name( or Type::name(.
                    let mut full: Vec<String> = Vec::new();
                    if let Some(first) = site.path.first() {
                        if let Some(expansion) = pf.uses.get(first) {
                            full.extend(expansion.iter().cloned());
                            full.extend(site.path.iter().skip(1).cloned());
                        } else {
                            full.extend(site.path.iter().cloned());
                        }
                    }
                    full.push(site.name.clone());
                    candidates = resolve_path(
                        &full,
                        &site.name,
                        f,
                        &by_name,
                        &by_type_method,
                        &crate_names,
                        &funcs,
                    );
                }
                // Arity filter (skipped for closure-laden calls): keep
                // candidates whose param count matches. For receiver
                // methods a known arity with zero matches means the call
                // is a std trait method that merely shares a workspace
                // name (`stream.write(buf)` vs a 2-arg codec `write`) —
                // link nowhere rather than everywhere. Path-qualified
                // calls keep the conservative keep-all fallback, since
                // their resolution is already precise.
                if let Some(n) = site.nargs {
                    let matching: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| funcs[c].params.len() == n)
                        .collect();
                    if !matching.is_empty() || site.is_method {
                        candidates = matching;
                    }
                }
                for c in candidates {
                    if c != id {
                        edges[id].push(c);
                    }
                }
            }
            calls[id] = sites;
        }
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        Graph {
            funcs,
            file_of,
            edges,
            calls,
        }
    }

    /// BFS from `no_panic_zone` entry functions; `trusted` functions
    /// terminate the walk (they are reachable but neither scanned nor
    /// expanded). Returns (reachable-and-audited ids, witness parents).
    pub fn reachable(&self) -> (Vec<usize>, BTreeMap<usize, usize>) {
        let entries: Vec<usize> = (0..self.funcs.len())
            .filter(|&i| self.funcs[i].entry && !self.funcs[i].in_test)
            .collect();
        self.reachable_from(entries)
    }

    /// BFS from `nonblocking_zone` entry functions, same boundary rules.
    pub fn reachable_nonblocking(&self) -> (Vec<usize>, BTreeMap<usize, usize>) {
        let entries: Vec<usize> = (0..self.funcs.len())
            .filter(|&i| self.funcs[i].nonblocking && !self.funcs[i].in_test)
            .collect();
        self.reachable_from(entries)
    }

    /// BFS from the given entry set; `trusted` functions terminate the
    /// walk (reachable but neither scanned nor expanded).
    pub fn reachable_from(&self, mut entries: Vec<usize>) -> (Vec<usize>, BTreeMap<usize, usize>) {
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        entries.sort_unstable();
        for e in entries {
            if seen.insert(e) {
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            if self.funcs[u].trusted.is_some() {
                continue; // boundary: not expanded
            }
            for &v in &self.edges[u] {
                if self.funcs[v].in_test {
                    continue;
                }
                if seen.insert(v) {
                    parent.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        let audited: Vec<usize> = seen
            .into_iter()
            .filter(|&i| self.funcs[i].trusted.is_none())
            .collect();
        (audited, parent)
    }

    /// The entry an audited function is reachable from (via parents).
    pub fn witness_entry(&self, parent: &BTreeMap<usize, usize>, mut id: usize) -> usize {
        let mut hops = 0usize;
        while let Some(&p) = parent.get(&id) {
            id = p;
            hops += 1;
            if hops > self.funcs.len() {
                break;
            }
        }
        id
    }
}

/// Resolve a full path (`[mh_hub, protocol, parse_manifest]` or
/// `[Type, method]` or `[self/crate/super.., name]`) to candidates.
fn resolve_path(
    full: &[String],
    name: &str,
    caller: &Func,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_type_method: &BTreeMap<(&str, &str), Vec<usize>>,
    crate_names: &BTreeSet<&str>,
    funcs: &[Func],
) -> Vec<usize> {
    if full.len() < 2 {
        return by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&c| funcs[c].crate_name == caller.crate_name)
                    .collect()
            })
            .unwrap_or_default();
    }
    let first = full[0].as_str();
    let qualifier = full[full.len() - 2].as_str();
    // `Type::method` or `Self::method` — the segment right before the
    // name, when it looks like a type (capitalized), selects the impl.
    let type_seg = if qualifier == "Self" {
        caller.impl_type.as_deref()
    } else if qualifier.chars().next().is_some_and(|c| c.is_uppercase()) {
        Some(qualifier)
    } else {
        None
    };
    if let Some(t) = type_seg {
        return by_type_method.get(&(t, name)).cloned().unwrap_or_default();
    }
    if first == "std" || first == "core" || first == "alloc" {
        return Vec::new();
    }
    // Crate-qualified: restrict by crate; module segments must be a
    // subsequence-suffix match of the function's module path.
    let in_crate: Option<&str> = if crate_names.contains(first) {
        Some(first)
    } else if first == "crate" || first == "self" || first == "super" {
        Some(caller.crate_name.as_str())
    } else {
        None
    };
    let mods: Vec<&str> = full[..full.len() - 1]
        .iter()
        .map(String::as_str)
        .filter(|s| {
            !crate_names.contains(s)
                && !matches!(*s, "crate" | "self" | "super")
                && !s.chars().next().is_some_and(|c| c.is_uppercase())
        })
        .collect();
    by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&c| {
                    let f = &funcs[c];
                    if let Some(cr) = in_crate {
                        if f.crate_name != cr {
                            return false;
                        }
                    }
                    mods.iter().all(|m| f.module.iter().any(|fm| fm == m))
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn graph_of(srcs: &[(&str, &str, &str)]) -> Graph {
        // (rel, crate, src)
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(rel, krate, src)| parse(rel, krate, &[], lex(src)))
            .collect();
        Graph::build(&files)
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.funcs.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn bare_calls_link_within_crate() {
        let g = graph_of(&[("a.rs", "c1", "fn a() { b(); } fn b() {}")]);
        assert_eq!(g.edges[idx(&g, "a")], vec![idx(&g, "b")]);
    }

    #[test]
    fn std_shadow_methods_do_not_link() {
        let g = graph_of(&[(
            "a.rs",
            "c1",
            "struct Q; impl Q { fn push(&self, x: u32) {} }\n\
             fn a(v: &mut Vec<u32>) { v.push(1); }",
        )]);
        assert!(g.edges[idx(&g, "a")].is_empty());
    }

    #[test]
    fn non_shadow_methods_link_by_name() {
        let g = graph_of(&[(
            "a.rs",
            "c1",
            "struct Q; impl Q { fn enqueue(&self, x: u32) {} }\n\
             fn a(q: &Q) { q.enqueue(1); }",
        )]);
        assert_eq!(g.edges[idx(&g, "a")], vec![idx(&g, "enqueue")]);
    }

    #[test]
    fn type_qualified_calls_resolve_precisely() {
        let g = graph_of(&[(
            "a.rs",
            "c1",
            "struct A; struct B;\n\
             impl A { fn go() {} }\n\
             impl B { fn go() {} }\n\
             fn main2() { A::go(); }",
        )]);
        let callees = &g.edges[idx(&g, "main2")];
        assert_eq!(callees.len(), 1);
        assert_eq!(g.funcs[callees[0]].impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn cross_crate_via_use() {
        let g = graph_of(&[
            ("c2/lib.rs", "c2", "pub fn helper(x: u32) {}"),
            ("c1/lib.rs", "c1", "use c2::helper;\nfn a() { helper(3); }"),
        ]);
        assert_eq!(g.edges[idx(&g, "a")], vec![idx(&g, "helper")]);
    }

    #[test]
    fn arity_filter_prunes() {
        let g = graph_of(&[(
            "a.rs",
            "c1",
            "struct A; struct B;\n\
             impl A { fn go(&self, x: u32) {} }\n\
             impl B { fn go(&self, x: u32, y: u32) {} }\n\
             fn f(a: &A) { a.go(1); }",
        )]);
        let callees = &g.edges[idx(&g, "f")];
        assert_eq!(callees.len(), 1);
        assert_eq!(g.funcs[callees[0]].impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn reachability_stops_at_trusted() {
        let marker = crate::lexer::MARKER;
        let src = format!(
            "// {marker} no_panic_zone\nfn entry() {{ mid(); }}\n\
             // {marker} trusted(total)\nfn mid() {{ deep(); }}\nfn deep() {{}}"
        );
        let g = graph_of(&[("a.rs", "c1", &src)]);
        let (audited, _) = g.reachable();
        let names: Vec<&str> = audited.iter().map(|&i| g.funcs[i].name.as_str()).collect();
        assert_eq!(names, vec!["entry"]);
    }

    #[test]
    fn test_code_is_excluded() {
        let marker = crate::lexer::MARKER;
        let src = format!(
            "// {marker} no_panic_zone\nfn entry() {{ helper(); }}\n\
             #[cfg(test)]\nmod tests {{ fn helper() {{ }} }}"
        );
        let g = graph_of(&[("a.rs", "c1", &src)]);
        let (audited, _) = g.reachable();
        assert_eq!(audited.len(), 1);
    }

    #[test]
    fn macro_names_are_not_calls() {
        let g = graph_of(&[(
            "a.rs",
            "c1",
            "fn panic_helper() {} fn a() { println!(\"{}\", 1); }",
        )]);
        assert!(g.edges[idx(&g, "a")].is_empty());
    }
}
