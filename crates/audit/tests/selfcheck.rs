//! Negative self-check: every finding code has a fixture that makes it
//! fire exactly once, the clean fixture yields zero findings, and the
//! rendered report is byte-identical across runs.

use mh_audit::{audit_sources, SourceFile};
use std::path::PathBuf;

fn fixture(name: &str) -> SourceFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    SourceFile {
        rel: format!("fixtures/{name}"),
        crate_name: "fixture".into(),
        module: Vec::new(),
        text: std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display())),
    }
}

/// (fixture file, code expected to fire exactly once, waivers consumed).
const CASES: &[(&str, &str, usize)] = &[
    ("a001.rs", "A001", 0),
    ("a002.rs", "A002", 0),
    ("a003.rs", "A003", 0),
    ("a004.rs", "A004", 0),
    ("a005.rs", "A005", 0),
    ("a006.rs", "A006", 0),
    ("a007.rs", "A007", 0),
    // a008 waives the A004 that shares the taint sink's line.
    ("a008.rs", "A008", 1),
    ("a009.rs", "A009", 0),
    ("a010.rs", "A010", 0),
    ("a101.rs", "A101", 0),
    ("a102.rs", "A102", 0),
    ("a103.rs", "A103", 0),
    ("a104.rs", "A104", 0),
    ("r001.rs", "R001", 0),
    ("r002.rs", "R002", 0),
    ("r003.rs", "R003", 0),
    ("r004.rs", "R004", 0),
    ("r005.rs", "R005", 0),
    ("w001.rs", "W001", 0),
];

#[test]
fn each_code_fires_exactly_once() {
    for &(file, code, waived) in CASES {
        let r = audit_sources(&[fixture(file)]);
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert_eq!(
            codes,
            vec![code],
            "fixture {file} must fire exactly [{code}]; report:\n{}",
            r.render()
        );
        assert_eq!(r.waived, waived, "fixture {file} waiver count");
    }
}

#[test]
fn clean_fixture_is_clean() {
    let r = audit_sources(&[fixture("clean.rs")]);
    assert!(r.is_clean(), "clean fixture flagged:\n{}", r.render());
    assert_eq!(r.waived, 0);
    // The zone entry was actually audited, not skipped.
    assert_eq!(r.entries, vec!["fixture::entry"]);
}

#[test]
fn whole_corpus_report_is_deterministic() {
    let load = || {
        let mut sources: Vec<SourceFile> = CASES.iter().map(|&(f, _, _)| fixture(f)).collect();
        sources.push(fixture("clean.rs"));
        audit_sources(&sources).render()
    };
    let r1 = load();
    let r2 = load();
    assert_eq!(r1, r2);
    // All 20 codes present in the combined report.
    for &(_, code, _) in CASES {
        assert!(r1.contains(code), "combined report lost {code}:\n{r1}");
    }
}
