// Fixture: exactly one A101 — direct parking_lot primitive instead of
// the workspace sync facade.

fn helper() {
    let _m = parking_lot::Mutex::new(0);
}
