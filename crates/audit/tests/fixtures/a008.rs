// Fixture: exactly one A008 — an untrusted value used as an index. The
// accompanying A004 (the indexing itself) is waived so the taint finding
// stands alone.

// mh-audit: source(length decoded from the wire)
fn read_len(_buf: &[u8]) -> usize {
    0
}

// mh-audit: no_panic_zone
fn entry(buf: &[u8]) -> u8 {
    let n = read_len(buf);
    buf[n] // mh-audit: allow(A004, fixture isolates the taint finding)
}
