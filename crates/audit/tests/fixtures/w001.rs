//! W001: a waiver whose finding no longer exists is stale and must be
//! deleted — the ledger shrinks with the code it excuses.

fn tidy(values: &[u32]) -> u32 {
    let total = values.iter().sum(); // mh-audit: allow(A004, indexing was removed in a refactor)
    total
}
