// Fixture: exactly one A104 — direct Instant::now instead of the
// mockable clock.

fn helper() {
    let _t = Instant::now();
}
