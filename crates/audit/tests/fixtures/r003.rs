//! R003: two paths acquire the same pair of locks in opposite orders —
//! the classic ABBA deadlock shape, visible purely statically.

struct Pair {
    alpha: Shared,
    beta: Shared,
}

impl Pair {
    fn forward(&self) {
        let g1 = self.alpha.lock();
        let g2 = self.beta.lock();
        drop(g2);
        drop(g1);
    }

    fn backward(&self) {
        let g1 = self.beta.lock();
        let g2 = self.alpha.lock();
        drop(g2);
        drop(g1);
    }
}
