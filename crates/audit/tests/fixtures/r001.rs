//! R001: a blocking lock acquire is reachable in a nonblocking zone.

// mh-audit: nonblocking_zone
fn pump(state: &Shared) {
    let guard = state.lock();
    drop(guard);
}
