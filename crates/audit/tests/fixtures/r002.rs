//! R002: blocking socket I/O is transitively reachable in a
//! nonblocking zone (the seed sits one call away from the entry).

// mh-audit: nonblocking_zone
fn pump(stream: &mut Stream, buf: &mut [u8]) {
    poll_once(stream, buf);
}

fn poll_once(stream: &mut Stream, buf: &mut [u8]) {
    let n = stream.read(buf);
    let _ = n;
}
