//! R004: blocking file I/O while a mutex guard is held — every other
//! acquirer of `state` stalls behind the disk write.

struct Journal {
    state: Shared,
}

impl Journal {
    fn append(&self, path: &Path, line: &[u8]) {
        let guard = self.state.lock();
        std::fs::write(path, line);
        drop(guard);
    }
}
