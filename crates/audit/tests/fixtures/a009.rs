// Fixture: exactly one A009 — unchecked arithmetic on an untrusted
// length.

// mh-audit: source(length decoded from the wire)
fn read_len(_buf: &[u8]) -> usize {
    0
}

// mh-audit: no_panic_zone
fn entry(buf: &[u8]) {
    let n = read_len(buf);
    let _total = n * 4;
}
