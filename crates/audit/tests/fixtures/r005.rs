//! R005: joining a thread while a mutex guard is held — if the joined
//! worker ever needs `state`, both sides wait forever.

struct Pool {
    state: Shared,
}

impl Pool {
    fn shutdown(&self, worker: Handle) {
        let guard = self.state.lock();
        worker.join();
        drop(guard);
    }
}
