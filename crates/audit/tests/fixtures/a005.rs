// Fixture: exactly one A005 — range slicing in a no-panic zone.

// mh-audit: no_panic_zone
fn entry(v: &[u8]) -> &[u8] {
    &v[1..]
}
