// Fixture: exactly one A002 — `.expect()` reachable in a no-panic zone.

// mh-audit: no_panic_zone
fn entry(v: &[u8]) -> u8 {
    *v.first().expect("nonempty")
}
