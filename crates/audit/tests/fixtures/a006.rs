// Fixture: exactly one A006 — division by a non-literal divisor in a
// no-panic zone.

// mh-audit: no_panic_zone
fn entry(a: usize, b: usize) -> usize {
    a / b
}
