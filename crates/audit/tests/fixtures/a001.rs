// Fixture: exactly one A001 — `.unwrap()` reachable in a no-panic zone.

// mh-audit: no_panic_zone
fn entry(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
