// Fixture: exactly one A103 — direct std::thread::spawn instead of the
// workspace sync facade.

fn helper() {
    std::thread::spawn(|| {});
}
