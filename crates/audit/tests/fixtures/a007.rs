// Fixture: exactly one A007 — an untrusted length flows into
// `Vec::with_capacity` without a bound.

// mh-audit: source(length decoded from the wire)
fn read_len(_buf: &[u8]) -> usize {
    0
}

// mh-audit: no_panic_zone
fn entry(buf: &[u8]) {
    let n = read_len(buf);
    let _v: Vec<u8> = Vec::with_capacity(n);
}
