// Fixture: exactly one A010 — a waiver without a reason is itself a
// finding.

fn helper() {} // mh-audit: allow(A001)
