// Fixture: exactly one A003 — a panicking macro in a no-panic zone.

// mh-audit: no_panic_zone
fn entry(v: &[u8]) {
    if v.is_empty() {
        panic!("boom");
    }
}
