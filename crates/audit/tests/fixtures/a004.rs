// Fixture: exactly one A004 — direct indexing in a no-panic zone.

// mh-audit: no_panic_zone
fn entry(v: &[u8]) -> u8 {
    v[0]
}
