// Fixture: exactly one A102 — direct std::sync primitive instead of the
// workspace sync facade.

fn helper() {
    let _m = std::sync::Mutex::new(0);
}
