// Fixture: a hardened decoder in a no-panic zone — zero findings. Every
// access is `get()`-based, every slice bound comes from the data itself,
// and the only divisor is a literal.

// mh-audit: no_panic_zone
fn entry(v: &[u8]) -> Option<u8> {
    let first = v.first().copied()?;
    let rest = v.get(1..).unwrap_or_default();
    let mid = rest.get(v.len() / 2).copied().unwrap_or(0);
    Some(first ^ mid)
}
