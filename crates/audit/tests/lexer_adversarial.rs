//! Adversarial lexer corpus: the shapes most likely to desynchronize a
//! hand-rolled Rust lexer — raw strings with hash fences, nested block
//! comments, lifetimes that look like char literals, byte strings —
//! plus property tests that the lexer never mistakes quoted or
//! commented-out text for live tokens or directives.

use mh_audit::lexer::{lex, Tok, MARKER};
use proptest::prelude::*;

fn toks(src: &str) -> Vec<Tok> {
    lex(src).tokens.into_iter().map(|t| t.tok).collect()
}

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn raw_strings_with_hash_fences() {
    // The closing fence must match the opening hash count; a `"#`
    // inside a `##` string is content, not a terminator.
    assert_eq!(toks(r###"let s = r#"quote " inside"#;"###).len(), 5);
    assert_eq!(
        idents(r#####"let s = r##"fence "# still inside"## ; after"#####),
        vec!["let", "s", "after"]
    );
    // An unterminated raw string swallows the rest without panicking.
    let lexed = lex(r###"let s = r#"never closed"###);
    assert!(lexed.tokens.len() >= 3);
}

#[test]
fn raw_string_hides_directives_and_code() {
    let src = format!("let s = r#\"// {MARKER} no_panic_zone\nfn fake() {{}}\"#;");
    let lexed = lex(&src);
    assert!(lexed.anns.is_empty(), "directive inside raw string leaked");
    assert!(!idents(&src).contains(&"fake".to_string()));
}

#[test]
fn nested_block_comments() {
    assert_eq!(idents("/* a /* b /* c */ b */ a */ live"), vec!["live"]);
    // `/*` inside a string does not open a comment.
    assert_eq!(idents("let s = \"/*\"; live"), vec!["let", "s", "live"]);
    // Unclosed nesting swallows the tail totally.
    assert!(idents("/* open /* deeper */ still open").is_empty());
    // A directive inside a block comment is dead text.
    let src = format!("/* // {MARKER} no_panic_zone */ fn f() {{}}");
    assert!(lex(&src).anns.is_empty());
}

#[test]
fn lifetimes_are_not_char_literals() {
    assert_eq!(
        toks("&'a str"),
        vec![Tok::Punct("&"), Tok::Lifetime, Tok::Ident("str".into())]
    );
    // `'a'` is a char; `'a ` is a lifetime; both on one line.
    let t = toks("fn f<'a>(x: &'a u8) { let c = 'a'; }");
    assert_eq!(t.iter().filter(|t| **t == Tok::Lifetime).count(), 2);
    assert_eq!(t.iter().filter(|t| **t == Tok::Char).count(), 1);
    // Escaped quote chars don't end early.
    assert_eq!(toks(r"let c = '\'';").len(), 5);
    assert_eq!(toks(r"let c = '\\';").len(), 5);
}

#[test]
fn byte_strings_and_byte_chars() {
    assert_eq!(
        toks(r#"let b = b"bytes";"#),
        vec![
            Tok::Ident("let".into()),
            Tok::Ident("b".into()),
            Tok::Punct("="),
            Tok::Str,
            Tok::Punct(";")
        ]
    );
    assert!(toks(r"let c = b'\n';").contains(&Tok::Char));
    // Raw byte string with fence.
    assert_eq!(
        idents(r###"let b = br#"raw " bytes"#; after"###),
        vec!["let", "b", "after"]
    );
}

#[test]
fn raw_identifiers_unescape() {
    assert_eq!(idents("let r#match = r#fn;"), vec!["let", "match", "fn"]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Whatever surrounds it, text inside a raw string never produces
    /// identifier tokens.
    #[test]
    fn raw_string_content_never_tokenizes(inner in "[a-z]{1,12}") {
        let src = format!("let s = r#\"{inner}\"#; tail");
        prop_assert_eq!(idents(&src), vec!["let".to_string(), "s".into(), "tail".into()]);
    }

    /// Directives never fire from inside any comment nesting depth.
    #[test]
    fn directives_dead_inside_block_comments(depth in 1usize..5) {
        let open = "/* ".repeat(depth);
        let close = " */".repeat(depth);
        let src = format!("{open}// {MARKER} no_panic_zone{close}\nfn f() {{}}");
        prop_assert!(lex(&src).anns.is_empty());
    }

    /// Lexing is total and loss-bounded on fence soup: arbitrary mixes
    /// of quotes, hashes and comment openers never panic.
    #[test]
    fn total_on_fence_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("r#\""), Just("\"#"), Just("\""), Just("b\""),
            Just("/*"), Just("*/"), Just("//"), Just("'"),
            Just("'a"), Just("b'x'"), Just("r##\""), Just("\"##"),
            Just("ident"), Just("\n"),
        ],
        0..24,
    )) {
        let src: String = parts.concat();
        let _ = lex(&src);
    }
}
