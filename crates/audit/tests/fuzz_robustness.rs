//! Auditor robustness: the lexer, parser, and full pipeline must be
//! total over arbitrary input — the tool that proves hot paths cannot be
//! crashed must itself not be crashable by the source text it scans.

use mh_audit::{audit_sources, lexer, parser, SourceFile};
use proptest::prelude::*;

fn audit_one(text: &str) {
    let _ = audit_sources(&[SourceFile {
        rel: "fuzz.rs".into(),
        crate_name: "fuzz".into(),
        module: Vec::new(),
        text: text.into(),
    }]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn lexer_total_on_arbitrary_strings(input in ".{0,300}") {
        let _ = lexer::lex(&input);
    }

    #[test]
    fn pipeline_total_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("fn".to_string()), Just("impl".to_string()),
                Just("mod".to_string()), Just("pub".to_string()),
                Just("unsafe".to_string()), Just("trait".to_string()),
                Just("entry".to_string()), Just("self".to_string()),
                Just("{".to_string()), Just("}".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just("[".to_string()), Just("]".to_string()),
                Just("::".to_string()), Just(".".to_string()),
                Just("..".to_string()), Just("/".to_string()),
                Just("%".to_string()), Just("#".to_string()),
                Just("unwrap".to_string()), Just("expect".to_string()),
                Just("with_capacity".to_string()),
                Just("// mh-audit: no_panic_zone".to_string()),
                Just("// mh-audit: allow(A001, r)".to_string()),
                Just("// mh-audit: trusted(t)".to_string()),
                Just("\"str\"".to_string()), Just("'c'".to_string()),
                Just("r#\"raw\"#".to_string()), Just("0x1f".to_string()),
            ],
            0..48
        ),
        sep in prop_oneof![Just(" "), Just("\n")],
    ) {
        // Must terminate quickly and never panic, even on deeply
        // unbalanced nesting and directives in odd positions.
        audit_one(&words.join(sep));
    }

    #[test]
    fn parser_total_on_arbitrary_strings(input in ".{0,300}") {
        let lexed = lexer::lex(&input);
        let _ = parser::parse("f.rs", "fuzz", &[], lexed);
    }
}
